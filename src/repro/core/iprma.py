"""Static IPRMA — Informed Partitioned Random allocation (paper §2.1).

The address space is pre-divided into equal ranges, one per TTL band
(fig. 1).  A session's TTL selects the band (fig. 2); within the band
the choice is informed-random.  Partitioning stops a *global* session
clashing with a *local* session elsewhere — provided the band edges
match the TTL boundaries actually deployed.  The paper's two variants:

* ``IPR 3-band`` — separators at TTL 15 and 64.  Europe-wide (TTL 63)
  and UK-only (TTL 47) sessions share a band, so a Scandinavian site
  can clash with an invisible UK session (fig. 3) — imperfect
  partitioning.
* ``IPR 7-band`` — separators at 2, 16, 32, 48, 64, 128; perfect for
  the paper's TTL distributions, as no two TTL values share a band.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocator import AllocationResult, Allocator, VisibleSet
from repro.core.partitions import (
    IPR3_EDGES,
    IPR7_EDGES,
    PartitionMap,
    equal_band_ranges,
)


class StaticIprmaAllocator(Allocator):
    """Informed random within fixed, equal-sized TTL bands.

    Args:
        space_size: total addresses.
        edges: separator TTLs defining the bands.
        rng: numpy Generator.
    """

    def __init__(self, space_size: int,
                 edges: Sequence[int] = IPR3_EDGES,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(space_size, rng)
        self.partition_map = PartitionMap(tuple(edges))
        self.band_ranges: List[Tuple[int, int]] = equal_band_ranges(
            space_size, self.partition_map.num_bands
        )
        self.name = f"IPR {self.partition_map.num_bands}-band"

    @classmethod
    def three_band(cls, space_size: int,
                   rng: Optional[np.random.Generator] = None
                   ) -> "StaticIprmaAllocator":
        """The paper's IPR 3-band (separators at TTL 15 and 64)."""
        return cls(space_size, IPR3_EDGES, rng)

    @classmethod
    def seven_band(cls, space_size: int,
                   rng: Optional[np.random.Generator] = None
                   ) -> "StaticIprmaAllocator":
        """The paper's IPR 7-band (2, 16, 32, 48, 64, 128)."""
        return cls(space_size, IPR7_EDGES, rng)

    def band_range(self, ttl: int) -> Tuple[int, int]:
        """Half-open address range of the band serving ``ttl``."""
        return self.band_ranges[self.partition_map.band_of(ttl)]

    def declared_ranges(self, ttl: int,
                        visible: VisibleSet) -> List[Tuple[int, int]]:
        """Static bands: the range serving ``ttl``, whatever is visible."""
        return [self.band_range(ttl)]

    def allocate(self, ttl: int, visible: VisibleSet) -> AllocationResult:
        self._check_ttl(ttl)
        band = self.partition_map.band_of(ttl)
        lo, hi = self.band_ranges[band]
        return self._informed_pick(visible, lo, hi, band=band)
