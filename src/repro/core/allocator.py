"""Allocator interface and shared helpers.

An allocator runs at one site.  Its entire knowledge of the world is
the set of sessions *visible* there — those whose SAP announcements
reach the site (scope-limited, possibly delayed or lost).  Given that
view and a requested TTL it picks a group address.

All algorithms share this contract, which is what lets the simulation
harnesses of figs. 5/12/13 swap them freely.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.session import Session
from repro.sim.rng import derived_stream
from repro.units.types import Count, SlotIndex, Ttl


@dataclass
class VisibleSet:
    """The (address, ttl) pairs of sessions visible at a site.

    Stored as parallel numpy arrays so that allocators can filter and
    count in vectorised form.
    """

    addresses: np.ndarray
    ttls: np.ndarray

    def __post_init__(self) -> None:
        self.addresses = np.asarray(self.addresses, dtype=np.int64)
        self.ttls = np.asarray(self.ttls, dtype=np.int64)
        if self.addresses.shape != self.ttls.shape:
            raise ValueError("addresses and ttls must align")

    @classmethod
    def empty(cls) -> "VisibleSet":
        return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))

    @classmethod
    def from_sessions(cls, sessions: Iterable[Session]) -> "VisibleSet":
        sessions = list(sessions)
        return cls(
            np.array([s.address for s in sessions], dtype=np.int64),
            np.array([s.ttl for s in sessions], dtype=np.int64),
        )

    def __len__(self) -> int:
        return int(self.addresses.shape[0])

    def used_addresses(self) -> np.ndarray:
        """Sorted unique addresses in use (any TTL)."""
        return np.unique(self.addresses)

    def in_address_range(self, lo: SlotIndex, hi: SlotIndex) -> "VisibleSet":
        """Subset with ``lo <= address < hi``."""
        mask = (self.addresses >= lo) & (self.addresses < hi)
        return VisibleSet(self.addresses[mask], self.ttls[mask])

    def with_ttl_at_least(self, ttl: Ttl) -> "VisibleSet":
        """Subset with ``ttl >= ttl`` (Deterministic Adaptive IPRMA)."""
        mask = self.ttls >= ttl
        return VisibleSet(self.addresses[mask], self.ttls[mask])


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of one allocation.

    Attributes:
        address: the chosen address (index into the space).
        band: band index the allocator used, if partitioned.
        informed: True if known-used addresses were excluded.
        forced: True if no free address was known and the allocator had
            to pick among possibly-used ones (a likely clash).
    """

    address: SlotIndex
    band: Optional[int] = None
    informed: bool = True
    forced: bool = False


class Allocator(abc.ABC):
    """Base class for all allocation algorithms.

    Args:
        space_size: number of addresses in the allocation space.
        rng: numpy Generator; a fresh default one is made if omitted.
    """

    #: short name used in experiment output ("R", "IR", "IPR 3-band"...)
    name: str = "base"

    def __init__(self, space_size: Count,
                 rng: Optional[np.random.Generator] = None) -> None:
        if space_size <= 0:
            raise ValueError(f"space_size must be positive: {space_size}")
        self.space_size = int(space_size)
        self.rng = rng if rng is not None else derived_stream(
            "core.allocator"
        )
        self.forced_allocations = 0

    @abc.abstractmethod
    def allocate(self, ttl: Ttl, visible: VisibleSet) -> AllocationResult:
        """Pick an address for a new session with scope ``ttl``."""

    def declared_ranges(self, ttl: Ttl,
                        visible: VisibleSet
                        ) -> List[Tuple[SlotIndex, SlotIndex]]:
        """The half-open address ranges ``allocate`` may pick from.

        This is the allocator's *declared* partition geometry for a
        ``(ttl, visible)`` view — the contract the runtime sanitizer
        (:mod:`repro.sanitize`) checks every allocation against.
        Partitioned allocators override this to mirror exactly the
        band/zone/prefix computation their ``allocate`` performs.
        """
        return [(0, self.space_size)]

    def _check_ttl(self, ttl: Ttl) -> None:
        if not 1 <= ttl <= 255:
            raise ValueError(f"ttl {ttl} outside [1, 255]")

    def _informed_pick(self, visible: VisibleSet, lo: SlotIndex,
                       hi: SlotIndex,
                       band: Optional[int] = None) -> AllocationResult:
        """Informed-random choice within ``[lo, hi)``.

        Avoids every address visible in the range; if the range is
        fully occupied (as far as this site knows), falls back to a
        uniform pick — the allocation still has to happen, the paper's
        simulations then count the resulting clash.
        """
        used = np.unique(
            visible.in_address_range(lo, hi).addresses
        )
        free = (hi - lo) - len(used)
        if free <= 0:
            self.forced_allocations += 1
            address = int(self.rng.integers(lo, hi))
            return AllocationResult(address, band=band, informed=False,
                                    forced=True)
        r = int(self.rng.integers(0, free))
        address = nth_free_address(used, r, lo, hi)
        return AllocationResult(address, band=band, informed=True,
                                forced=False)


def nth_free_address(used_sorted: np.ndarray, r: Count, lo: SlotIndex,
                     hi: SlotIndex) -> SlotIndex:
    """The ``r``-th (0-based) address of ``[lo, hi)`` not in use.

    Args:
        used_sorted: sorted unique used addresses, all within [lo, hi).
        r: rank among free addresses; must satisfy
            ``0 <= r < (hi - lo) - len(used_sorted)``.

    Uses fixed-point iteration on ``x = lo + r + #used <= x``; the
    candidate is non-decreasing, so it terminates in at most
    ``len(used_sorted)`` steps (typically 2-3).
    """
    free_total = (hi - lo) - len(used_sorted)
    if not 0 <= r < free_total:
        raise ValueError(f"rank {r} outside free count {free_total}")
    x = lo + r
    while True:
        skipped = int(np.searchsorted(used_sorted, x, side="right"))
        candidate = lo + r + skipped
        if candidate == x:
            return x
        x = candidate
