"""Multicast address spaces.

Allocators work over a dense index space ``0..size-1``; this module maps
those indices onto real IPv4 multicast ranges.  The paper's reference
points:

* IPv4 has 2^28 (~270 million) multicast addresses (224.0.0.0/4);
* the IANA range for dynamically-allocated (sdr) addresses at the time
  was 65 536 addresses — modelled here as 224.2.128.0/16-at-heart
  (sdr used 224.2.128.0 .. 224.2.255.255 plus neighbouring space; the
  exact base does not affect any experiment);
* administratively scoped space lives in 239.0.0.0/8 (RFC 2365).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units.types import Addr, Count, SlotIndex

#: First IPv4 multicast address.
MULTICAST_BASE = 0xE0000000  # 224.0.0.0
#: One past the last IPv4 multicast address.
MULTICAST_END = 0xF0000000   # 240.0.0.0
#: Total IPv4 multicast addresses (2^28).
MULTICAST_TOTAL = MULTICAST_END - MULTICAST_BASE


def ip_to_int(dotted: str) -> Addr:
    """Parse dotted-quad IPv4 into an int.

    Raises:
        ValueError: on malformed input.
    """
    parts = dotted.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address {dotted!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"bad IPv4 octet {part!r} in {dotted!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: Addr) -> str:
    """Format an int as dotted-quad IPv4."""
    if not 0 <= value < 2 ** 32:
        raise ValueError(f"IPv4 value out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF)
                    for shift in (24, 16, 8, 0))


@dataclass(frozen=True)
class MulticastAddressSpace:
    """A contiguous block of multicast addresses.

    Attributes:
        base: first address as a 32-bit int.
        size: number of addresses in the block.
        name: human-readable label.
    """

    base: Addr
    size: Count
    name: str = ""

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"size must be positive, got {self.size}")
        if not MULTICAST_BASE <= self.base < MULTICAST_END:
            raise ValueError(
                f"base {int_to_ip(self.base)} is not a multicast address"
            )
        if self.base + self.size > MULTICAST_END:
            raise ValueError("block extends past 239.255.255.255")

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @classmethod
    def sdr_dynamic(cls) -> "MulticastAddressSpace":
        """The 65 536-address dynamic range the paper cites (§4.1)."""
        return cls(ip_to_int("224.2.128.0"), 65_536, name="sdr-dynamic")

    @classmethod
    def admin_local_scope(cls) -> "MulticastAddressSpace":
        """The RFC 2365 IPv4 local scope, 239.255.0.0/16."""
        return cls(ip_to_int("239.255.0.0"), 65_536, name="admin-local")

    @classmethod
    def full_ipv4(cls) -> "MulticastAddressSpace":
        """All 2^28 IPv4 multicast addresses."""
        return cls(MULTICAST_BASE, MULTICAST_TOTAL, name="ipv4-multicast")

    @classmethod
    def abstract(cls, size: Count) -> "MulticastAddressSpace":
        """An anonymous space of ``size`` addresses for simulations.

        Placed inside the sdr dynamic range when it fits, otherwise at
        the bottom of multicast space.
        """
        base = ip_to_int("224.2.128.0") if size <= 65_536 else MULTICAST_BASE
        return cls(base, size, name=f"abstract-{size}")

    # ------------------------------------------------------------------
    # Index <-> address mapping
    # ------------------------------------------------------------------
    def contains_index(self, index: SlotIndex) -> bool:
        return 0 <= index < self.size

    def contains_address(self, addr: Addr) -> bool:
        """True when ``addr`` falls inside this block."""
        return self.base <= addr < self.base + self.size

    def index_to_address(self, index: SlotIndex) -> Addr:
        """Absolute 32-bit address for dense index ``index``.

        The int-level twin of :meth:`index_to_ip` — the array-backed
        core works in ints and only formats dotted quads at the edge.

        Raises:
            IndexError: if ``index`` is outside ``0..size-1``.
        """
        if not self.contains_index(index):
            raise IndexError(f"index {index} outside space of {self.size}")
        return self.base + index

    def address_to_index(self, addr: Addr) -> SlotIndex:
        """Dense index for an absolute 32-bit address.

        Raises:
            ValueError: if the address is outside this block.
        """
        index = addr - self.base
        if not self.contains_index(index):
            raise ValueError(
                f"{int_to_ip(addr)} is outside {self.name or 'block'}"
            )
        return index

    def index_to_ip(self, index: SlotIndex) -> str:
        """Dotted-quad address for dense index ``index``."""
        return int_to_ip(self.index_to_address(index))

    def ip_to_index(self, dotted: str) -> SlotIndex:
        """Dense index for a dotted-quad address.

        Raises:
            ValueError: if the address is outside this block.
        """
        value = ip_to_int(dotted)
        index = value - self.base
        if not self.contains_index(index):
            raise ValueError(f"{dotted} is outside {self.name or 'block'}")
        return index

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        first = int_to_ip(self.base)
        last = int_to_ip(self.base + self.size - 1)
        return f"MulticastAddressSpace({first}..{last}, size={self.size})"
