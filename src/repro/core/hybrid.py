"""AIPR-H — the hybrid of static IPR-7 and adaptive AIPR-1 (fig. 12).

From the paper: "It has 7 bands as in IPR-7.  These bands are initially
positioned so that they occupy the top 50% of the address space with
20% of the space being used for inter-band gaps.  When a high TTL band
expands, it pushes downwards, but the band below it does not move
downwards unless the occupancy is greater than 67%.  If the occupancy
is less than 67% the band is reduced in width."

Concrete realisation: each band has a precomputed *initial* range.  Lay
bands out top-down; a band's top is the lower of its initial top and
the point the band above pushed it to.  An unpushed band keeps its
initial width (grown if needed); a pushed band shrinks to the width its
session count needs at 67% occupancy.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.adaptive import DEFAULT_OCCUPANCY
from repro.core.allocator import AllocationResult, Allocator, VisibleSet
from repro.core.partitions import IPR7_EDGES, PartitionMap


class HybridIprmaAllocator(Allocator):
    """AIPR-H: statically seeded, adaptively resized 7-band allocation.

    Args:
        space_size: total addresses.
        gap_fraction: share of the space used for inter-band gaps (20%
            in the paper's AIPR-H).
        initial_span: share of the space the initial layout occupies
            from the top (50% in the paper).
        edges: band separator TTLs (IPR-7's by default).
        occupancy: target band occupancy (67%).
        rng: numpy Generator.
    """

    name = "AIPR-H"

    def __init__(self, space_size: int, gap_fraction: float = 0.2,
                 initial_span: float = 0.5,
                 edges: Sequence[int] = IPR7_EDGES,
                 occupancy: float = DEFAULT_OCCUPANCY,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(space_size, rng)
        if not 0.0 <= gap_fraction < initial_span <= 1.0:
            raise ValueError(
                f"need 0 <= gap_fraction < initial_span <= 1, got "
                f"{gap_fraction} and {initial_span}"
            )
        self.gap_fraction = gap_fraction
        self.initial_span = initial_span
        self.occupancy = occupancy
        self.partition_map = PartitionMap(tuple(edges))
        num_bands = self.partition_map.num_bands
        self.gap = int(gap_fraction * space_size) // num_bands
        width_budget = int(initial_span * space_size) - self.gap * num_bands
        self.initial_width = max(1, width_budget // num_bands)
        # Initial tops, highest-TTL band at the very top of the space.
        self.initial_top: List[int] = [0] * num_bands
        position = space_size
        for band in range(num_bands - 1, -1, -1):
            self.initial_top[band] = max(1, position)
            position = position - self.initial_width - self.gap

    def band_geometry(self, visible: VisibleSet) -> List[Tuple[int, int]]:
        """Half-open (lo, hi) per band under the hybrid rules."""
        counts = self.partition_map.band_counts(visible.ttls)
        num_bands = self.partition_map.num_bands
        ranges: List[Optional[Tuple[int, int]]] = [None] * num_bands
        prev_lo = self.space_size + self.gap
        for band in range(num_bands - 1, -1, -1):
            needed = max(1, math.ceil(counts[band] / self.occupancy))
            hi = max(1, min(self.initial_top[band], prev_lo - self.gap))
            pushed = hi < self.initial_top[band]
            width = needed if pushed else max(needed, self.initial_width)
            lo = max(0, hi - width)
            ranges[band] = (lo, hi)
            prev_lo = lo
        return ranges  # type: ignore[return-value]

    def declared_ranges(self, ttl: int,
                        visible: VisibleSet) -> List[Tuple[int, int]]:
        """The band serving ``ttl`` under the hybrid geometry."""
        band = self.partition_map.band_of(ttl)
        lowest_ttl, __ = self.partition_map.ttl_range(band)
        geometry = self.band_geometry(visible.with_ttl_at_least(lowest_ttl))
        return [geometry[band]]

    def allocate(self, ttl: int, visible: VisibleSet) -> AllocationResult:
        self._check_ttl(ttl)
        band = self.partition_map.band_of(ttl)
        (lo, hi), = self.declared_ranges(ttl, visible)
        return self._informed_pick(visible, lo, hi, band=band)
