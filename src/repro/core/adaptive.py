"""Deterministic Adaptive IPRMA (paper §2.4, fig. 8; AIPR-1..4).

Static partitions waste space: "some partitions may be virtually empty,
and others will be densely occupied".  The adaptive scheme sizes each
band by the sessions actually observed in it, placing bands from the
top of the address space downwards — higher-TTL bands first, expanding
bands "pushing" lower-TTL bands down — with gaps between bands to
absorb allocation bursts without collision.

The *deterministic* property: the geometry of the band serving TTL
``x`` depends only on session announcements with TTL >= x (which, with
a reliable announcement protocol, every site able to clash at TTL x can
see).  Placing bands top-down in decreasing TTL order gives exactly
this: a band's position is a function of the counts in itself and in
higher-TTL bands only.

Concrete realisation of the fig. 12 parameters:

* bands are rectangular (uniform probability within the band);
* a fraction ``gap_fraction`` of the space is evenly allocated to
  inter-band spacing (AIPR-1: 20%, AIPR-2: 50%, AIPR-3: 60%,
  AIPR-4: 70%);
* target band occupancy is 67% (from fig. 6);
* the initial band allocation gives a single address to each band
  (``max(1, ...)`` below).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocator import AllocationResult, Allocator, VisibleSet
from repro.core.partitions import IPR7_EDGES, PartitionMap

#: Target band occupancy; "67% was chosen from figure 6 as approximately
#: the proportion ... that can be allocated for a band of 10000
#: addresses before propagation delay and loss alone increase the clash
#: probability to 0.5".
DEFAULT_OCCUPANCY = 0.67


class AdaptiveIprmaAllocator(Allocator):
    """Deterministic adaptive informed-partitioned-random allocation.

    Args:
        space_size: total addresses.
        gap_fraction: share of the space reserved for inter-band gaps.
        edges: separator TTLs defining bands (default: the 7-band
            edges, which isolate each TTL of the paper's distributions;
            use :func:`repro.core.partitions.margin_partition_map` for
            the any-policy 55-band map).
        occupancy: target band occupancy.
        rng: numpy Generator.
    """

    def __init__(self, space_size: int, gap_fraction: float = 0.2,
                 edges: Sequence[int] = IPR7_EDGES,
                 occupancy: float = DEFAULT_OCCUPANCY,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(space_size, rng)
        if not 0.0 <= gap_fraction < 1.0:
            raise ValueError(f"gap_fraction outside [0, 1): {gap_fraction}")
        if not 0.0 < occupancy <= 1.0:
            raise ValueError(f"occupancy outside (0, 1]: {occupancy}")
        self.gap_fraction = gap_fraction
        self.occupancy = occupancy
        self.partition_map = PartitionMap(tuple(edges))
        self.name = f"AIPR ({gap_fraction:.0%} gap)"

    # Factories matching the paper's labels -----------------------------
    @classmethod
    def aipr1(cls, space_size: int, rng=None) -> "AdaptiveIprmaAllocator":
        return cls(space_size, gap_fraction=0.2, rng=rng)

    @classmethod
    def aipr2(cls, space_size: int, rng=None) -> "AdaptiveIprmaAllocator":
        return cls(space_size, gap_fraction=0.5, rng=rng)

    @classmethod
    def aipr3(cls, space_size: int, rng=None) -> "AdaptiveIprmaAllocator":
        return cls(space_size, gap_fraction=0.6, rng=rng)

    @classmethod
    def aipr4(cls, space_size: int, rng=None) -> "AdaptiveIprmaAllocator":
        return cls(space_size, gap_fraction=0.7, rng=rng)

    # -------------------------------------------------------------------
    def band_geometry(self, visible: VisibleSet) -> List[Tuple[int, int]]:
        """Half-open (lo, hi) address range of every band, low band first.

        Bands cluster at the top of the space; band *i*'s geometry is a
        function of the visible session counts in bands >= i only.
        """
        counts = self.partition_map.band_counts(visible.ttls)
        num_bands = self.partition_map.num_bands
        gap = int(self.gap_fraction * self.space_size) // num_bands
        ranges: List[Optional[Tuple[int, int]]] = [None] * num_bands
        position = self.space_size  # exclusive top of the next band
        for band in range(num_bands - 1, -1, -1):
            size = max(1, math.ceil(counts[band] / self.occupancy))
            hi = max(1, position)
            lo = max(0, hi - size)
            ranges[band] = (lo, hi)
            position = lo - gap
        return ranges  # type: ignore[return-value]

    def declared_ranges(self, ttl: int,
                        visible: VisibleSet) -> List[Tuple[int, int]]:
        """The band serving ``ttl`` under the deterministic geometry."""
        band = self.partition_map.band_of(ttl)
        lowest_ttl, __ = self.partition_map.ttl_range(band)
        geometry = self.band_geometry(visible.with_ttl_at_least(lowest_ttl))
        return [geometry[band]]

    def allocate(self, ttl: int, visible: VisibleSet) -> AllocationResult:
        self._check_ttl(ttl)
        band = self.partition_map.band_of(ttl)
        # Deterministic rule: geometry from sessions with TTL >= this
        # band's lowest TTL only.  (Sessions in lower bands do not enter
        # the placement of this band anyway because bands are laid out
        # top-down, but restricting the view keeps the invariant
        # explicit and testable.)
        (lo, hi), = self.declared_ranges(ttl, visible)
        return self._informed_pick(visible, lo, hi, band=band)
