"""CIDR-style multicast address blocks.

The §4.1 hierarchy deals in address *prefixes*.  This module provides
proper prefix arithmetic over IPv4 multicast space — power-of-two
aligned blocks with prefix notation, subdivision, supernets and
containment — so prefix allocation can speak the same language as the
routing protocols (BGMP carried prefixes) that the paper planned to
piggyback on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.core.address_space import (
    MULTICAST_BASE,
    MULTICAST_END,
    int_to_ip,
    ip_to_int,
)


@dataclass(frozen=True, order=True)
class AddressBlock:
    """A power-of-two aligned block ``base/prefix_len``.

    Attributes:
        base: first address (32-bit int), aligned to the block size.
        prefix_len: CIDR prefix length, 4..32 (4 = all of multicast).
    """

    base: int
    prefix_len: int

    def __post_init__(self) -> None:
        if not 4 <= self.prefix_len <= 32:
            raise ValueError(
                f"prefix length {self.prefix_len} outside [4, 32]"
            )
        if self.base % self.size != 0:
            raise ValueError(
                f"base {int_to_ip(self.base)} not aligned to "
                f"/{self.prefix_len}"
            )
        if not MULTICAST_BASE <= self.base < MULTICAST_END:
            raise ValueError(
                f"{int_to_ip(self.base)} is not multicast space"
            )
        if self.base + self.size > MULTICAST_END:
            raise ValueError("block extends past multicast space")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "AddressBlock":
        """Parse ``"224.2.128.0/17"`` notation."""
        if "/" not in text:
            raise ValueError(f"missing prefix length in {text!r}")
        address, __, length = text.partition("/")
        return cls(ip_to_int(address), int(length))

    @classmethod
    def all_multicast(cls) -> "AddressBlock":
        """224.0.0.0/4 — the whole space."""
        return cls(MULTICAST_BASE, 4)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return 1 << (32 - self.prefix_len)

    @property
    def last(self) -> int:
        return self.base + self.size - 1

    def contains_address(self, address: int) -> bool:
        return self.base <= address <= self.last

    def contains_block(self, other: "AddressBlock") -> bool:
        return (self.base <= other.base
                and other.last <= self.last)

    def overlaps(self, other: "AddressBlock") -> bool:
        return self.base <= other.last and other.base <= self.last

    # ------------------------------------------------------------------
    # Subdivision
    # ------------------------------------------------------------------
    def children(self) -> List["AddressBlock"]:
        """The two halves, one prefix bit longer.

        Raises:
            ValueError: for /32 blocks (single addresses).
        """
        if self.prefix_len == 32:
            raise ValueError("cannot split a /32")
        half = AddressBlock(self.base, self.prefix_len + 1)
        sibling = AddressBlock(self.base + half.size,
                               self.prefix_len + 1)
        return [half, sibling]

    def supernet(self) -> "AddressBlock":
        """The enclosing block one prefix bit shorter.

        Raises:
            ValueError: for the /4 root.
        """
        if self.prefix_len == 4:
            raise ValueError("224.0.0.0/4 has no multicast supernet")
        parent_len = self.prefix_len - 1
        parent_size = 1 << (32 - parent_len)
        return AddressBlock(self.base - self.base % parent_size,
                            parent_len)

    def subblocks(self, prefix_len: int) -> Iterator["AddressBlock"]:
        """All sub-blocks of this block at ``prefix_len``."""
        if prefix_len < self.prefix_len:
            raise ValueError(
                f"/{prefix_len} is larger than this /{self.prefix_len}"
            )
        step = 1 << (32 - prefix_len)
        for base in range(self.base, self.base + self.size, step):
            yield AddressBlock(base, prefix_len)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        return f"{int_to_ip(self.base)}/{self.prefix_len}"

    def __repr__(self) -> str:
        return f"AddressBlock({self})"


def block_for(address: int, prefix_len: int) -> AddressBlock:
    """The /prefix_len block containing ``address``."""
    size = 1 << (32 - prefix_len)
    return AddressBlock(address - address % size, prefix_len)
