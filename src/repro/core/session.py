"""Multicast sessions as the allocation machinery sees them.

A session is minimally "the set of media streams it uses ..., the
multicast addresses and scope of those streams" (paper §1).  For the
allocation experiments the relevant projection is (address, ttl,
source); the SAP subpackage attaches the full SDP description.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional

from repro.units.types import Duration, SimTime, SlotIndex, Ttl

_session_ids = itertools.count(1)


@dataclass
class Session:
    """A multicast session.

    Attributes:
        address: allocated group address, as an index into the owning
            :class:`~repro.core.address_space.MulticastAddressSpace`.
        ttl: the session's scope TTL.
        source: node id of the announcing site.
        session_id: unique id (auto-assigned if 0).
        created_at: simulated creation time.
        lifetime: advertised lifetime in seconds (None = indefinite).
        description: optional attached description (e.g. SDP).
    """

    address: SlotIndex
    ttl: Ttl
    source: int
    session_id: int = 0
    created_at: SimTime = 0.0
    lifetime: Optional[Duration] = None
    description: Any = None

    def __post_init__(self) -> None:
        if self.ttl < 1 or self.ttl > 255:
            raise ValueError(f"ttl {self.ttl} outside [1, 255]")
        if self.address < 0:
            raise ValueError(f"negative address {self.address}")
        if self.session_id == 0:
            self.session_id = next(_session_ids)

    def expires_at(self) -> Optional[SimTime]:
        """Absolute expiry time, or None for indefinite sessions."""
        if self.lifetime is None:
            return None
        return self.created_at + self.lifetime

    def key(self) -> tuple:
        """Stable identity key (source, session_id)."""
        return (self.source, self.session_id)
