"""TTL partition maps (paper §2.1, §2.4.1, fig. 11).

A partition map assigns every TTL value 1..255 to a band.  Static
IPRMA uses a handful of hand-placed bands (3-band: separators at TTL 15
and 64; 7-band: separators at 2, 16, 32, 48, 64 and 128).  The adaptive
schemes need a partitioning that works for *any* boundary policy; the
paper derives one from hop-count structure: the number of TTL values
``n`` allocated to a partition whose lowest TTL is ``t``, with a margin
of safety ``m``, is::

    n = ceil( 32 * t / (255 * m) )

(32 being the DVMRP infinite routing metric).  A margin of 2 yields 55
partitions — one per TTL at the bottom of the range, widening towards
TTL 255 (fig. 11).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

#: Separator TTLs for the paper's static 3-band IPRMA.
IPR3_EDGES: Tuple[int, ...] = (15, 64)
#: Separator TTLs for the paper's static 7-band IPRMA.
IPR7_EDGES: Tuple[int, ...] = (2, 16, 32, 48, 64, 128)
#: DVMRP's infinite routing metric, the hop-count ceiling of §2.4.1.
DVMRP_INFINITY = 32
#: Largest TTL value.
MAX_TTL = 255


@dataclass(frozen=True)
class PartitionMap:
    """Maps TTL values to band indices.

    Bands are numbered from 0 (lowest TTLs) upwards.  ``edges`` holds
    the separator TTLs: a TTL ``t`` belongs to band
    ``bisect_right(edges, t)``, i.e. band *i* covers TTLs in
    ``[edges[i-1], edges[i])`` with the conventional open ends.
    """

    edges: Tuple[int, ...]

    def __post_init__(self) -> None:
        if list(self.edges) != sorted(set(self.edges)):
            raise ValueError(f"edges must be strictly increasing: "
                             f"{self.edges}")
        if self.edges and not (1 < self.edges[0] and
                               self.edges[-1] <= MAX_TTL):
            raise ValueError(f"edges must lie in (1, 255]: {self.edges}")

    @property
    def num_bands(self) -> int:
        return len(self.edges) + 1

    def band_of(self, ttl) -> "np.ndarray | int":
        """Band index for a TTL (scalar or array)."""
        result = np.searchsorted(np.asarray(self.edges), ttl, side="right")
        if np.isscalar(ttl):
            return int(result)
        return result

    def ttl_range(self, band: int) -> Tuple[int, int]:
        """Inclusive TTL range ``(lo, hi)`` covered by ``band``."""
        if not 0 <= band < self.num_bands:
            raise IndexError(f"band {band} out of {self.num_bands}")
        lo = 1 if band == 0 else self.edges[band - 1]
        hi = MAX_TTL if band == len(self.edges) else self.edges[band] - 1
        return lo, hi

    def band_counts(self, ttls: np.ndarray) -> np.ndarray:
        """Number of the given TTLs in each band (length num_bands)."""
        bands = self.band_of(np.asarray(ttls))
        return np.bincount(bands, minlength=self.num_bands)


def margin_partition_map(margin: int = 2) -> PartitionMap:
    """The §2.4.1 partitioning rule: works for any boundary policy.

    Args:
        margin: the margin of safety ``m``; 2 gives the paper's 55
            partitions.
    """
    if margin < 1:
        raise ValueError(f"margin must be >= 1, got {margin}")
    edges: List[int] = []
    t = 1
    while True:
        width = max(1, math.ceil(DVMRP_INFINITY * t / (MAX_TTL * margin)))
        nxt = t + width
        if nxt > MAX_TTL:
            break
        edges.append(nxt)
        t = nxt
    return PartitionMap(tuple(edges))


def equal_band_ranges(space_size: int,
                      num_bands: int) -> List[Tuple[int, int]]:
    """Divide an address space into equal half-open ranges.

    Returns ``[(lo, hi), ...]`` with ``hi`` exclusive, one per band,
    covering the space exactly (earlier bands get the remainder).
    """
    if num_bands <= 0:
        raise ValueError("num_bands must be positive")
    if space_size < num_bands:
        raise ValueError(
            f"space of {space_size} cannot hold {num_bands} bands"
        )
    base = space_size // num_bands
    remainder = space_size % num_bands
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for band in range(num_bands):
        width = base + (1 if band < remainder else 0)
        ranges.append((lo, lo + width))
        lo += width
    return ranges
