"""The paper's primary contribution: multicast address allocation.

Algorithms (paper §2):

* :class:`~repro.core.random_alloc.RandomAllocator` — "R", pure random.
* :class:`~repro.core.informed.InformedRandomAllocator` — "IR",
  avoids addresses seen in session announcements.
* :class:`~repro.core.iprma.StaticIprmaAllocator` — "IPR k-band",
  Informed Partitioned Random with static TTL bands (fig. 1/2).
* :class:`~repro.core.adaptive.AdaptiveIprmaAllocator` — Deterministic
  Adaptive IPRMA (fig. 8), the AIPR-1..4 family of figs. 12/13.
* :class:`~repro.core.hybrid.HybridIprmaAllocator` — AIPR-H.
* :class:`~repro.core.hierarchy.HierarchicalAllocator` — the two-level
  prefix scheme the paper proposes in §4.1.
"""

from repro.core.address_space import MulticastAddressSpace
from repro.core.adaptive import AdaptiveIprmaAllocator
from repro.core.adaptive_legacy import LegacyAdaptiveIprmaAllocator
from repro.core.admin import AdminScopedAllocator
from repro.core.blocks import AddressBlock, block_for
from repro.core.allocator import (
    AllocationResult,
    Allocator,
    VisibleSet,
    nth_free_address,
)
from repro.core.clash import (
    AddressUsageIndex,
    clashes_with_any,
    find_clashing_pairs,
    sessions_clash,
)
from repro.core.hierarchy import HierarchicalAllocator, PrefixPool
from repro.core.hybrid import HybridIprmaAllocator
from repro.core.informed import InformedRandomAllocator
from repro.core.iprma import StaticIprmaAllocator
from repro.core.partitions import (
    PartitionMap,
    equal_band_ranges,
    margin_partition_map,
)
from repro.core.random_alloc import RandomAllocator
from repro.core.session import Session

__all__ = [
    "AdaptiveIprmaAllocator",
    "AddressUsageIndex",
    "AddressBlock",
    "AdminScopedAllocator",
    "LegacyAdaptiveIprmaAllocator",
    "block_for",
    "sessions_clash",
    "AllocationResult",
    "Allocator",
    "HierarchicalAllocator",
    "HybridIprmaAllocator",
    "InformedRandomAllocator",
    "MulticastAddressSpace",
    "PartitionMap",
    "PrefixPool",
    "RandomAllocator",
    "Session",
    "StaticIprmaAllocator",
    "VisibleSet",
    "clashes_with_any",
    "equal_band_ranges",
    "find_clashing_pairs",
    "margin_partition_map",
    "nth_free_address",
]
