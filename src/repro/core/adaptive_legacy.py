"""The original adaptive IPRMA (paper §2.4, fig. 7) — before the fix.

"Initially the address range is divided into even sized partitions...
As some of the partitions start to become densely occupied whilst
others are sparsely occupied, it is necessary to adapt the size of the
partitions."  Fig. 7 sketches two options; both size a band from the
sessions observed in it and reclaim space from its neighbours.

The scheme's documented failure modes (§2.4, "Deterministic Adaptive
Address Space Partitioning"):

* a band's geometry depends on *lower*-TTL session counts, which
  differ between sites (lower-TTL sessions are invisible outside their
  scope), so "a densely packed partition may expand at one site to
  overlap a lower TTL partition at another site";
* hence "clashes occurring between new sessions in the more widely
  scoped range and existing sessions in the less widely scoped range".

We implement both fig. 7 options so the failure can be measured
against the deterministic variant (see
``benchmarks/test_ablation_deterministic.py``):

* ``mode="push"`` — bands keep their order and are resized in place,
  each taking width proportional to its occupancy target, anchored at
  the bottom of the space (fig. 7's first option);
* ``mode="proportional"`` — the whole space is re-divided with band
  widths proportional to (count + 1) (fig. 7's second option).

Both compute geometry from **all** visible sessions — including
lower-TTL ones — which is exactly the property the deterministic
variant removes.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.adaptive import DEFAULT_OCCUPANCY
from repro.core.allocator import AllocationResult, Allocator, VisibleSet
from repro.core.partitions import IPR7_EDGES, PartitionMap

_MODES = ("push", "proportional")


class LegacyAdaptiveIprmaAllocator(Allocator):
    """Fig. 7's adaptive IPRMA, with its cross-scope failure modes.

    Args:
        space_size: total addresses.
        mode: "push" or "proportional" (the two fig. 7 options).
        edges: band separator TTLs.
        occupancy: target band occupancy for "push" sizing.
        rng: numpy Generator.
    """

    def __init__(self, space_size: int, mode: str = "push",
                 edges: Sequence[int] = IPR7_EDGES,
                 occupancy: float = DEFAULT_OCCUPANCY,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(space_size, rng)
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}: {mode!r}")
        self.mode = mode
        self.occupancy = occupancy
        self.partition_map = PartitionMap(tuple(edges))
        self.name = f"Adaptive-legacy ({mode})"

    def band_geometry(self, visible: VisibleSet) -> List[Tuple[int, int]]:
        """Half-open (lo, hi) per band — a function of ALL visible
        sessions, lower TTLs included (the flaw under test)."""
        counts = self.partition_map.band_counts(visible.ttls)
        if self.mode == "push":
            return self._push_geometry(counts)
        return self._proportional_geometry(counts)

    def _push_geometry(self, counts: np.ndarray) -> List[Tuple[int, int]]:
        """Bands sized by occupancy, laid out bottom-up in TTL order.

        A growing band pushes every higher band upwards; bands at the
        top get squeezed when the space runs out.
        """
        num_bands = self.partition_map.num_bands
        base = self.space_size // num_bands
        ranges: List[Tuple[int, int]] = []
        position = 0
        for band in range(num_bands):
            needed = max(base, math.ceil(counts[band] / self.occupancy))
            lo = min(position, self.space_size - 1)
            hi = min(self.space_size, lo + needed)
            if hi <= lo:
                lo, hi = self.space_size - 1, self.space_size
            ranges.append((lo, hi))
            position = hi
        return ranges

    def _proportional_geometry(self,
                               counts: np.ndarray) -> List[Tuple[int, int]]:
        """The whole space re-divided with widths ~ (count + 1)."""
        weights = counts.astype(np.float64) + 1.0
        total = weights.sum()
        ranges: List[Tuple[int, int]] = []
        position = 0
        for band, weight in enumerate(weights):
            if band == len(weights) - 1:
                hi = self.space_size
            else:
                width = max(1, int(round(
                    self.space_size * weight / total
                )))
                hi = min(self.space_size, position + width)
            lo = min(position, self.space_size - 1)
            hi = max(hi, lo + 1)
            ranges.append((lo, min(hi, self.space_size)))
            position = ranges[-1][1]
        return ranges

    def allocate(self, ttl: int, visible: VisibleSet) -> AllocationResult:
        self._check_ttl(ttl)
        band = self.partition_map.band_of(ttl)
        lo, hi = self.band_geometry(visible)[band]
        return self._informed_pick(visible, lo, hi, band=band)
