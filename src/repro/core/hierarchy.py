"""Hierarchical (prefix-based) address allocation — paper §4.1.

The paper concludes that flat session-directory allocation cannot scale
to the full 2^28 space and proposes a two-level hierarchy:

* at the **higher level**, multicast address *prefixes* are dynamically
  associated with regions of the network, allocated on long timescales
  so that announce/listen loss barely matters (the paper planned to
  carry these in BGMP/BGP exchanges);
* at the **lower level**, a scheme "similar to the one described here"
  allocates individual addresses out of the region's prefix, with the
  paper's guidance that ~10 000 addresses is "a reasonable bound on
  flat address space allocation";
* lower-level announcements only need regional scope, which improves
  announcement timeliness (smaller *i* in eq. 1).

This module implements that design so it can be compared against flat
allocation (see ``benchmarks/test_ext_hierarchy.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.allocator import (
    AllocationResult,
    Allocator,
    VisibleSet,
    nth_free_address,
)


class PrefixPool:
    """The higher level: a space divided into equal prefix blocks.

    Args:
        space_size: total addresses.
        num_prefixes: number of equal blocks ("prefixes").
    """

    def __init__(self, space_size: int, num_prefixes: int) -> None:
        if num_prefixes <= 0 or space_size < num_prefixes:
            raise ValueError(
                f"cannot cut {space_size} addresses into "
                f"{num_prefixes} prefixes"
            )
        self.space_size = space_size
        self.num_prefixes = num_prefixes
        self.prefix_size = space_size // num_prefixes

    def prefix_range(self, prefix: int) -> Tuple[int, int]:
        """Half-open address range of ``prefix``."""
        if not 0 <= prefix < self.num_prefixes:
            raise IndexError(f"prefix {prefix} out of {self.num_prefixes}")
        lo = prefix * self.prefix_size
        return lo, lo + self.prefix_size

    def claim_prefix(self, claimed_elsewhere: Set[int],
                     rng: np.random.Generator) -> Optional[int]:
        """Informed-random claim of a free prefix.

        Args:
            claimed_elsewhere: prefixes known (from prefix-usage
                announcements) to be held by some region.
            rng: numpy Generator.

        Returns:
            A free prefix id, or None if every prefix is claimed.
        """
        used = np.array(sorted(claimed_elsewhere), dtype=np.int64)
        free = self.num_prefixes - len(used)
        if free <= 0:
            return None
        r = int(rng.integers(0, free))
        return nth_free_address(used, r, 0, self.num_prefixes)


@dataclass
class RegionState:
    """One region's view: claimed prefixes and its local allocator."""

    region_id: int
    prefixes: List[int]


class HierarchicalAllocator(Allocator):
    """Two-level allocation: claim prefixes, allocate addresses inside.

    One instance per *region*.  Regions coordinate prefix claims via
    the (slow, reliable) prefix announcement channel, modelled by the
    ``claimed_elsewhere`` argument; individual addresses are allocated
    informed-random within the region's prefixes using only *local*
    announcements.

    Args:
        pool: the shared :class:`PrefixPool`.
        region_id: id of the owning region (reporting only).
        grow_at: claim another prefix when live local sessions exceed
            this fraction of owned capacity (the 67% rule again).
        rng: numpy Generator.
    """

    name = "Hierarchical"

    def __init__(self, pool: PrefixPool, region_id: int = 0,
                 grow_at: float = 0.67,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(pool.space_size, rng)
        if not 0.0 < grow_at <= 1.0:
            raise ValueError(f"grow_at outside (0, 1]: {grow_at}")
        self.pool = pool
        self.region_id = region_id
        self.grow_at = grow_at
        self.prefixes: List[int] = []
        self._claims_seen: Set[int] = set()

    # ------------------------------------------------------------------
    # Higher level: prefix management
    # ------------------------------------------------------------------
    def observe_claims(self, claimed_elsewhere: Sequence[int]) -> None:
        """Feed prefix-usage announcements from other regions."""
        self._claims_seen.update(int(p) for p in claimed_elsewhere)

    def ensure_capacity(self, live_local_sessions: int) -> bool:
        """Claim prefixes until capacity covers the local demand.

        Returns False when the pool is exhausted before capacity is
        sufficient.
        """
        while True:
            capacity = len(self.prefixes) * self.pool.prefix_size
            if capacity > 0 and live_local_sessions < self.grow_at * capacity:
                return True
            taken = self._claims_seen | set(self.prefixes)
            prefix = self.pool.claim_prefix(taken, self.rng)
            if prefix is None:
                return capacity > 0
            self.prefixes.append(prefix)

    # ------------------------------------------------------------------
    # Lower level: address allocation within owned prefixes
    # ------------------------------------------------------------------
    def declared_ranges(self, ttl: int,
                        visible: VisibleSet) -> List[Tuple[int, int]]:
        """Every prefix this region owns (whole space before any claim,
        since ``allocate`` claims its first prefix on demand)."""
        if not self.prefixes:
            return [(0, self.space_size)]
        return [self.pool.prefix_range(p) for p in self.prefixes]

    def allocate(self, ttl: int, visible: VisibleSet) -> AllocationResult:
        """Allocate within owned prefixes, avoiding visible addresses.

        ``visible`` needs only the *regional* announcements — the
        locality win the paper highlights.
        """
        self._check_ttl(ttl)
        if not self.prefixes:
            self.ensure_capacity(len(visible) + 1)
        if not self.prefixes:
            raise RuntimeError("prefix pool exhausted")
        # Least-occupied prefix first, then informed pick inside it.
        best = None
        best_free = -1
        for prefix in self.prefixes:
            lo, hi = self.pool.prefix_range(prefix)
            used_here = len(visible.in_address_range(lo, hi))
            free = (hi - lo) - used_here
            if free > best_free:
                best_free = free
                best = prefix
        lo, hi = self.pool.prefix_range(best)
        result = self._informed_pick(visible, lo, hi, band=best)
        return result
