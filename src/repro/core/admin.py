"""Address allocation inside administrative scope zones.

The paper (§1): "the simpler solutions work well for administrative
scope zone address allocation" — because zone visibility is symmetric,
an informed-random allocator inside a zone sees *every* session it
could clash with, so it packs the zone range nearly completely (the
i = 0 row of eq. 1).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.allocator import AllocationResult, Allocator, VisibleSet
from repro.routing.admin_scoping import AdminScopeMap, ScopeZone


class AdminScopedAllocator(Allocator):
    """Informed-random allocation from a node's admin zone range.

    One instance per (node, zone-range) pair.  ``allocate`` draws from
    the zone's address range, avoiding every visible address — with
    lossless intra-zone announcements that is every allocated address,
    so clashes cannot occur until the range is truly full.

    Args:
        scope_map: the topology's administrative zone structure.
        node: the allocating site.
        space_size: total address-space size (for the base class; the
            usable range is the zone's).
        rng: numpy Generator.
    """

    name = "Admin-IR"

    def __init__(self, scope_map: AdminScopeMap, node: int,
                 space_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(space_size, rng)
        self.scope_map = scope_map
        self.node = node

    def zone(self) -> Optional[ScopeZone]:
        """The smallest zone containing this node, if any."""
        zones = self.scope_map.zones_of(self.node)
        if not zones:
            return None
        return min(zones, key=lambda z: len(z.members))

    def declared_ranges(self, ttl: int,
                        visible: VisibleSet) -> List[Tuple[int, int]]:
        """The node's zone range (whole space when unzoned)."""
        zone = self.zone()
        if zone is None:
            return [(0, self.space_size)]
        return [(zone.range_lo, zone.range_hi)]

    def allocate(self, ttl: int, visible: VisibleSet) -> AllocationResult:
        """Allocate inside the node's zone range.

        The ``ttl`` argument is accepted for interface compatibility;
        scope is enforced by the zone boundary, not the TTL (real
        deployments still set a TTL large enough to span the zone).
        """
        self._check_ttl(ttl)
        zone = self.zone()
        if zone is None:
            # No zone: fall back to the whole space (unscoped range).
            return self._informed_pick(visible, 0, self.space_size)
        return self._informed_pick(visible, zone.range_lo, zone.range_hi)
