"""Pure random allocation — the paper's algorithm "R".

Chooses uniformly over the whole space, ignoring everything the session
directory knows.  Expected allocations before a clash grow as the
square root of the space size (the birthday problem, fig. 4).
"""

from __future__ import annotations

from repro.core.allocator import AllocationResult, Allocator, VisibleSet


class RandomAllocator(Allocator):
    """Uniform random choice over the full address space."""

    name = "R"

    def allocate(self, ttl: int, visible: VisibleSet) -> AllocationResult:
        self._check_ttl(ttl)
        address = int(self.rng.integers(0, self.space_size))
        return AllocationResult(address, band=None, informed=False,
                                forced=False)
