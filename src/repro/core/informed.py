"""Informed random allocation — the paper's algorithm "IR".

"An address is not allocated if it is seen in another session
announcement."  The choice is uniform over the addresses the site does
not know to be in use.  Because differently-scoped sessions are
invisible outside their scope, IR "is not a great improvement on
random allocation" in the paper's fig. 5 — the invisible allocations
dominate.
"""

from __future__ import annotations

from repro.core.allocator import AllocationResult, Allocator, VisibleSet


class InformedRandomAllocator(Allocator):
    """Uniform random choice among addresses not known to be in use."""

    name = "IR"

    def allocate(self, ttl: int, visible: VisibleSet) -> AllocationResult:
        self._check_ttl(ttl)
        return self._informed_pick(visible, 0, self.space_size, band=None)
