"""Address clash detection (paper §3 preliminaries).

Two sessions *clash* when they use the same group address and their
data scopes intersect somewhere in the network — a receiver inside the
intersection gets both sessions' traffic on one address.  Note the TTL
asymmetry (§1): the clash can exist even though neither announcing site
hears the other's announcement.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.session import Session
from repro.routing.scoping import ScopeMap


def sessions_clash(a: Session, b: Session, scope_map: ScopeMap) -> bool:
    """True if ``a`` and ``b`` collide on address and overlapping scope."""
    if a.address != b.address:
        return False
    return scope_map.scopes_overlap(a.source, a.ttl, b.source, b.ttl)


def clashes_with_any(new: Session, existing: Iterable[Session],
                     scope_map: ScopeMap) -> bool:
    """True if ``new`` clashes with any session in ``existing``.

    Only sessions sharing the new session's address are scope-checked,
    so keep ``existing`` pre-filtered by address where possible.
    """
    for other in existing:
        if sessions_clash(new, other, scope_map):
            return True
    return False


def find_clashing_pairs(sessions: Sequence[Session],
                        scope_map: ScopeMap) -> List[Tuple[int, int]]:
    """All clashing index pairs (i < j) within ``sessions``."""
    by_address: Dict[int, List[int]] = defaultdict(list)
    for idx, session in enumerate(sessions):
        by_address[session.address].append(idx)
    pairs: List[Tuple[int, int]] = []
    for indices in by_address.values():
        for pos, i in enumerate(indices):
            for j in indices[pos + 1:]:
                if scope_map.scopes_overlap(
                    sessions[i].source, sessions[i].ttl,
                    sessions[j].source, sessions[j].ttl,
                ):
                    pairs.append((i, j))
    return pairs


class AddressUsageIndex:
    """Mutable index of live sessions keyed by address.

    The steady-state experiments add and remove thousands of sessions;
    this keeps clash checks O(sessions sharing the address) instead of
    O(all sessions).
    """

    def __init__(self) -> None:
        self._by_address: Dict[int, List[Session]] = defaultdict(list)
        self._count = 0

    def add(self, session: Session) -> None:
        self._by_address[session.address].append(session)
        self._count += 1

    def remove(self, session: Session) -> None:
        """Remove by identity key.

        Raises:
            KeyError: if the session is not present.
        """
        bucket = self._by_address.get(session.address, [])
        for i, existing in enumerate(bucket):
            if existing.key() == session.key():
                bucket.pop(i)
                self._count -= 1
                if not bucket:
                    del self._by_address[session.address]
                return
        raise KeyError(f"session {session.key()} not in index")

    def same_address(self, address: int) -> List[Session]:
        """Live sessions currently using ``address``."""
        return list(self._by_address.get(address, ()))

    def clash_for(self, new: Session, scope_map: ScopeMap) -> bool:
        """Would ``new`` clash with any indexed session?"""
        return clashes_with_any(new, self.same_address(new.address),
                                scope_map)

    def __len__(self) -> int:
        return self._count
