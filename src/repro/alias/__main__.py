"""Entry point for ``python -m repro.alias``."""

import sys

from repro.alias.cli import main

sys.exit(main())
