"""The ALIAS8xx rule table (band ALIAS801–814).

Kept free of imports so :mod:`repro.lint.registry` can list these
codes without pulling in the escape/aliasing engine (the registry is
imported by every CLI, including ones that never run this pass).

Like FLOW6xx and UNIT7xx, ALIAS8xx rules are *whole-program*: whether
a leaked container is ever mutated, or a class's instances escape to
module-global state, depends on call edges files away, so they run
from :mod:`repro.alias.analysis`, not from the lint engine.

Two groups:

* **ALIAS801–805 — aliasing defects.**  Hard findings: a live
  internal container handed to callers, the same object mutated
  through two access paths, a container mutated while being
  iterated, an object mutated after being published to shared state.
  These are bugs (or one refactor away from bugs) today, independent
  of any migration.
* **ALIAS806–814 — SoA migration blockers.**  Advisory findings:
  identity reliance (``is`` between instances, ``id()``, default
  object-identity hashing as a dict/set key), instances escaping to
  module-global state, the unresolved-call soundness boundary, and
  defensive copies sitting on flow hot paths.  Legal Python, but
  each one breaks — or is exactly the cost removed — when the object
  is flattened to a value/index in a struct-of-arrays core, so the
  ledger turns them into per-class SoA-safe / SoA-blocked verdicts.
"""

from __future__ import annotations

from typing import Tuple

#: (code, name, advisory, description)
ALIAS_RULES: Tuple[Tuple[str, str, bool, str], ...] = (
    ("ALIAS801", "leaked-internal-container", False,
     "a method returns a live internal mutable container (e.g. "
     "return self._entries); callers can mutate the class's state "
     "behind its back — return a copy or a tuple"),
    ("ALIAS802", "leaked-container-view", False,
     "a method returns a live view or stored element of an internal "
     "container (dict .values()/.keys()/.items(), or a mutable "
     "element the class itself built); the view tracks and exposes "
     "later internal mutation"),
    ("ALIAS803", "aliased-mutation", False,
     "one object is mutated through two access paths: a class stores "
     "a caller-supplied container without copying and then mutates "
     "it, or a caller mutates a container a getter leaked"),
    ("ALIAS804", "iterator-invalidation", False,
     "a container is mutated while being iterated (no list(...) "
     "snapshot); RuntimeError on dicts/sets, silently skipped "
     "elements on lists"),
    ("ALIAS805", "mutation-after-publish", False,
     "an object is mutated after being stored into module-global or "
     "class-level shared state; every holder of the published "
     "reference sees the late write"),
    ("ALIAS806", "identity-comparison", True,
     "an is/is not comparison between instances of migrating "
     "classes; object identity has no meaning once instances are "
     "rows in a struct-of-arrays"),
    ("ALIAS807", "identity-call", True,
     "id() applied to (or inside the methods of) a migrating class; "
     "the CPython object address disappears under a value/index "
     "representation"),
    ("ALIAS808", "identity-hash-key", True,
     "an instance of a migrating class with default object-identity "
     "hashing used as a dict key or set member; equal values would "
     "collapse (or split) once identity is gone"),
    ("ALIAS811", "global-escape", True,
     "instances of a migrating class are reachable from module-level "
     "or class-level state; flattening the class requires migrating "
     "that ambient holder too"),
    ("ALIAS812", "soa-blocked", True,
     "per-class rollup: this core/sim class is SoA-blocked by at "
     "least one ALIAS8xx finding (the alias-ledger.json verdict "
     "surfaced as an annotation)"),
    ("ALIAS813", "unresolved-alias-call", True,
     "a call inside a migrating class's methods the graph cannot "
     "resolve; aliasing past this edge is assumed, not proved (the "
     "soundness boundary shared with FLOW615)"),
    ("ALIAS814", "hot-defensive-copy", True,
     "a defensive copy (list(...)/dict(...)/.copy()) on a flow hot "
     "path; correct today, and exactly the per-event cost the "
     "struct-of-arrays migration deletes"),
)

#: Rule names whose findings are advisory (report-only by default).
ADVISORY_RULES = frozenset(
    name for _, name, advisory, _ in ALIAS_RULES if advisory
)

ALIAS_RULE_NAMES = tuple(name for _, name, _, _ in ALIAS_RULES)
