"""Per-class aliasing facts: containers, stores, mutations, identity.

One AST pass over every module collects, for each class, the raw
material the escape/aliasing engine judges:

* which attributes hold *internal mutable containers* (assigned a
  fresh ``{}``/``[]``/``set()``/``deque()``... anywhere in the class)
  and what kind of container each one is;
* which of those containers hold mutable *elements* the class itself
  built (``self._x[k] = []`` / ``setdefault(k, [])`` — returning such
  an element is as live as returning the container);
* which attributes were stored straight from a caller-supplied
  parameter (the aliased-store half of ALIAS803);
* which attributes the class mutates through container operations;
* identity traits — does the class define value ``__eq__``/
  ``__hash__``, is it a (frozen) dataclass, an Enum, an Exception —
  which decide whether default object-identity hashing is in play;
* module-level holders: container globals (publish targets for
  ALIAS805), class-level containers, and module-level instance
  bindings (``WORLD = World()`` — an escape to global state).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.flow.graph import CallGraph, dotted

#: Constructor names that build a fresh mutable container.
_DICT_CTORS = frozenset({"dict", "defaultdict", "OrderedDict",
                         "Counter"})
_LIST_CTORS = frozenset({"list", "deque"})
_SET_CTORS = frozenset({"set"})

#: Method names that mutate a container in place.  High-confidence
#: container vocabulary only: generic verbs like ``update`` also
#: exist on non-containers, but a class that stores a parameter and
#: calls any of these on it is aliasing either way.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "popleft", "appendleft", "remove", "discard",
    "clear", "sort", "reverse",
})

#: The subset whose effect changes container *size* — the ops that
#: invalidate an in-flight iterator (ALIAS804).
SIZE_CHANGING_METHODS = frozenset({
    "append", "extend", "insert", "add", "pop", "popitem", "popleft",
    "appendleft", "remove", "discard", "clear", "setdefault",
})

#: Calls that take a live container and return an independent copy.
COPY_CALLS = frozenset({"list", "dict", "set", "tuple", "frozenset",
                        "sorted"})

#: Base-class names that opt a class out of the migrating set.
_ENUM_BASES = frozenset({"Enum", "IntEnum", "IntFlag", "Flag",
                         "StrEnum"})


def container_kind(node: ast.expr) -> Optional[str]:
    """"dict" | "list" | "set" when ``node`` builds a fresh mutable
    container, else None."""
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        tail = (dotted(node.func) or "").split(".")[-1]
        if tail in _DICT_CTORS:
            return "dict"
        if tail in _LIST_CTORS:
            return "list"
        if tail in _SET_CTORS:
            return "set"
    return None


@dataclass
class ClassFacts:
    """Everything the alias rules need to know about one class."""

    qualname: str
    module: str
    name: str
    path: str
    line: int
    bases: List[str] = field(default_factory=list)
    #: attr -> container kind ("dict"|"list"|"set")
    container_attrs: Dict[str, str] = field(default_factory=dict)
    #: containers whose stored elements are themselves mutable
    #: containers the class built
    element_container_attrs: Set[str] = field(default_factory=set)
    #: attr -> (param, method qualname, line): stored without a copy
    param_stored: Dict[str, Tuple[str, str, int]] = field(
        default_factory=dict)
    #: attrs mutated through container operations anywhere in the class
    mutated_attrs: Set[str] = field(default_factory=set)
    defines_eq: bool = False
    defines_hash: bool = False
    is_dataclass: bool = False
    frozen_dataclass: bool = False
    is_enum: bool = False
    is_exception: bool = False

    @property
    def identity_hashed(self) -> bool:
        """True when instances hash by object identity (the default).

        A dataclass with ``eq=True`` (the default) either inherits a
        value hash (frozen) or is unhashable — neither relies on
        identity; a class defining ``__eq__``/``__hash__`` chose its
        own semantics.
        """
        return not (self.defines_eq or self.defines_hash
                    or self.is_dataclass or self.is_enum)


@dataclass
class ModuleHolders:
    """Module-level state that can receive published references."""

    #: module-level container name -> kind
    containers: Dict[str, str] = field(default_factory=dict)
    #: module-level name -> class qualname of the instance bound to it
    instances: Dict[str, str] = field(default_factory=dict)


@dataclass
class AliasFacts:
    """The whole-program fact base for the alias engine."""

    classes: Dict[str, ClassFacts] = field(default_factory=dict)
    #: class qualname -> class-level container name -> kind
    class_containers: Dict[str, Dict[str, str]] = field(
        default_factory=dict)
    modules: Dict[str, ModuleHolders] = field(default_factory=dict)

    def facts_with_bases(self, graph: CallGraph,
                         qualname: str) -> List[ClassFacts]:
        """The class's facts plus every resolvable ancestor's."""
        out: List[ClassFacts] = []
        seen: Set[str] = set()
        stack = [qualname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            facts = self.classes.get(current)
            if facts is None:
                continue
            out.append(facts)
            for base in facts.bases:
                for candidate in graph.class_by_name.get(
                        base.split(".")[-1], []):
                    stack.append(candidate)
        return out

    def container_kind_of(self, graph: CallGraph, qualname: str,
                          attr: str) -> Optional[str]:
        for facts in self.facts_with_bases(graph, qualname):
            kind = facts.container_attrs.get(attr)
            if kind:
                return kind
        return None

    def element_container(self, graph: CallGraph, qualname: str,
                          attr: str) -> bool:
        return any(attr in facts.element_container_attrs
                   for facts in self.facts_with_bases(graph, qualname))


def _self_attr(node: ast.expr) -> Optional[str]:
    """``x`` for a plain ``self.x`` attribute access, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _dataclass_flags(node: ast.ClassDef) -> Tuple[bool, bool]:
    is_dc = False
    frozen = False
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = (dotted(target) or "").split(".")[-1]
        if name != "dataclass":
            continue
        is_dc = True
        if isinstance(dec, ast.Call):
            for keyword in dec.keywords:
                if keyword.arg == "frozen" and isinstance(
                        keyword.value, ast.Constant):
                    frozen = bool(keyword.value.value)
    return is_dc, frozen


class _ClassCollector(ast.NodeVisitor):
    """Walk one module, filling the fact base."""

    def __init__(self, facts: AliasFacts, module_name: str,
                 path: str) -> None:
        self.facts = facts
        self.module_name = module_name
        self.path = path
        self.holders = facts.modules.setdefault(module_name,
                                                ModuleHolders())
        self._scope: List[str] = []
        self._class_stack: List[ClassFacts] = []
        self._method_stack: List[str] = []

    # -- module level --------------------------------------------------
    def visit_Module(self, node: ast.Module) -> None:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and len(
                    stmt.targets) == 1 and isinstance(
                    stmt.targets[0], ast.Name):
                name = stmt.targets[0].id
                kind = container_kind(stmt.value)
                if kind:
                    self.holders.containers[name] = kind
                elif isinstance(stmt.value, ast.Call):
                    callee = dotted(stmt.value.func) or ""
                    tail = callee.split(".")[-1]
                    if tail and tail[0].isupper():
                        self.holders.instances[name] = tail
            self.visit(stmt)

    # -- classes -------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = ".".join([self.module_name] + self._scope
                            + [node.name])
        is_dc, frozen = _dataclass_flags(node)
        bases = [b for b in (dotted(base) for base in node.bases) if b]
        tails = {base.split(".")[-1] for base in bases}
        facts = ClassFacts(
            qualname=qualname, module=self.module_name,
            name=node.name, path=self.path, line=node.lineno,
            bases=bases,
            is_dataclass=is_dc, frozen_dataclass=frozen,
            is_enum=bool(tails & _ENUM_BASES),
            is_exception=any(t == "Exception" or t.endswith("Error")
                             for t in tails),
        )
        self.facts.classes[qualname] = facts
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef):
                if stmt.name == "__eq__":
                    facts.defines_eq = True
                if stmt.name == "__hash__":
                    facts.defines_hash = True
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if target.id == "__hash__":
                        facts.defines_hash = True
                    kind = container_kind(stmt.value)
                    if kind:
                        self.facts.class_containers.setdefault(
                            qualname, {})[target.id] = kind
        self._class_stack.append(facts)
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()
        self._class_stack.pop()

    # -- methods -------------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node) -> None:
        self._visit_function(node)

    def _visit_function(self, node) -> None:
        qualname = ".".join([self.module_name] + self._scope
                            + [node.name])
        if self._class_stack and not self._method_stack:
            self._collect_method_facts(node, qualname)
        self._scope.append(node.name)
        self._method_stack.append(qualname)
        self.generic_visit(node)
        self._method_stack.pop()
        self._scope.pop()

    def _collect_method_facts(self, node, qualname: str) -> None:
        facts = self._class_stack[-1]
        params = set()
        args = node.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            if arg.arg != "self":
                params.add(arg.arg)
        for stmt in ast.walk(node):
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (stmt.targets
                           if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                value = stmt.value
                if value is None:
                    continue
                for target in targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        kind = container_kind(value)
                        if kind:
                            facts.container_attrs.setdefault(attr,
                                                             kind)
                        elif (isinstance(value, ast.Name)
                              and value.id in params):
                            facts.param_stored.setdefault(
                                attr, (value.id, qualname,
                                       stmt.lineno))
                        continue
                    # self._x[k] = <fresh container> / = obj
                    if isinstance(target, ast.Subscript):
                        base = _self_attr(target.value)
                        if base is not None:
                            facts.mutated_attrs.add(base)
                            if container_kind(value):
                                facts.element_container_attrs.add(
                                    base)
            elif isinstance(stmt, ast.AugAssign):
                attr = _self_attr(stmt.target)
                if attr is not None and isinstance(
                        stmt.op, (ast.BitOr, ast.Add)):
                    facts.mutated_attrs.add(attr)
                elif isinstance(stmt.target, ast.Subscript):
                    base = _self_attr(stmt.target.value)
                    if base is not None:
                        facts.mutated_attrs.add(base)
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    if isinstance(target, ast.Subscript):
                        base = _self_attr(target.value)
                        if base is not None:
                            facts.mutated_attrs.add(base)
            elif isinstance(stmt, ast.Call):
                if not isinstance(stmt.func, ast.Attribute):
                    continue
                method = stmt.func.attr
                if method not in MUTATOR_METHODS:
                    continue
                base = _self_attr(stmt.func.value)
                if base is not None:
                    facts.mutated_attrs.add(base)
                    if method == "setdefault" and len(
                            stmt.args) >= 2 and container_kind(
                            stmt.args[1]):
                        facts.element_container_attrs.add(base)
                    continue
                # self._x[k].append(...): elements are containers
                if isinstance(stmt.func.value, ast.Subscript):
                    base = _self_attr(stmt.func.value.value)
                    if base is not None:
                        facts.element_container_attrs.add(base)


def collect_alias_facts(graph: CallGraph) -> AliasFacts:
    """One fact base over every module in the graph."""
    facts = AliasFacts()
    for module in graph.modules.values():
        collector = _ClassCollector(facts, module.name, module.path)
        collector.visit(module.tree)
    return facts
