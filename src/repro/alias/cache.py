"""Whole-tree cache for the alias analysis.

ALIAS8xx findings and the ledger verdicts are whole-program facts (a
new call edge or a moved constructor files away can create or destroy
one), so this reuses the flow cache's tree-digest machinery with an
alias-specific rule signature: any edit anywhere is a miss, an
untouched tree is a hit.
"""

from __future__ import annotations

import hashlib

from repro.alias.rules import ALIAS_RULES
from repro.flow.cache import FlowCache, tree_digest  # noqa: F401
from repro.lint.registry import CACHE_FILES

#: Bumped whenever the analysis or the on-disk schema changes shape.
CACHE_FORMAT = 1

DEFAULT_CACHE_FILE = CACHE_FILES["alias"]


def rules_signature() -> str:
    """Identity of the ALIAS rule table (and analysis version)."""
    payload = repr((CACHE_FORMAT, ALIAS_RULES))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def alias_cache(path: str) -> FlowCache:
    """A FlowCache keyed by the *alias* rule signature."""
    return FlowCache(path, signature=rules_signature())
