"""repro.alias: interprocedural escape, aliasing and mutability
analysis (ALIAS801–814) with per-class SoA migration verdicts."""

from repro.alias.analysis import AliasReport, analyze_paths
from repro.alias.rules import ALIAS_RULES

__all__ = ["ALIAS_RULES", "AliasReport", "analyze_paths"]
