"""The SoA migration ledger: one verdict per class.

Joins three whole-program facts — the escape classification, the
ALIAS8xx findings attributed to each class, and the flow hot-path
ranking (``flow-hotpaths.json``'s site list) — into
``alias-ledger.json``: for every class in ``core/``, ``sim/`` and
``sap/``, either ``soa-safe`` (nothing ties its instances to object
identity or ambient state; flatten away) or
``soa-blocked-by-<rule>`` naming exactly what must be fixed first.

Blocking rules are the aliasing defects (ALIAS801–805) plus the
identity/escape advisories (ALIAS806–808, ALIAS811).  ALIAS813
(soundness boundary) and ALIAS814 (hot defensive copies — a cost,
not a blocker) inform the entry but never flip the verdict; ALIAS812
is *derived from* the verdict, not an input to it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.alias.engine import AliasResult, is_migrating
from repro.flow.hotpath import HotpathResult

#: Rules that flip a class to soa-blocked.
BLOCKING_RULES = ("ALIAS801", "ALIAS802", "ALIAS803", "ALIAS804",
                  "ALIAS805", "ALIAS806", "ALIAS807", "ALIAS808",
                  "ALIAS811")

#: Packages the ledger must cover exhaustively.
LEDGER_PREFIXES = ("repro.core.", "repro.sim.", "repro.sap.")


def _class_of_function(qualname: str,
                       classes: Dict[str, Any]) -> Optional[str]:
    owner = qualname.rsplit(".", 1)[0]
    return owner if owner in classes else None


def build_ledger(result: AliasResult,
                 hot: Optional[HotpathResult] = None
                 ) -> Dict[str, Any]:
    """The ``alias-ledger.json`` payload."""
    assert result.facts is not None
    hot_sites: Dict[str, List[Any]] = {}
    if hot is not None:
        for site in hot.sites:
            owner = _class_of_function(site.function,
                                       result.facts.classes)
            if owner is not None:
                hot_sites.setdefault(owner, []).append(site)

    entries: List[Dict[str, Any]] = []
    for qualname in sorted(result.facts.classes):
        if not qualname.startswith(LEDGER_PREFIXES):
            continue
        facts = result.facts.classes[qualname]
        level, detail = result.escape.get(
            qualname, ("local", "defining module only"))
        rules = result.class_rules.get(qualname, set())
        blocking = sorted(r for r in rules if r in BLOCKING_RULES)
        if facts.is_enum or facts.is_exception:
            # Values already; nothing object-shaped to flatten.
            verdict = "soa-safe"
            blocking = []
        elif blocking:
            verdict = f"soa-blocked-by-{blocking[0]}"
        else:
            verdict = "soa-safe"
        sites = hot_sites.get(qualname, [])
        entries.append({
            "class": facts.name,
            "qualname": qualname,
            "module": facts.module,
            "path": facts.path,
            "line": facts.line,
            "escape": level,
            "escape_detail": detail,
            "verdict": verdict,
            "blocking_rules": blocking,
            "advisory_rules": sorted(
                r for r in rules if r not in BLOCKING_RULES),
            "identity": {
                "defines_eq": facts.defines_eq,
                "defines_hash": facts.defines_hash,
                "dataclass": facts.is_dataclass,
                "frozen": facts.frozen_dataclass,
                "enum": facts.is_enum,
                "identity_hashed": facts.identity_hashed,
            },
            "container_attrs": dict(sorted(
                facts.container_attrs.items())),
            "hot": {
                "sites": len(sites),
                "score": round(sum(s.score for s in sites), 2),
            },
        })

    # Blocked-and-hot first: the migration work list.
    entries.sort(key=lambda e: (
        e["verdict"] == "soa-safe",
        -e["hot"]["score"],
        e["qualname"],
    ))

    core_sim = [e for e in entries
                if e["qualname"].startswith(("repro.core.",
                                             "repro.sim."))]
    return {
        "entries": entries,
        "summary": {
            "total": len(entries),
            "soa_safe": sum(e["verdict"] == "soa-safe"
                            for e in entries),
            "soa_blocked": sum(e["verdict"] != "soa-safe"
                               for e in entries),
            "core_sim_total": len(core_sim),
            "core_sim_safe": sum(e["verdict"] == "soa-safe"
                                 for e in core_sim),
        },
    }


def migrating_ledger_classes(result: AliasResult) -> List[str]:
    """Ledgered class qualnames in the migrating set (for tests)."""
    assert result.facts is not None
    return sorted(q for q in result.facts.classes
                  if q.startswith(LEDGER_PREFIXES)
                  and is_migrating(q))
