"""Per-class escape classification: local / module / global.

The lattice (bottom to top):

* **local** — every instance the graph can see is constructed,
  referenced, and typed only inside the defining module.  Flattening
  the class to struct-of-arrays rows is a one-module change.
* **module** — instances cross module boundaries (constructed,
  annotated, stored on foreign attributes, or used as a method-call
  receiver elsewhere), but only ever held by other objects or
  locals.  The migration must update every crossing, all of which
  the call graph enumerates.
* **global** — instances are reachable from ambient state: a
  module-level binding (``WORLD = World()``) or a publish into a
  module-global / class-level container.  The holder itself must
  migrate with the class (ALIAS811).

Classification is deliberately monotone in the graph's knowledge:
an edge the graph cannot see can only *under*-classify, and that
boundary is exactly what ALIAS813 reports per call site.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.alias.classinfo import AliasFacts
from repro.flow.graph import CallGraph


def _constructed_class(graph: CallGraph, module_name: str,
                       callee_text: str) -> Optional[str]:
    """Resolve a constructor call's class from the caller's module."""
    tail = callee_text.split(".")[-1]
    module = graph.modules.get(module_name)
    if module is not None:
        for candidate in (f"{module_name}.{tail}",
                          module.imports.get(tail, "")):
            if candidate in graph.classes:
                return candidate
    matches = graph.class_by_name.get(tail, [])
    if len(matches) == 1:
        return matches[0]
    return None


def classify_escapes(
        graph: CallGraph, facts: AliasFacts,
        published: Dict[str, str]) -> Dict[str, Tuple[str, str]]:
    """class qualname -> (level, detail) for every known class."""
    out: Dict[str, Tuple[str, str]] = {}

    # Global: module-level instance bindings (WORLD = World()).
    global_detail: Dict[str, str] = dict(published)
    for module_name, holders in facts.modules.items():
        for name, class_tail in holders.instances.items():
            cls = _constructed_class(graph, module_name, class_tail)
            if cls is not None:
                global_detail.setdefault(
                    cls, f"module-level binding {name} in "
                         f"{module_name}")

    # Module: any cross-module reference.
    module_detail: Dict[str, str] = {}

    def crossing(cls: str, detail: str) -> None:
        module_detail.setdefault(cls, detail)

    for caller, sites in graph.calls.items():
        info = graph.functions.get(caller)
        caller_module = info.module if info else ""
        for site in sites:
            if site.kind == "constructor":
                cls = _constructed_class(graph, caller_module,
                                         site.callee_text)
                if cls is not None:
                    owner = facts.classes.get(cls)
                    if owner and owner.module != caller_module:
                        crossing(cls, f"constructed in "
                                      f"{caller_module}")
            if site.receiver_class is not None:
                owner = facts.classes.get(site.receiver_class)
                if owner and owner.module != caller_module:
                    crossing(site.receiver_class,
                             f"method receiver in {caller_module}")

    by_name: Dict[str, list] = {}
    for qualname, cls_facts in facts.classes.items():
        by_name.setdefault(cls_facts.name, []).append(qualname)

    for func in graph.functions.values():
        for annotation in func.annotations.values():
            tail = annotation.split(".")[-1]
            matches = by_name.get(tail, [])
            if len(matches) == 1:
                owner = facts.classes[matches[0]]
                if owner.module != func.module:
                    crossing(matches[0],
                             f"annotated parameter in {func.module}")

    for cls_info in graph.classes.values():
        for attr, held in cls_info.attr_types.items():
            owner = facts.classes.get(held)
            if owner and owner.module != cls_info.module:
                crossing(held, f"held by {cls_info.qualname}.{attr}")

    for qualname in facts.classes:
        if qualname in global_detail:
            out[qualname] = ("global", global_detail[qualname])
        elif qualname in module_detail:
            out[qualname] = ("module", module_detail[qualname])
        else:
            out[qualname] = ("local", "defining module only")
    return out
