"""Renderers for alias reports: text, JSON, GitHub annotations.

Hard ALIAS801–805 findings render exactly like the linter's (same
``Finding`` shape, same ``::error`` annotations).  Advisory SoA
blockers get a separate text section and ``::notice`` lines (or
``::error`` under ``--strict``), and the text renderer closes with
the ledger verdict counts so the gate output answers "how much of
core/sim is provably flattenable" at a glance.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.alias.analysis import AliasReport
from repro.lint.report import render_github as _github_errors


def render_text(report: AliasReport, strict: bool = False) -> str:
    lines: List[str] = [f.format() for f in report.findings]
    count = len(report.findings)
    if count == 0:
        lines.append("repro-alias: clean (0 findings)")
    else:
        noun = "finding" if count == 1 else "findings"
        lines.append(f"repro-alias: {count} {noun}")
    if report.advisory:
        label = "errors under --strict" if strict else "report-only"
        lines.append(f"SoA blockers ({len(report.advisory)} sites, "
                     f"{label}):")
        for finding in report.advisory[:10]:
            lines.append("  " + finding.format())
        rest = len(report.advisory) - min(10, len(report.advisory))
        if rest > 0:
            lines.append(f"  ... and {rest} more "
                         f"(--format json for all)")
    if report.suppressed:
        lines.append(f"suppressed: {report.suppressed}")
    if report.stats:
        lines.append(
            "ledger: {ledger_soa_safe}/{ledger_total} classes "
            "SoA-safe ({ledger_core_sim_safe}/{ledger_core_sim_total}"
            " in core+sim); escape {escape_local} local / "
            "{escape_module} module / {escape_global} global "
            "({functions} functions)".format(**{
                key: report.stats.get(key, 0)
                for key in ("ledger_soa_safe", "ledger_total",
                            "ledger_core_sim_safe",
                            "ledger_core_sim_total", "escape_local",
                            "escape_module", "escape_global",
                            "functions")
            })
        )
    if report.from_cache:
        lines.append("(cached: tree unchanged)")
    return "\n".join(lines)


def render_json(report: AliasReport) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


def render_ledger(report: AliasReport) -> Dict[str, Any]:
    """The ``alias-ledger.json`` payload (already ranked)."""
    return report.ledger


def render_github(report: AliasReport, strict: bool = False) -> str:
    lines: List[str] = []
    hard = _github_errors(report.findings)
    if hard:
        lines.append(hard)
    for finding in report.advisory:
        message = f"{finding.code} [{finding.rule}] {finding.message}"
        directive = "error" if strict else "notice"
        lines.append(f"::{directive} file={finding.path},"
                     f"line={max(finding.line, 1)},"
                     f"col={finding.col}::{message}")
    return "\n".join(lines)
