"""Orchestrator: graph -> engine -> ledger -> report, cached.

``analyze_paths`` is the programmatic entry the CLI and the tier-1
tests share.  It reuses the shared flow graph (one parse for flow /
units / alias in the same process), runs the escape/aliasing engine,
joins the ledger against the flow hot-path ranking, emits the
ALIAS812 per-class rollup advisories for blocked ``core/``/``sim/``
classes, applies ``# simlint: disable=<rule>`` suppressions at the
reported line, and serves byte-identical results from the whole-tree
cache when nothing changed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.alias.cache import (
    DEFAULT_CACHE_FILE,
    alias_cache,
    tree_digest,
)
from repro.alias.engine import analyze_alias
from repro.alias.ledger import build_ledger
from repro.alias.rules import ALIAS_RULE_NAMES
from repro.flow.graph import shared_graph
from repro.flow.hotpath import analyze_hotpaths
from repro.lint.engine import (
    Finding,
    iter_python_files,
    parse_suppressions,
)


@dataclass
class AliasReport:
    """Everything one run produces."""

    findings: List[Finding]            # hard ALIAS801-805, unsuppressed
    advisory: List[Finding]            # ALIAS806-814 blockers
    ledger: Dict[str, Any] = field(default_factory=dict)
    suppressed: int = 0
    stats: Dict[str, int] = field(default_factory=dict)
    from_cache: bool = False

    def exit_findings(self, strict: bool = False) -> List[Finding]:
        if strict:
            return self.findings + self.advisory
        return self.findings

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": len(self.findings),
            "findings": [f.to_dict() for f in self.findings],
            "advisory_count": len(self.advisory),
            "advisory": [f.to_dict() for f in self.advisory],
            "ledger": self.ledger,
            "suppressed": self.suppressed,
            "stats": self.stats,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "AliasReport":
        return cls(
            findings=[Finding(**f) for f in raw.get("findings", [])],
            advisory=[Finding(**f) for f in raw.get("advisory", [])],
            ledger=dict(raw.get("ledger", {})),
            suppressed=int(raw.get("suppressed", 0)),
            stats=dict(raw.get("stats", {})),
            from_cache=True,
        )


def _filter_rules(findings: Sequence[Finding],
                  select: Optional[List[str]],
                  ignore: Optional[List[str]]) -> List[Finding]:
    out = list(findings)
    if select:
        chosen = set(select)
        out = [f for f in out if f.rule in chosen]
    if ignore:
        dropped = set(ignore)
        out = [f for f in out if f.rule not in dropped]
    return out


def validate_rule_names(select: Optional[List[str]],
                        ignore: Optional[List[str]]) -> None:
    """Raises ValueError on a name not in the ALIAS rule table."""
    known = set(ALIAS_RULE_NAMES)
    for name in (select or []) + (ignore or []):
        if name not in known:
            raise ValueError(
                f"unknown rule {name!r}; known: {sorted(known)}"
            )


def _rollup_findings(ledger: Dict[str, Any]) -> List[Finding]:
    """ALIAS812: one advisory per blocked core/sim class."""
    out: List[Finding] = []
    for entry in ledger.get("entries", []):
        if entry["verdict"] == "soa-safe":
            continue
        if not entry["qualname"].startswith(("repro.core.",
                                             "repro.sim.")):
            continue
        blockers = ", ".join(entry["blocking_rules"])
        out.append(Finding(
            path=entry["path"], line=entry["line"], col=0,
            code="ALIAS812", rule="soa-blocked",
            message=(f"{entry['class']} is {entry['verdict']} "
                     f"(escape: {entry['escape']}; blockers: "
                     f"{blockers}); see alias-ledger.json"),
        ))
    return out


def analyze_sources(sources: Sequence[Tuple[str, str]]
                    ) -> AliasReport:
    """Run the escape/aliasing engine over ``(path, text)`` pairs."""
    graph = shared_graph(sources)
    result = analyze_alias(graph)
    hot = analyze_hotpaths(graph)
    ledger = build_ledger(result, hot)

    hard = list(result.findings)
    advisory = list(result.advisory) + _rollup_findings(ledger)

    # Apply # simlint: disable suppressions at the reported line.
    suppressions = {path: parse_suppressions(text)
                    for path, text in sources}
    suppressed = 0

    def keep(finding: Finding) -> bool:
        nonlocal suppressed
        marks = suppressions.get(finding.path)
        if marks is not None and marks.suppressed(finding.line,
                                                  finding.rule):
            suppressed += 1
            return False
        return True

    hard = [f for f in hard if keep(f)]
    advisory = [f for f in advisory if keep(f)]
    hard.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    advisory.sort(key=lambda f: (f.path, f.line, f.col, f.code))

    stats = dict(result.stats)
    stats["modules"] = len(graph.modules)
    for key, value in ledger["summary"].items():
        stats[f"ledger_{key}"] = value

    return AliasReport(
        findings=hard,
        advisory=advisory,
        ledger=ledger,
        suppressed=suppressed,
        stats=stats,
    )


def analyze_paths(paths: Sequence[str],
                  use_cache: bool = True,
                  cache_file: str = DEFAULT_CACHE_FILE
                  ) -> AliasReport:
    """Analyze every ``.py`` under ``paths``.

    Raises:
        FileNotFoundError: if a named path does not exist.
    """
    sources: List[Tuple[str, str]] = []
    for file_path in iter_python_files(paths):
        text = Path(file_path).read_text(encoding="utf-8")
        sources.append((file_path, text))

    cache = alias_cache(cache_file) if use_cache else None
    digest = tree_digest(sources)
    if cache is not None:
        cached = cache.lookup(digest)
        if cached is not None:
            return AliasReport.from_dict(cached)

    report = analyze_sources(sources)
    if cache is not None:
        cache.store(digest, report.to_dict())
    return report
