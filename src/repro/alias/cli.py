"""``python -m repro.alias`` — the escape & aliasing proof CLI.

Same contract as the other seven tools: exit 0 clean, 1 findings,
2 usage error; ``--list-rules`` prints the shared registry;
``--format github`` emits Actions annotations.  ``--strict``
promotes advisory ALIAS806–814 SoA blockers to errors, and
``--ledger-out`` writes the per-class ``alias-ledger.json`` verdict
file the migration work is planned from.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.alias.analysis import (
    _filter_rules,
    analyze_paths,
    validate_rule_names,
)
from repro.alias.cache import DEFAULT_CACHE_FILE
from repro.alias.report import (
    render_github,
    render_json,
    render_ledger,
    render_text,
)
from repro.lint.registry import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    add_report_arguments,
    render_registry,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-alias",
        description=("interprocedural escape, aliasing and "
                     "mutability analysis (ALIAS801–814) over the "
                     "flow call graph, with per-class SoA-safe / "
                     "SoA-blocked verdicts"),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    add_report_arguments(parser)
    parser.add_argument(
        "--select", action="append", metavar="RULE",
        help="only report these rule names (repeatable)",
    )
    parser.add_argument(
        "--ignore", action="append", metavar="RULE",
        help="skip these rule names (repeatable)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="advisory ALIAS806–814 SoA blockers also fail the run",
    )
    parser.add_argument(
        "--ledger-out", metavar="FILE",
        help="write the per-class alias-ledger.json to FILE",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="always re-analyze, ignoring the whole-tree cache",
    )
    parser.add_argument(
        "--cache-file", default=DEFAULT_CACHE_FILE,
        help=f"cache location (default: {DEFAULT_CACHE_FILE})",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_registry())
        return EXIT_CLEAN

    try:
        validate_rule_names(args.select, args.ignore)
        report = analyze_paths(
            args.paths,
            use_cache=not args.no_cache,
            cache_file=args.cache_file,
        )
    except (ValueError, FileNotFoundError) as exc:
        print(f"repro-alias: error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    report.findings = _filter_rules(report.findings, args.select,
                                    args.ignore)
    report.advisory = _filter_rules(report.advisory, args.select,
                                    args.ignore)

    if args.ledger_out:
        with open(args.ledger_out, "w", encoding="utf-8") as handle:
            json.dump(render_ledger(report), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")

    if args.format == "json":
        print(render_json(report))
    elif args.format == "github":
        output = render_github(report, strict=args.strict)
        if output:
            print(output)
    else:
        print(render_text(report, strict=args.strict))

    if report.exit_findings(strict=args.strict):
        return EXIT_FINDINGS
    return EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
