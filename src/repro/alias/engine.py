"""The ALIAS801–814 escape/aliasing engine over the flow call graph.

Two passes, same shape as the units interpreter:

* **Pass A** walks every function's own body once: leak checks on
  ``return`` statements (801/802), aliased stores (803), iterator
  invalidation (804), mutation-after-publish (805), identity reliance
  (806–808), unresolved calls inside migrating classes (813), and
  defensive copies on hot paths (814).  Along the way it records,
  per resolved call target, every site where a *caller* binds the
  call's result and then mutates it (the :class:`CallIndex` from
  :mod:`repro.flow.interproc`).
* **Pass B** joins the two: for every method pass A proved leaks a
  live internal container, every recorded caller-side mutation of
  its result becomes an interprocedural ALIAS803 finding tagged with
  the shared ``[reached via ...]`` label pointing at the leak.

Leak findings are tempered interprocedurally in the other direction
too: a leading-underscore helper that returns ``self._x`` only fires
when the graph shows a caller *outside* the class (internal plumbing
between methods of one object aliases nothing externally).

Escape classification (local / module / global per class) lives in
:mod:`repro.alias.escape`; this module feeds it the publish sites it
sees and emits ALIAS811 from its verdicts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.alias.classinfo import (
    AliasFacts,
    COPY_CALLS,
    MUTATOR_METHODS,
    SIZE_CHANGING_METHODS,
    collect_alias_facts,
    container_kind,
)
from repro.alias.escape import classify_escapes
from repro.flow.graph import (
    BENIGN_BUILTINS,
    CallGraph,
    FunctionInfo,
    _walk_own_body,
    dotted,
    function_scope,
)
from repro.flow.hotpath import hot_roots
from repro.flow.interproc import CallIndex, via_label
from repro.lint.engine import Finding

#: Packages whose classes are migrating to the struct-of-arrays core.
MIGRATING_PREFIXES = ("repro.core.", "repro.sim.", "repro.sap.",
                      "repro.routing.")

#: Dict methods that hand back a live view of the mapping.
_VIEW_METHODS = frozenset({"values", "keys", "items"})

#: Method names whose unresolved calls are *not* a soundness gap:
#: container/str/stdlib vocabulary the rules model directly or that
#: cannot alias internal state.
_BENIGN_METHODS = MUTATOR_METHODS | _VIEW_METHODS | frozenset({
    "get", "copy", "count", "index", "join", "split", "strip",
    "format", "startswith", "endswith", "encode", "decode", "lower",
    "upper", "replace", "rsplit", "rstrip", "lstrip", "popleft",
    "most_common", "bit_length", "to_bytes", "from_bytes", "isdigit",
    "splitlines", "partition", "rpartition",
    # ndarray/scalar vocabulary: value producers, never alias
    # container state the rules track
    "astype", "tolist", "item", "sum", "mean", "std", "argmax",
    "argmin", "nonzero", "searchsorted", "clip", "cumsum",
    # numpy.random.Generator draws (provenance is FLOW61x's beat)
    "integers", "uniform", "random", "normal", "choice", "shuffle",
    "permutation", "exponential",
    # struct.Struct codecs
    "pack", "unpack", "unpack_from", "pack_into",
})


def is_migrating(qualname: str) -> bool:
    return qualname.startswith(MIGRATING_PREFIXES)


@dataclass
class AliasResult:
    """Raw engine output (suppressions/ledger applied by analysis)."""

    findings: List[Finding] = field(default_factory=list)
    advisory: List[Finding] = field(default_factory=list)
    #: class qualname -> ALIAS8xx codes attributed to it (SoA blockers)
    class_rules: Dict[str, Set[str]] = field(default_factory=dict)
    #: class qualname -> ("local"|"module"|"global", detail)
    escape: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    stats: Dict[str, int] = field(default_factory=dict)
    facts: Optional[AliasFacts] = None
    #: function qualname -> hot-root label (flow hot reachability)
    hot_of: Dict[str, str] = field(default_factory=dict)


class _AliasEngine:
    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.facts = collect_alias_facts(graph)
        self.result = AliasResult(facts=self.facts)
        self.callinfo = CallIndex()
        #: leaking method qualname -> (attr, path, line)
        self.leaks: Dict[str, Tuple[str, int, str]] = {}
        #: class qualname -> publish detail (instances stored into
        #: module/class-level containers)
        self.published_classes: Dict[str, str] = {}
        self._extern_called: Set[str] = set()
        self._known_callers: Set[str] = set()
        self._index_callers()
        self._index_hot()

    # -- setup ---------------------------------------------------------
    def _index_callers(self) -> None:
        for caller, sites in self.graph.calls.items():
            caller_info = self.graph.functions.get(caller)
            caller_cls = (caller_info.class_qualname
                          if caller_info else None)
            for site in sites:
                for target in site.targets:
                    self._known_callers.add(target)
                    info = self.graph.functions.get(target)
                    if info is None:
                        continue
                    if info.class_qualname is None or \
                            info.class_qualname != caller_cls:
                        self._extern_called.add(target)

    def _index_hot(self) -> None:
        roots = hot_roots(self.graph)
        for root, label in roots.items():
            for reached in self.graph.reachable([root]):
                self.result.hot_of.setdefault(reached, label)

    # -- bookkeeping ---------------------------------------------------
    def _blame(self, class_qualname: Optional[str],
               code: str) -> None:
        if class_qualname:
            self.result.class_rules.setdefault(
                class_qualname, set()).add(code)

    def _hard(self, path: str, line: int, col: int, code: str,
              rule: str, message: str,
              blame: Optional[str] = None) -> None:
        self.result.findings.append(Finding(
            path=path, line=line, col=col, code=code, rule=rule,
            message=message))
        self._blame(blame, code)

    def _advise(self, path: str, line: int, col: int, code: str,
                rule: str, message: str,
                blame: Optional[str] = None) -> None:
        self.result.advisory.append(Finding(
            path=path, line=line, col=col, code=code, rule=rule,
            message=message))
        self._blame(blame, code)

    # -- type plumbing -------------------------------------------------
    def _chain_type(self, func: FunctionInfo, scope,
                    node: ast.expr) -> Optional[str]:
        """Class qualname of an expression, when the graph knows it."""
        text = dotted(node)
        if text is None:
            return None
        parts = text.split(".")
        if len(parts) == 1:
            return scope.var_types.get(parts[0])
        if parts[0] == "self" and func.class_qualname \
                and len(parts) == 2:
            info = self.graph.classes.get(func.class_qualname)
            if info:
                return info.attr_types.get(parts[1])
        return None

    def _migrating_facts(self, qualname: Optional[str]):
        if qualname is None or not is_migrating(qualname):
            return None
        facts = self.facts.classes.get(qualname)
        if facts is None or facts.is_enum or facts.is_exception:
            return None
        return facts

    # -- main drive ----------------------------------------------------
    def run(self) -> AliasResult:
        for qualname in sorted(self.graph.functions):
            func = self.graph.functions[qualname]
            if isinstance(func.node, ast.Lambda):
                continue
            self._check_function(func)
        self._check_param_stores()
        self._pass_b()
        self._check_escapes()
        self._finish_stats()
        return self.result

    # -- pass A: one walk per function ---------------------------------
    def _check_function(self, func: FunctionInfo) -> None:
        scope = function_scope(self.graph, func)
        module = self.graph.modules.get(func.module)
        holders = self.facts.modules.get(func.module)
        sites_by_pos = {(s.line, s.col): s
                        for s in self.graph.callees(func.qualname)
                        if s.kind != "callback"}

        #: local name -> self attr it aliases (xs = self._entries)
        alias_of: Dict[str, str] = {}
        #: local name -> resolved targets of the call that produced it
        result_of: Dict[str, Tuple[str, ...]] = {}
        #: local name -> holder description it was published into
        published: Dict[str, str] = {}
        #: (For nodes already reported, by id) guard double reports
        hot_label = self.result.hot_of.get(func.qualname)

        def self_attr_of(node: ast.expr) -> Optional[str]:
            text = dotted(node)
            if text is None:
                return None
            parts = text.split(".")
            if len(parts) == 2 and parts[0] == "self":
                return parts[1]
            if len(parts) == 1:
                return alias_of.get(parts[0])
            return None

        for node in _walk_own_body(func):
            if isinstance(node, ast.Assign):
                self._track_assign(func, node, alias_of, result_of,
                                   sites_by_pos)
                self._check_publish_store(func, scope, holders, node,
                                          published)
                self._check_post_publish_attr(func, node, published)
                self._check_hash_key_store(func, scope, node)
            elif isinstance(node, ast.Return) and \
                    node.value is not None:
                self._check_return(func, node, self_attr_of)
            elif isinstance(node, ast.For):
                self._check_iteration(func, node)
            elif isinstance(node, ast.Delete):
                self._track_delete(func, node, result_of)
            elif isinstance(node, ast.Compare):
                self._check_identity_compare(func, scope, node)
            elif isinstance(node, ast.Call):
                self._check_call(func, scope, holders, node,
                                 result_of, published, hot_label)
            elif isinstance(node, ast.Subscript) and isinstance(
                    node.ctx, ast.Load):
                self._check_hash_key_load(func, scope, node)

        self._check_unresolved(func, module)

    # -- leak rules (801/802) ------------------------------------------
    def _leak_applies(self, func: FunctionInfo) -> bool:
        """Public methods always; private helpers only when the graph
        shows a caller outside the class; dunders never (implicit
        call sites the graph cannot see)."""
        if func.class_qualname is None:
            return False
        name = func.name
        if name.startswith("__") and name.endswith("__"):
            return False
        if not name.startswith("_"):
            return True
        return func.qualname in self._extern_called

    def _check_return(self, func: FunctionInfo, node: ast.Return,
                      self_attr_of) -> None:
        if not self._leak_applies(func):
            return
        cls = func.class_qualname
        value = node.value
        assert cls is not None and value is not None

        attr = self_attr_of(value)
        if attr is not None and attr.startswith("_"):
            kind = self.facts.container_kind_of(self.graph, cls, attr)
            if kind:
                self._record_leak(func, node, attr)
                self._hard(
                    func.path, node.lineno, node.col_offset,
                    "ALIAS801", "leaked-internal-container",
                    f"{func.qualname} returns live internal {kind} "
                    f"self.{attr}; callers can mutate "
                    f"{cls.rsplit('.', 1)[-1]}'s state behind its "
                    f"back — return tuple(...) or a copy",
                    blame=cls)
                return

        # Live dict views: return self._x.values()/.keys()/.items()
        if isinstance(value, ast.Call) and isinstance(
                value.func, ast.Attribute) and \
                value.func.attr in _VIEW_METHODS and not value.args:
            attr = self_attr_of(value.func.value)
            if attr is not None and attr.startswith("_") and \
                    self.facts.container_kind_of(
                        self.graph, cls, attr) == "dict":
                self._record_leak(func, node, attr)
                self._hard(
                    func.path, node.lineno, node.col_offset,
                    "ALIAS802", "leaked-container-view",
                    f"{func.qualname} returns a live "
                    f".{value.func.attr}() view of self.{attr}; the "
                    f"view tracks (and exposes) later internal "
                    f"mutation — materialize with list(...)",
                    blame=cls)
                return

        # Live stored elements: return self._x[k] / self._x.get(k)
        target = None
        if isinstance(value, ast.Subscript):
            target = value.value
        elif isinstance(value, ast.Call) and isinstance(
                value.func, ast.Attribute) and \
                value.func.attr == "get":
            target = value.func.value
        if target is not None:
            attr = self_attr_of(target)
            if attr is not None and attr.startswith("_") and \
                    self.facts.element_container(self.graph, cls,
                                                 attr):
                self._record_leak(func, node, attr)
                self._hard(
                    func.path, node.lineno, node.col_offset,
                    "ALIAS802", "leaked-container-view",
                    f"{func.qualname} returns a live stored element "
                    f"of self.{attr}; mutating it mutates "
                    f"{cls.rsplit('.', 1)[-1]}'s internal state",
                    blame=cls)

    def _record_leak(self, func: FunctionInfo, node: ast.Return,
                     attr: str) -> None:
        self.leaks.setdefault(
            func.qualname, (attr, node.lineno, func.path))

    # -- aliased stores (803a) -----------------------------------------
    def _check_param_stores(self) -> None:
        for qualname in sorted(self.facts.classes):
            facts = self.facts.classes[qualname]
            info = self.graph.classes.get(qualname)
            typed_attrs = set(info.attr_types) if info else set()
            for attr in sorted(facts.param_stored):
                param, method, line = facts.param_stored[attr]
                if attr not in facts.mutated_attrs:
                    continue
                if attr in typed_attrs:
                    continue  # a typed object, not a raw container
                if attr in facts.container_attrs:
                    continue  # also rebound to a fresh container
                self._hard(
                    facts.path, line, 0, "ALIAS803",
                    "aliased-mutation",
                    f"{facts.name} stores caller-supplied parameter "
                    f"{param!r} as self.{attr} without copying and "
                    f"later mutates it; caller and instance now "
                    f"share one container (copy at the boundary)",
                    blame=qualname)

    # -- caller-side tracking for pass B -------------------------------
    def _track_assign(self, func: FunctionInfo, node: ast.Assign,
                      alias_of: Dict[str, str],
                      result_of: Dict[str, Tuple[str, ...]],
                      sites_by_pos) -> None:
        if len(node.targets) != 1 or not isinstance(
                node.targets[0], ast.Name):
            return
        name = node.targets[0].id
        alias_of.pop(name, None)
        result_of.pop(name, None)
        text = dotted(node.value)
        if text is not None:
            parts = text.split(".")
            if len(parts) == 2 and parts[0] == "self":
                alias_of[name] = parts[1]
            return
        if isinstance(node.value, ast.Call):
            site = sites_by_pos.get((node.value.lineno,
                                     node.value.col_offset))
            if site is not None and site.targets:
                result_of[name] = site.targets

    def _record_result_mutation(self, func: FunctionInfo, name: str,
                                result_of, line: int, col: int,
                                op: str) -> None:
        for target in result_of.get(name, ()):
            self.callinfo.record(
                target, CallIndex.RETURN_SLOT,
                (op, func.path, line, col),
                func.qualname, func.path, line)

    def _track_delete(self, func: FunctionInfo, node: ast.Delete,
                      result_of) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name):
                self._record_result_mutation(
                    func, target.value.id, result_of, node.lineno,
                    node.col_offset, "del")

    def _pass_b(self) -> None:
        """Join caller-side mutations with proved leaks (803b)."""
        for method in self.callinfo.callees():
            leak = self.leaks.get(method)
            if leak is None:
                continue
            attr, leak_line, leak_path = leak
            info = self.graph.functions.get(method)
            blame = info.class_qualname if info else None
            via = via_label(method, leak_path, leak_line)
            for entry in self.callinfo.entries(
                    method, CallIndex.RETURN_SLOT):
                op, path, line, col = entry.value
                self._hard(
                    path, line, col, "ALIAS803", "aliased-mutation",
                    f"{entry.caller} mutates ({op}) the live "
                    f"container self.{attr} leaked by {method} "
                    f"{via}",
                    blame=blame)

    # -- iterator invalidation (804) -----------------------------------
    def _check_iteration(self, func: FunctionInfo,
                         node: ast.For) -> None:
        iterable = node.iter
        if isinstance(iterable, ast.Call):
            callee = dotted(iterable.func) or ""
            if callee.split(".")[-1] in COPY_CALLS or \
                    callee in COPY_CALLS:
                return  # snapshot taken
            if isinstance(iterable.func, ast.Attribute) and \
                    iterable.func.attr in _VIEW_METHODS and \
                    not iterable.args:
                chain = dotted(iterable.func.value)
            else:
                return
        else:
            chain = dotted(iterable)
        if not chain:
            return
        for inner in ast.walk(node):
            if isinstance(inner, ast.Call) and isinstance(
                    inner.func, ast.Attribute) and \
                    inner.func.attr in SIZE_CHANGING_METHODS and \
                    dotted(inner.func.value) == chain:
                self._hard(
                    func.path, inner.lineno, inner.col_offset,
                    "ALIAS804", "iterator-invalidation",
                    f"{chain} mutated with .{inner.func.attr}() "
                    f"while being iterated (loop at line "
                    f"{node.lineno}); snapshot with list({chain}) "
                    f"first",
                    blame=func.class_qualname)
            elif isinstance(inner, ast.Delete):
                for target in inner.targets:
                    if isinstance(target, ast.Subscript) and \
                            dotted(target.value) == chain:
                        self._hard(
                            func.path, inner.lineno,
                            inner.col_offset,
                            "ALIAS804", "iterator-invalidation",
                            f"del {chain}[...] while iterating "
                            f"{chain} (loop at line {node.lineno}); "
                            f"snapshot with list({chain}) first",
                            blame=func.class_qualname)

    # -- publish tracking (805 + escape feed) --------------------------
    def _holder_of(self, func: FunctionInfo, holders,
                   chain: str) -> Optional[str]:
        parts = chain.split(".")
        if holders is not None and len(parts) == 1 and \
                parts[0] in holders.containers:
            return f"module-global {parts[0]} in {func.module}"
        if len(parts) == 2:
            for candidate in (f"{func.module}.{parts[0]}",):
                attrs = self.facts.class_containers.get(candidate)
                if attrs and parts[1] in attrs:
                    return f"class-level {parts[0]}.{parts[1]}"
            matches = self.graph.class_by_name.get(parts[0], [])
            if len(matches) == 1:
                attrs = self.facts.class_containers.get(matches[0])
                if attrs and parts[1] in attrs:
                    return f"class-level {parts[0]}.{parts[1]}"
        return None

    def _note_publish(self, func: FunctionInfo, scope,
                      value: ast.expr, holder: str,
                      published: Dict[str, str]) -> None:
        if isinstance(value, ast.Name):
            published[value.id] = holder
        cls = self._chain_type(func, scope, value)
        if cls is None and isinstance(value, ast.Call):
            # publishing a fresh instance: Cls(...) straight in
            callee = dotted(value.func) or ""
            matches = self.graph.class_by_name.get(
                callee.split(".")[-1], [])
            if len(matches) == 1:
                cls = matches[0]
        if cls is not None:
            self.published_classes.setdefault(cls, holder)

    def _check_publish_store(self, func: FunctionInfo, scope, holders,
                             node: ast.Assign,
                             published: Dict[str, str]) -> None:
        for target in node.targets:
            if not isinstance(target, ast.Subscript):
                continue
            chain = dotted(target.value)
            if not chain:
                continue
            holder = self._holder_of(func, holders, chain)
            if holder:
                self._note_publish(func, scope, node.value, holder,
                                   published)

    def _check_post_publish_attr(self, func: FunctionInfo,
                                 node: ast.Assign,
                                 published: Dict[str, str]) -> None:
        for target in node.targets:
            if isinstance(target, ast.Attribute) and isinstance(
                    target.value, ast.Name) and \
                    target.value.id in published:
                name = target.value.id
                self._hard(
                    func.path, node.lineno, node.col_offset,
                    "ALIAS805", "mutation-after-publish",
                    f"{name}.{target.attr} assigned after {name} "
                    f"was published to {published[name]}; every "
                    f"holder of the shared reference sees the late "
                    f"write",
                    blame=func.class_qualname)

    # -- per-call checks (805 publish/mutate, 807, 808, 814, B feed) ---
    def _check_call(self, func: FunctionInfo, scope, holders,
                    node: ast.Call, result_of,
                    published: Dict[str, str],
                    hot_label: Optional[str]) -> None:
        callee = dotted(node.func) or ""
        terminal = callee.split(".")[-1]

        # id() — identity reliance (807).
        if callee == "id" and len(node.args) == 1:
            arg_cls = self._chain_type(func, scope, node.args[0])
            blame = arg_cls if self._migrating_facts(arg_cls) else (
                func.class_qualname
                if self._migrating_facts(func.class_qualname)
                else None)
            if blame or is_migrating(func.module + "."):
                self._advise(
                    func.path, node.lineno, node.col_offset,
                    "ALIAS807", "identity-call",
                    f"id({dotted(node.args[0]) or '...'}) in "
                    f"{func.qualname}; the object address is gone "
                    f"once instances are rows in a struct-of-arrays",
                    blame=blame)

        if not isinstance(node.func, ast.Attribute):
            # Defensive copies on hot paths (814): list(x)/sorted(x)…
            if hot_label and terminal in COPY_CALLS and \
                    len(node.args) == 1 and \
                    self._copies_existing(node.args[0]):
                self._advise(
                    func.path, node.lineno, node.col_offset,
                    "ALIAS814", "hot-defensive-copy",
                    f"defensive {terminal}(...) in {func.qualname} "
                    f"on hot path (root {hot_label}); exactly the "
                    f"per-event cost the SoA migration deletes",
                    blame=func.class_qualname)
            return

        method = node.func.attr
        receiver = dotted(node.func.value)

        # .copy() on hot paths (814).
        if hot_label and method == "copy" and not node.args \
                and receiver:
            self._advise(
                func.path, node.lineno, node.col_offset,
                "ALIAS814", "hot-defensive-copy",
                f"defensive {receiver}.copy() in {func.qualname} on "
                f"hot path (root {hot_label}); exactly the "
                f"per-event cost the SoA migration deletes",
                blame=func.class_qualname)

        if method not in MUTATOR_METHODS:
            return

        # Mutating a bound call result — feed pass B (803b).
        if isinstance(node.func.value, ast.Name):
            self._record_result_mutation(
                func, node.func.value.id, result_of, node.lineno,
                node.col_offset, f".{method}()")

        # Mutating a published object (805).
        if isinstance(node.func.value, ast.Name) and \
                node.func.value.id in published:
            name = node.func.value.id
            self._hard(
                func.path, node.lineno, node.col_offset,
                "ALIAS805", "mutation-after-publish",
                f"{name}.{method}() after {name} was published to "
                f"{published[name]}; every holder of the shared "
                f"reference sees the late write",
                blame=func.class_qualname)

        # Publishing into a module/class-level container (805 feed).
        if receiver and method in ("append", "add", "setdefault") \
                and node.args:
            holder = self._holder_of(func, holders, receiver)
            if holder:
                self._note_publish(func, scope, node.args[0], holder,
                                   published)

        # Identity-hashed key added to a set (808).
        if method == "add" and len(node.args) == 1:
            self._check_hash_key_value(func, scope, node.args[0],
                                       node, "set member")

    def _copies_existing(self, arg: ast.expr) -> bool:
        """True when a copy call's argument is existing data (an
        attribute/name chain, or a view call on one) rather than a
        fresh literal/generator."""
        if dotted(arg) is not None:
            return isinstance(arg, (ast.Attribute, ast.Name))
        if isinstance(arg, ast.Call) and isinstance(
                arg.func, ast.Attribute) and \
                arg.func.attr in (_VIEW_METHODS | {"copy"}):
            return True
        return False

    # -- identity reliance (806/808) -----------------------------------
    def _check_identity_compare(self, func: FunctionInfo, scope,
                                node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Is, ast.IsNot)):
                continue
            left, right = operands[index], operands[index + 1]
            left_cls = self._chain_type(func, scope, left)
            right_cls = self._chain_type(func, scope, right)
            left_facts = self._migrating_facts(left_cls)
            right_facts = self._migrating_facts(right_cls)
            if left_facts is None or right_facts is None:
                continue
            word = "is not" if isinstance(op, ast.IsNot) else "is"
            self._advise(
                func.path, node.lineno, node.col_offset,
                "ALIAS806", "identity-comparison",
                f"'{word}' between {left_facts.name} and "
                f"{right_facts.name} instances in {func.qualname}; "
                f"object identity has no meaning once instances are "
                f"rows — compare keys/values",
                blame=left_cls)
            if right_cls != left_cls:
                self._blame(right_cls, "ALIAS806")

    def _check_hash_key_value(self, func: FunctionInfo, scope,
                              key: ast.expr, node: ast.AST,
                              role: str) -> None:
        cls = self._chain_type(func, scope, key)
        facts = self._migrating_facts(cls)
        if facts is None or not facts.identity_hashed:
            return
        self._advise(
            func.path, node.lineno, node.col_offset,
            "ALIAS808", "identity-hash-key",
            f"{facts.name} instance used as {role} in "
            f"{func.qualname} relies on default object-identity "
            f"hashing; equal values collapse (or split) once "
            f"identity is gone — key by a value field",
            blame=cls)

    def _check_hash_key_store(self, func: FunctionInfo, scope,
                              node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                self._check_hash_key_value(
                    func, scope, target.slice, target, "dict key")

    def _check_hash_key_load(self, func: FunctionInfo, scope,
                             node: ast.Subscript) -> None:
        self._check_hash_key_value(func, scope, node.slice, node,
                                   "dict key")

    # -- soundness boundary (813) --------------------------------------
    def _check_unresolved(self, func: FunctionInfo, module) -> None:
        if self._migrating_facts(func.class_qualname) is None:
            return
        for site in self.graph.callees(func.qualname):
            if site.kind != "direct" or site.resolved:
                continue
            terminal = site.callee_text.split(".")[-1]
            if site.callee_text in BENIGN_BUILTINS or \
                    terminal in _BENIGN_METHODS or \
                    site.callee_text == "<expr>":
                continue
            if site.callee_text.split(".")[0] == "cls":
                continue  # classmethod constructing its own class
            if module and site.callee_text.split(".")[0] in \
                    module.imports:
                continue  # stdlib/third-party module call, not state
            self._advise(
                site.path, site.line, site.col,
                "ALIAS813", "unresolved-alias-call",
                f"call {site.callee_text}(...) in {func.qualname} "
                f"is outside the graph; aliasing past this edge is "
                f"assumed, not proved (shared soundness boundary "
                f"with FLOW615)",
                blame=func.class_qualname)

    # -- escape classification (811) -----------------------------------
    def _check_escapes(self) -> None:
        self.result.escape = classify_escapes(
            self.graph, self.facts, self.published_classes)
        for qualname in sorted(self.result.escape):
            level, detail = self.result.escape[qualname]
            if level != "global":
                continue
            facts = self._migrating_facts(qualname)
            if facts is None:
                continue
            self._advise(
                facts.path, facts.line, 0,
                "ALIAS811", "global-escape",
                f"instances of {facts.name} are reachable from "
                f"{detail}; the ambient holder must migrate with "
                f"the class",
                blame=qualname)

    # -- stats ---------------------------------------------------------
    def _finish_stats(self) -> None:
        levels = {"local": 0, "module": 0, "global": 0}
        migrating = 0
        for qualname in self.result.escape:
            levels[self.result.escape[qualname][0]] += 1
            if self._migrating_facts(qualname) is not None:
                migrating += 1
        self.result.stats.update({
            "functions": len(self.graph.functions),
            "classes": len(self.facts.classes),
            "migrating_classes": migrating,
            "escape_local": levels["local"],
            "escape_module": levels["module"],
            "escape_global": levels["global"],
            "leaking_methods": len(self.leaks),
        })
        self.result.findings.sort(
            key=lambda f: (f.path, f.line, f.col, f.code))
        self.result.advisory.sort(
            key=lambda f: (f.path, f.line, f.col, f.code))


def analyze_alias(graph: CallGraph) -> AliasResult:
    """Run ALIAS801–814 (minus the ledger rollup) over the graph."""
    return _AliasEngine(graph).run()
