"""Bounded breadth-first state-space exploration.

The explorer enumerates every trace of explorer actions (message
delivery, message loss within the scenario's budget, timer firing
within the horizon) up to a depth bound, merging states that hash to
the same :meth:`~repro.modelcheck.harness.ProtocolHarness.fingerprint`.

Breadth-first order is load-bearing twice over:

* every state is first reached at its **minimal depth**, so the
  visited set can be a plain ``seen`` check with no re-expansion
  bookkeeping and remain sound under the depth bound;
* the first violating state encountered therefore comes with a
  **minimal counterexample** — no separate minimisation pass.

Restore is deterministic replay (see :mod:`repro.modelcheck.harness`),
so each expansion rebuilds the child world from scratch and replays
its trace; the queue holds only ``(trace, enabled-actions)`` pairs,
never live object graphs.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.modelcheck.harness import Action, McViolation, ProtocolHarness
from repro.modelcheck.scenarios import Scenario

#: Hard cap on explored states, a safety valve against a scenario
#: whose bounds were chosen too generously.
DEFAULT_MAX_STATES = 200_000


def _wall_clock() -> float:
    """Real elapsed seconds, for the ``elapsed_seconds`` stat only.

    This is the explorer's own runtime, never simulated time; nothing
    inside an explored world may observe it.
    """
    return time.monotonic()  # simlint: disable=wall-clock


@dataclass
class ExplorationResult:
    """Everything one bounded exploration learned."""

    scenario: str
    seed: int
    mutation: Optional[str]
    depth: int
    states: int = 0
    transitions: int = 0
    quiescent_states: int = 0
    #: Lossy traces that quiesced with a double-claim still standing —
    #: not violations (the repair retransmission lies beyond the
    #: horizon) but worth reporting.
    latent_clashes: int = 0
    truncated: bool = False
    elapsed_seconds: float = 0.0
    violations: List[McViolation] = field(default_factory=list)
    counterexample: Optional[Tuple[Action, ...]] = None
    counterexample_labels: Optional[Tuple[str, ...]] = None

    @property
    def clean(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "mutation": self.mutation,
            "depth": self.depth,
            "states": self.states,
            "transitions": self.transitions,
            "quiescent_states": self.quiescent_states,
            "latent_clashes": self.latent_clashes,
            "truncated": self.truncated,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "violations": [
                {"code": v.code, "rule": v.rule, "message": v.message,
                 "time": v.time}
                for v in self.violations
            ],
            "counterexample": (
                list(self.counterexample_labels)
                if self.counterexample_labels is not None else None
            ),
        }


def _rebuild(scenario: Scenario, seed: int, mutation: Optional[str],
             trace: Tuple[Action, ...]) -> ProtocolHarness:
    harness = ProtocolHarness(scenario, seed=seed, mutation=mutation)
    for action in trace:
        harness.execute(action)
    return harness


def explore(scenario: Scenario, seed: int = 0,
            mutation: Optional[str] = None,
            depth: Optional[int] = None,
            max_states: int = DEFAULT_MAX_STATES,
            stop_on_violation: bool = True) -> ExplorationResult:
    """Exhaust the scenario's bounded state space.

    Args:
        scenario: the configuration to explore.
        seed: world seed (jitter and delay draws derive from it).
        mutation: optional mutant (see harness ``MUTATIONS``).
        depth: trace-length bound; defaults to the scenario's.
        max_states: safety cap; the result is marked ``truncated``
            when it bites.
        stop_on_violation: return at the first (minimal) violating
            trace instead of exhausting the space.

    Returns an :class:`ExplorationResult`; ``result.counterexample``
    replays to the violation via
    ``ProtocolHarness.restore(scenario, Snapshot(trace, fp), ...)``.
    """
    bound = depth if depth is not None else scenario.depth
    started = _wall_clock()
    result = ExplorationResult(scenario=scenario.name, seed=seed,
                               mutation=mutation, depth=bound)

    root = ProtocolHarness(scenario, seed=seed, mutation=mutation)
    seen = {root.fingerprint()}
    result.states = 1
    _note_quiescence(root, result)
    if root.violations:
        _record_violation(root, result, started)
        return result
    queue = deque([(tuple(root.trace), root.enabled_actions())])

    while queue:
        trace, actions = queue.popleft()
        if len(trace) >= bound:
            continue
        for action in actions:
            child = _rebuild(scenario, seed, mutation, trace + (action,))
            result.transitions += 1
            if child.violations:
                _record_violation(child, result, started)
                if stop_on_violation:
                    return result
                continue
            fingerprint = child.fingerprint()
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            result.states += 1
            _note_quiescence(child, result)
            if child.violations:
                # check_quiescent_state found an MC312 / convergence
                # breach at this quiescent state.
                _record_violation(child, result, started)
                if stop_on_violation:
                    return result
                continue
            if result.states >= max_states:
                result.truncated = True
                result.elapsed_seconds = _wall_clock() - started
                return result
            queue.append((tuple(child.trace), child.enabled_actions()))

    result.elapsed_seconds = _wall_clock() - started
    return result


def _note_quiescence(harness: ProtocolHarness,
                     result: ExplorationResult) -> None:
    if not harness.quiescent():
        return
    result.quiescent_states += 1
    if harness.losses_used == 0:
        harness.check_quiescent_state()
    elif harness.double_claims():
        result.latent_clashes += 1


def _record_violation(harness: ProtocolHarness,
                      result: ExplorationResult, started: float) -> None:
    result.violations.extend(harness.violations)
    result.counterexample = tuple(harness.trace)
    result.counterexample_labels = tuple(harness.trace_labels)
    result.elapsed_seconds = _wall_clock() - started
