"""ProtocolHarness — one explorable world around the real protocol.

The harness instantiates the *production* classes
(:class:`~repro.sap.directory.SessionDirectory`,
:class:`~repro.sap.clash_protocol.ClashHandler`, the event scheduler)
and replaces only the two sources of nondeterminism with explorer
choice points:

* :class:`ModelNetwork` holds every multicast in flight instead of
  scheduling deliveries — the explorer decides per message whether and
  when it is delivered or lost;
* :class:`ControlledScheduler` exposes ``fire(handle)`` so the
  explorer picks which pending timer fires next (time-abstracted: the
  clock jumps to ``max(now, when)``, a sound over-approximation of
  "this timer fired before anything else happened").

**Snapshot/restore contract.**  Scheduled callbacks are closures over
live objects, so a ``deepcopy`` of the heap would silently call back
into pre-copy state.  Instead of copying, a :class:`Snapshot` is the
pair ``(trace, fingerprint)`` and *restore is deterministic replay*:
rebuild the world from ``(scenario, seed, mutation)`` and re-execute
the trace.  Every identifier appearing in a trace (message and timer
sequence numbers) is assigned deterministically, so replay is exact;
:meth:`ProtocolHarness.restore` asserts the replayed fingerprint
matches the snapshot.

The per-state invariant probes are the PR 2 runtime sanitizers,
attached unchanged (a :class:`~repro.sanitize.context.SanitizerContext`
per world), plus two model-checker-only invariants:

* **MC311 established-displaced** — checked after every action;
* **MC312 stable-double-claim** — checked at quiescent states of
  loss-free traces (a lossy trace may legitimately quiesce with a
  latent clash that the next retransmission, outside the bounded
  horizon, would repair; those are counted, not flagged).

Mutations (test-only re-introductions of historical bugs) are
selected by name: ``ghost-resurrection`` disables the PR 2 self-origin
echo guard, ``defend-off-by-one`` flips the phase-1 established
predicate.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.address_space import MulticastAddressSpace
from repro.core.allocator import AllocationResult, Allocator, VisibleSet
from repro.sap.announcer import FixedIntervalStrategy
from repro.sap.clash_protocol import ClashHandler, ClashPolicy
from repro.sap.directory import SessionDirectory
from repro.sap.messages import SapMessage
from repro.sim.events import EventHandle, EventScheduler
from repro.sim.network import Packet
from repro.sanitize.context import SanitizerContext

#: Action kinds a trace is made of.
DELIVER, DROP, FIRE = "deliver", "drop", "fire"

Action = Tuple[str, int]


@dataclass(frozen=True)
class Snapshot:
    """A restorable point: the trace that reaches it and its hash."""

    trace: Tuple[Action, ...]
    fingerprint: str


@dataclass(frozen=True)
class McViolation:
    """One invariant broken during exploration (lint-style record)."""

    code: str
    rule: str
    message: str
    time: float


class ControlledScheduler(EventScheduler):
    """An event scheduler whose firing order the explorer controls.

    ``step()``/``run()`` remain available (scenario setup uses the
    clock only); exploration uses :meth:`fire` exclusively.
    """

    def fire(self, handle: EventHandle) -> None:
        """Fire one pending handle now, advancing the clock to its
        due time if that lies in the future (time abstraction: firing
        order is explorer choice, the clock never runs backwards)."""
        if not handle.pending:
            raise ValueError(f"cannot fire non-pending handle {handle!r}")
        if handle.when > self.now:
            self.clock.advance_to(handle.when)
        if self._monitor is not None:
            self._monitor.on_fire(handle)
        callback, handle.callback = handle.callback, None
        callback()
        self._events_run += 1

    def handle_by_seq(self, seq: int) -> EventHandle:
        for __, __, handle in self._heap:
            if handle.seq == seq and handle.pending:
                return handle
        raise KeyError(f"no pending handle with seq {seq}")


@dataclass
class InflightMessage:
    """One multicast copy awaiting an explorer deliver/drop decision."""

    seq: int
    receiver: int
    packet: Packet

    def content_key(self) -> Tuple[int, int, int, int]:
        """Identity for state hashing: *what* is in flight to *whom*,
        independent of the sequence numbers a particular interleaving
        assigned."""
        return (self.receiver, self.packet.source, self.packet.ttl,
                zlib.crc32(bytes(self.packet.payload)))


class ModelNetwork:
    """A network whose delivery schedule is the explorer's to choose.

    Duck-types the :class:`~repro.sim.network.NetworkModel` surface
    the directory uses (``listen``/``send``/``_monitor``): a send
    parks one :class:`InflightMessage` per potential receiver; nothing
    is delivered until :meth:`deliver` is called.
    """

    def __init__(self, scheduler: EventScheduler) -> None:
        self.scheduler = scheduler
        self._listeners: Dict[int, list] = {}
        self._seq = 0
        self.inflight: Dict[int, InflightMessage] = {}
        self._monitor = None
        self.packets_sent = 0
        self.packets_delivered = 0
        self.packets_lost = 0

    def listen(self, node: int, callback) -> None:
        self._listeners.setdefault(node, []).append(callback)

    def send(self, packet: Packet) -> int:
        packet.sent_at = self.scheduler.now
        self.packets_sent += 1
        if self._monitor is not None:
            self._monitor.on_send(packet)
        parked = 0
        for receiver in sorted(self._listeners):
            if receiver == packet.source:
                continue
            self.inflight[self._seq] = InflightMessage(
                seq=self._seq, receiver=receiver, packet=packet,
            )
            self._seq += 1
            parked += 1
        return parked

    def deliver(self, seq: int) -> InflightMessage:
        """Deliver one in-flight message at the current instant."""
        message = self.inflight.pop(seq)
        self.packets_delivered += 1
        if self._monitor is not None:
            self._monitor.on_deliver(message.receiver, message.packet)
        for callback in list(self._listeners.get(message.receiver, ())):
            callback(message.receiver, message.packet)
        return message

    def drop(self, seq: int) -> InflightMessage:
        """Lose one in-flight message."""
        message = self.inflight.pop(seq)
        self.packets_lost += 1
        return message

    def void_all(self) -> int:
        """Discard everything in flight (scenario setup plumbing, not
        modelled loss — does not count against any loss budget)."""
        count = len(self.inflight)
        self.inflight.clear()
        return count

    def deliver_only(self, receivers: Tuple[int, ...]) -> int:
        """Setup plumbing: deliver to ``receivers``, void the rest."""
        count = 0
        for seq in sorted(self.inflight):
            message = self.inflight[seq]
            if message.receiver in receivers:
                self.deliver(seq)
                count += 1
            else:
                del self.inflight[seq]
        return count


class FirstFitAllocator(Allocator):
    """Deterministic lowest-free-address allocator.

    Exploration wants allocation itself deterministic so that every
    branch point in the state space is an *ordering* choice, not an
    RNG draw; first-fit also maximises contention, which is the point
    of a clash-protocol model check.
    """

    name = "first-fit"

    def allocate(self, ttl: int, visible: VisibleSet) -> AllocationResult:
        self._check_ttl(ttl)
        used = {int(address) for address in visible.used_addresses()}
        for address in range(self.space_size):
            if address not in used:
                return AllocationResult(address, informed=True,
                                        forced=False)
        self.forced_allocations += 1
        address = int(self.rng.integers(0, self.space_size))
        return AllocationResult(address, informed=False, forced=True)


class GhostResurrectionDirectory(SessionDirectory):
    """Mutation ``ghost-resurrection``: re-introduces the PR 2 bug —
    self-origin SAP echoes are cached again, so a site can later
    proxy-defend its own withdrawn session."""

    def _drop_self_origin(self, message: SapMessage) -> bool:
        return False


class OffByOneClashHandler(ClashHandler):
    """Mutation ``defend-off-by-one``: the phase-1 window predicate is
    inverted at the boundary — established sessions are treated as
    newcomers and vice versa, so a newcomer stands its ground."""

    def _is_established(self, age: float) -> bool:
        return age < self.policy.recent_window


MUTATIONS = ("ghost-resurrection", "defend-off-by-one")


class ProtocolHarness:
    """One explorable world: directories, network, scheduler, probes.

    Args:
        scenario: a :class:`repro.modelcheck.scenarios.Scenario`.
        seed: world seed (per-directory RNGs derive from it).
        mutation: None, or one of :data:`MUTATIONS`.
    """

    def __init__(self, scenario, seed: int = 0,
                 mutation: Optional[str] = None) -> None:
        if mutation is not None and mutation not in MUTATIONS:
            raise ValueError(f"unknown mutation {mutation!r}; "
                             f"known: {list(MUTATIONS)}")
        self.scenario = scenario
        self.seed = seed
        self.mutation = mutation
        self.scheduler = ControlledScheduler()
        self.network = ModelNetwork(self.scheduler)
        self.context = SanitizerContext(
            scenario=f"modelcheck:{scenario.name}"
        )
        self.context.attach_scheduler(self.scheduler)
        self.context.attach_network(self.network)
        address_space = MulticastAddressSpace.abstract(scenario.space_size)
        directory_cls = (GhostResurrectionDirectory
                         if mutation == "ghost-resurrection"
                         else SessionDirectory)
        handler_cls = (OffByOneClashHandler
                       if mutation == "defend-off-by-one"
                       else ClashHandler)
        self.directories: List[SessionDirectory] = []
        for node in range(scenario.nodes):
            rng = np.random.default_rng(seed * 8191 + node)
            directory = directory_cls(
                node=node,
                scheduler=self.scheduler,
                network=self.network,
                allocator=FirstFitAllocator(scenario.space_size, rng=rng),
                address_space=address_space,
                strategy_factory=lambda: FixedIntervalStrategy(
                    scenario.announce_interval
                ),
                enable_clash_protocol=False,
                rng=rng,
            )
            if node in scenario.protocol_nodes:
                directory.clash_handler = handler_cls(
                    directory, ClashPolicy(), directory.rng
                )
            self.context.watch_directory(directory)
            self.directories.append(directory)
        self.trace: List[Action] = []
        self.trace_labels: List[str] = []
        self.violations: List[McViolation] = []
        self.losses_used = 0
        self._violation_mark = 0
        scenario.setup(self)
        self._drain_sanitizer()
        if self.violations:
            raise RuntimeError(
                f"scenario {scenario.name!r} setup is not clean: "
                f"{self.violations}"
            )
        self._established = self._own_claims(established_only=True)

    # ------------------------------------------------------------------
    # Scenario-setup helpers
    # ------------------------------------------------------------------
    def create(self, node: int, name: str, ttl: int = 15,
               lifetime: Optional[float] = None):
        """Create a session at ``node`` (announces synchronously)."""
        return self.directories[node].create_session(
            name, ttl=ttl, lifetime=lifetime
        )

    def advance(self, seconds: float) -> None:
        """Move the clock forward without firing anything."""
        self.scheduler.clock.advance_to(self.scheduler.now + seconds)

    def void_inflight(self) -> int:
        """Discard everything in flight (pre-history plumbing)."""
        return self.network.void_all()

    def deliver_inflight(self, *receivers: int) -> int:
        """Deliver in-flight messages to ``receivers``, void the rest."""
        return self.network.deliver_only(tuple(receivers))

    # ------------------------------------------------------------------
    # Exploration surface
    # ------------------------------------------------------------------
    def enabled_actions(self) -> List[Action]:
        """Every action the explorer may take from this state.

        Deliveries (one per in-flight message), losses (same, while
        the trace's loss budget lasts), and timer firings (pending
        handles due within the scenario horizon — the horizon keeps
        unbounded periodic re-announcement chains out of the space).

        The channel has bounded delay: a timer firing that would move
        the clock past ``sent_at + delay_bound`` of an undelivered
        message is disabled until that message is delivered or
        dropped, so delivered messages arrive at most ``delay_bound``
        late.  (An unbounded-delay channel would let the explorer
        stall a newcomer's announcement past the recent window, making
        both claimants established — the partition-heal case the
        protocol deliberately leaves to a human, §3.)
        """
        actions: List[Action] = []
        for seq in sorted(self.network.inflight):
            actions.append((DELIVER, seq))
        if self.losses_used < self.scenario.loss_budget:
            for seq in sorted(self.network.inflight):
                actions.append((DROP, seq))
        deadline = None
        if self.network.inflight:
            deadline = min(
                message.packet.sent_at
                for message in self.network.inflight.values()
            ) + self.scenario.delay_bound
        for handle in self.scheduler.pending_handles():
            if handle.when > self.scenario.horizon:
                continue
            fires_at = max(self.scheduler.now, handle.when)
            if deadline is not None and fires_at > deadline:
                continue
            actions.append((FIRE, handle.seq))
        return actions

    def execute(self, action: Action) -> None:
        """Apply one action, then run the per-state invariant probes."""
        kind, seq = action
        if kind == DELIVER:
            message = self.network.deliver(seq)
            self.trace_labels.append(self._message_label("deliver",
                                                         message))
        elif kind == DROP:
            message = self.network.drop(seq)
            self.losses_used += 1
            self.trace_labels.append(self._message_label("drop", message))
        elif kind == FIRE:
            handle = self.scheduler.handle_by_seq(seq)
            label = (f"fire timer t={handle.when:.2f} "
                     f"[{_callback_name(handle)}]")
            self.scheduler.fire(handle)
            self.trace_labels.append(label)
        else:
            raise ValueError(f"unknown action kind {kind!r}")
        self.trace.append(action)
        self._drain_sanitizer()
        self._check_established()

    def quiescent(self) -> bool:
        """Nothing in flight: every sent message has been delivered or
        lost, so all reachable information has propagated."""
        return not self.network.inflight

    def check_quiescent_state(self) -> None:
        """MC312 + cache convergence, called by the explorer at
        quiescent states of loss-free traces."""
        for address, claimants in sorted(self.double_claims().items()):
            owners = ", ".join(f"node {node} session {sid}"
                               for node, sid in claimants)
            self.violations.append(McViolation(
                code="MC312", rule="stable-double-claim",
                message=(f"loss-free trace quiesced with address "
                         f"{address} claimed by {owners}"),
                time=self.scheduler.now,
            ))
        self.context.check_convergence()
        self._drain_sanitizer()

    def double_claims(self) -> Dict[int, List[Tuple[int, int]]]:
        """Addresses claimed by more than one live own-session.

        Only protocol-running nodes count: the stability guarantee is
        among participants, and a legacy announcer that never hears a
        defence it would act on cannot be expected to move.
        """
        claims: Dict[int, List[Tuple[int, int]]] = {}
        participants = set(self.scenario.protocol_nodes)
        for key, address in sorted(self._own_claims().items()):
            if key[0] in participants:
                claims.setdefault(address, []).append(key)
        return {address: keys for address, keys in claims.items()
                if len(keys) > 1}

    def snapshot(self) -> Snapshot:
        return Snapshot(trace=tuple(self.trace),
                        fingerprint=self.fingerprint())

    @classmethod
    def restore(cls, scenario, snapshot: Snapshot, seed: int = 0,
                mutation: Optional[str] = None) -> "ProtocolHarness":
        """Rebuild the world and replay the snapshot's trace.

        Raises:
            RuntimeError: if the replayed state hash diverges from the
                snapshot (the replay-determinism contract is broken).
        """
        harness = cls(scenario, seed=seed, mutation=mutation)
        for action in snapshot.trace:
            harness.execute(action)
        replayed = harness.fingerprint()
        if replayed != snapshot.fingerprint:
            raise RuntimeError(
                f"replay diverged: snapshot {snapshot.fingerprint} "
                f"!= replayed {replayed}"
            )
        return harness

    # ------------------------------------------------------------------
    # State hashing
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """A content hash of everything behaviour depends on.

        Sequence numbers are deliberately excluded (two interleavings
        reaching the same protocol state assign different seqs);
        in-flight messages and timers are hashed by content identity.
        RNG states are included: two states that would draw different
        jitter are different states.
        """
        parts: List[object] = [self.scheduler.now, self.losses_used]
        for directory in self.directories:
            own = []
            for session in sorted(
                directory.own_sessions(),
                key=lambda item: item.description.session_id,
            ):
                own.append((
                    session.description.session_id,
                    session.session.address,
                    session.description.version,
                    session.first_announced,
                    session.announcer.running,
                ))
            cache = []
            for entry in sorted(directory.cache.entries(),
                                key=lambda item: item.message.key()):
                cache.append((
                    entry.message.key(),
                    entry.address_index,
                    entry.description.version
                    if entry.description is not None else None,
                    entry.first_heard,
                    entry.last_heard,
                ))
            handler = directory.clash_handler
            pending = sorted(
                (key, item.old_last_heard)
                for key, item in handler._pending.items()
            ) if handler is not None else []
            # _last_defence keys embed Session.session_id, which comes
            # from a process-global counter and so differs between a
            # run and its replay.  Canonicalise through the
            # directory-local description id; entries for withdrawn
            # sessions are behaviourally inert (their global id is
            # never queried again) and are excluded.
            id_map = {
                own.session.session_id: own.description.session_id
                for own in directory.own_sessions()
            }
            defences = sorted(
                ((id_map[sid], entry_key), last)
                for (sid, entry_key), last in handler._last_defence.items()
                if sid in id_map
            ) if handler is not None else []
            rng_digest = hashlib.sha256(
                repr(directory.rng.bit_generator.state).encode("utf-8")
            ).hexdigest()
            parts.append((directory.node, tuple(own), tuple(cache),
                          tuple(pending), tuple(defences), rng_digest))
        parts.append(tuple(sorted(
            message.content_key()
            for message in self.network.inflight.values()
        )))
        timers = []
        for handle in self.scheduler.pending_handles():
            timers.append((handle.when, _callback_name(handle)))
        parts.append(tuple(timers))
        return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def _own_claims(self, established_only: bool = False
                    ) -> Dict[Tuple[int, int], int]:
        claims: Dict[Tuple[int, int], int] = {}
        now = self.scheduler.now
        for directory in self.directories:
            handler = directory.clash_handler
            window = (handler.policy.recent_window
                      if handler is not None
                      else ClashPolicy().recent_window)
            for own in directory.own_sessions():
                if established_only and \
                        now - own.first_announced <= window:
                    continue
                key = (directory.node, own.description.session_id)
                claims[key] = own.session.address
        return claims

    def _check_established(self) -> None:
        """MC311: an established session keeps its address until its
        owner withdraws it (withdrawal removes it from the watch)."""
        current = self._own_claims()
        for key in sorted(self._established):
            address = self._established[key]
            if key not in current:
                del self._established[key]  # legitimately withdrawn
                continue
            if current[key] != address:
                node, sid = key
                self.violations.append(McViolation(
                    code="MC311", rule="established-displaced",
                    message=(f"established session {sid} at node "
                             f"{node} was displaced from address "
                             f"{address} to {current[key]} by a "
                             f"newcomer"),
                    time=self.scheduler.now,
                ))
                self._established[key] = current[key]

    def _drain_sanitizer(self) -> None:
        fresh = self.context.violations[self._violation_mark:]
        self._violation_mark = len(self.context.violations)
        for violation in fresh:
            self.violations.append(McViolation(
                code=violation.code, rule=violation.rule,
                message=violation.message, time=violation.time,
            ))

    # ------------------------------------------------------------------
    def _message_label(self, verb: str,
                       message: InflightMessage) -> str:
        packet = message.packet
        try:
            sap = SapMessage.decode(bytes(packet.payload))
            what = (f"{sap.msg_type.name} origin={sap.origin} "
                    f"hash={sap.msg_id_hash}")
        except (ValueError, TypeError):
            what = "opaque payload"
        return (f"{verb} {what} from node {packet.source} "
                f"-> node {message.receiver}")

    def __repr__(self) -> str:
        return (f"ProtocolHarness({self.scenario.name!r}, "
                f"depth={len(self.trace)}, "
                f"inflight={len(self.network.inflight)}, "
                f"violations={len(self.violations)})")


def _callback_name(handle: EventHandle) -> str:
    callback = handle.callback
    return getattr(callback, "__qualname__", repr(callback))
