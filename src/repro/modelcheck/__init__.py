"""repro.modelcheck — bounded explicit-state model checking.

The third rung of the repo's correctness ladder (static lint →
runtime sanitize → exhaustive small-scope model check).  The package
drives the *real* protocol implementation — the session directory,
clash handler and scheduler, not a reimplementation — through every
interleaving of message delivery, message loss and timer firing that
a small configuration admits, checking safety invariants at each
reachable state:

* **MC311 established-displaced** — a session past the recent window
  never loses its address ("existing sessions will not be disrupted
  by new sessions", paper §3).
* **MC312 stable-double-claim** — a loss-free trace never quiesces
  with two directories claiming the same address.
* **SAN204 use-after-expiry** (reused from :mod:`repro.sanitize`) — a
  ghost/withdrawn session is never re-announced by its originator.
* plus every other SAN2xx runtime probe, attached per explored world.

Alongside the explorer, :mod:`repro.modelcheck.astcheck` statically
extracts each protocol handler's state machine from the AST and
cross-checks it against the declared machines in
:mod:`repro.modelcheck.spec` (rules MC301–MC304).
"""

from repro.modelcheck.harness import ProtocolHarness, Snapshot
from repro.modelcheck.explorer import ExplorationResult, explore

__all__ = [
    "ExplorationResult",
    "ProtocolHarness",
    "Snapshot",
    "explore",
]
