"""MC301–MC304: AST-extracted state machines vs the declared spec.

For every class declared in :data:`repro.modelcheck.spec.SPEC_MACHINES`
this pass recovers the state machine the *implementation* encodes —
which handler methods exist, which effects each can reach, and which
methods it arms timers for — and cross-checks it against the declared
machine:

* **MC301 spec-handler-missing** — a declared handler has no method.
* **MC302 undeclared-transition** — a handler performs an effect kind
  outside its declared ``allowed`` set, or arms a timer for a method
  outside its declared ``schedules`` set.
* **MC303 undeclared-handler** — a handler-shaped method (``on_*``,
  ``_on_*``, ``_fire*``, ``receive*``) exists but is not declared.
* **MC304 missing-required-effect** — a handler no longer performs an
  effect the spec requires (deleting the retreat branch is a protocol
  change, not a refactor).

Extraction is receiver-agnostic: a call is classified by its terminal
name through :data:`~repro.modelcheck.spec.EFFECT_NAMES`
(``self.directory.retreat(...)`` and ``directory.retreat(...)`` are
the same transition).  Effects propagate transitively through calls to
same-class methods, including nested function definitions, so a
handler that delegates its send to a helper still extracts ``send``.
Callbacks passed to ``schedule``/``schedule_at`` are the machine's
*deferred* transitions: their targets land in the ``schedules`` set
and their bodies are excluded from the direct-effect walk.

The rules are ordinary :class:`repro.lint.rules.Rule` subclasses, so
they run through the same engine, suppression comments, and report
model as SIM1xx — and they key off the class *name*, which lets a
test fixture exercise them outside the real package.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.rules import Rule, RawFinding
from repro.modelcheck.spec import (
    EFFECT_NAMES,
    HANDLER_PREFIXES,
    MachineSpec,
    SPEC_MACHINES,
)

#: Call names that arm a timer; the callback argument is a deferred
#: transition, not a direct effect.
_SCHEDULE_CALLS = frozenset({"schedule", "schedule_at"})


@dataclass
class ExtractedHandler:
    """The machine one method encodes, after transitive closure."""

    name: str
    line: int
    effects: Set[str] = field(default_factory=set)
    schedules: Set[str] = field(default_factory=set)


def _call_name(node: ast.Call) -> Optional[str]:
    """Terminal name of the called expression (``a.b.c()`` → ``c``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _self_method(node: ast.Call) -> Optional[str]:
    """``m`` when the call is exactly ``self.m(...)``, else None."""
    func = node.func
    if (isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"):
        return func.attr
    return None


def _scheduled_target(node: ast.Call) -> Optional[str]:
    """The method a ``schedule``/``schedule_at`` call arms, if any.

    Handles the two idioms the codebase uses: a bound-method argument
    (``schedule(dt, self._fire)``) and a lambda whose body calls a
    method (``schedule(dt, lambda: self._fire_defence(key))``).  The
    first positional argument is the delay/deadline, never the
    callback, so it is skipped (``schedule(self.delay, ...)`` must not
    extract ``delay`` as a target).
    """
    for arg in list(node.args[1:]) + [kw.value for kw in node.keywords]:
        if isinstance(arg, ast.Attribute):
            return arg.attr
        if isinstance(arg, ast.Lambda):
            for inner in ast.walk(arg.body):
                if isinstance(inner, ast.Call):
                    name = _call_name(inner)
                    if name is not None:
                        return name
    return None


def _walk_effects(node: ast.AST, handler: ExtractedHandler,
                  self_calls: Set[str]) -> None:
    """Recursive effect walk that skips schedule-callback lambdas."""
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name in _SCHEDULE_CALLS:
            handler.effects.add("schedule")
            target = _scheduled_target(node)
            if target is not None:
                handler.schedules.add(target)
            # Descend into the non-lambda children only: the callback
            # body is a deferred transition, not a direct effect.
            for child in ast.iter_child_nodes(node):
                if not isinstance(child, ast.Lambda):
                    _walk_effects(child, handler, self_calls)
            return
        if name is not None and name in EFFECT_NAMES:
            handler.effects.add(EFFECT_NAMES[name])
        method = _self_method(node)
        if method is not None:
            self_calls.add(method)
    for child in ast.iter_child_nodes(node):
        _walk_effects(child, handler, self_calls)


def extract_machine(cls: ast.ClassDef) -> Dict[str, ExtractedHandler]:
    """Per-method effect/schedule sets with same-class closure."""
    methods = {
        item.name: item
        for item in cls.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    direct: Dict[str, ExtractedHandler] = {}
    calls: Dict[str, Set[str]] = {}
    for name, func in methods.items():
        handler = ExtractedHandler(name=name, line=func.lineno)
        self_calls: Set[str] = set()
        for stmt in func.body:
            _walk_effects(stmt, handler, self_calls)
        direct[name] = handler
        calls[name] = {m for m in self_calls if m in methods}
    # Transitive closure: iterate to fixpoint (class call graphs here
    # are tiny, so the quadratic loop is fine).
    changed = True
    while changed:
        changed = False
        for name in sorted(direct):
            handler = direct[name]
            for callee in sorted(calls[name]):
                other = direct[callee]
                if not other.effects <= handler.effects:
                    handler.effects |= other.effects
                    changed = True
                if not other.schedules <= handler.schedules:
                    handler.schedules |= other.schedules
                    changed = True
    return direct


def _handler_shaped(name: str) -> bool:
    return name.startswith(HANDLER_PREFIXES)


class _MachineRule(Rule):
    """Shared machinery: find spec'd classes, extract, compare."""

    scope = frozenset({"sap"})

    def check(self, tree: ast.AST) -> Iterator[RawFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            spec = SPEC_MACHINES.get(node.name)
            if spec is None:
                continue
            extracted = extract_machine(node)
            for finding in self.compare(node, spec, extracted):
                yield finding

    def compare(self, cls: ast.ClassDef, spec: MachineSpec,
                extracted: Dict[str, ExtractedHandler]
                ) -> Iterator[RawFinding]:
        raise NotImplementedError


class SpecHandlerMissingRule(_MachineRule):
    name = "spec-handler-missing"
    code = "MC301"
    description = ("a handler declared in the protocol spec machine "
                   "has no implementing method")

    def compare(self, cls, spec, extracted):
        for handler in spec.handlers:
            if handler.name not in extracted:
                yield (cls.lineno, cls.col_offset,
                       f"{spec.cls} declares handler "
                       f"{handler.name!r} (event: {handler.event}) "
                       f"but no such method exists")


class UndeclaredTransitionRule(_MachineRule):
    name = "undeclared-transition"
    code = "MC302"
    description = ("a spec'd handler performs an effect or arms a "
                   "timer outside its declared machine")

    def compare(self, cls, spec, extracted):
        for handler in spec.handlers:
            impl = extracted.get(handler.name)
            if impl is None:
                continue  # MC301's finding
            for effect in sorted(impl.effects - set(handler.allowed)):
                yield (impl.line, 0,
                       f"{spec.cls}.{handler.name} performs "
                       f"{effect!r}, not in its declared allowed set "
                       f"{sorted(handler.allowed)}")
            for target in sorted(impl.schedules - set(handler.schedules)):
                yield (impl.line, 0,
                       f"{spec.cls}.{handler.name} schedules "
                       f"{target!r}, not in its declared schedules "
                       f"set {sorted(handler.schedules)}")


class UndeclaredHandlerRule(_MachineRule):
    name = "undeclared-handler"
    code = "MC303"
    description = ("a handler-shaped method (on_*/_on_*/_fire*/"
                   "receive*) exists in a spec'd class but is not "
                   "declared in the spec machine")

    def compare(self, cls, spec, extracted):
        declared = spec.handler_names()
        for name in sorted(extracted):
            if _handler_shaped(name) and name not in declared:
                impl = extracted[name]
                yield (impl.line, 0,
                       f"{spec.cls}.{name} looks like a protocol "
                       f"handler but is not declared in the spec "
                       f"machine")


class MissingRequiredEffectRule(_MachineRule):
    name = "missing-required-effect"
    code = "MC304"
    description = ("a spec'd handler no longer performs an effect "
                   "its machine requires")

    def compare(self, cls, spec, extracted):
        for handler in spec.handlers:
            impl = extracted.get(handler.name)
            if impl is None:
                continue  # MC301's finding
            for effect in sorted(set(handler.required) - impl.effects):
                yield (impl.line, 0,
                       f"{spec.cls}.{handler.name} must perform "
                       f"{effect!r} (event: {handler.event}) but the "
                       f"implementation never reaches it")


#: The modelcheck static rules, in code order.
MC_RULES: Tuple[Rule, ...] = (
    SpecHandlerMissingRule(),
    UndeclaredTransitionRule(),
    UndeclaredHandlerRule(),
    MissingRequiredEffectRule(),
)
