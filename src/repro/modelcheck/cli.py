"""``python -m repro.modelcheck`` — exhaust the protocol's small worlds.

    python -m repro.modelcheck smoke
    python -m repro.modelcheck all --format json
    python -m repro.modelcheck smoke --mutation defend-off-by-one

Exit status follows the shared contract in
:mod:`repro.lint.registry`: 0 when every exploration is clean (and
complete), 1 when any violation was found *or* an exploration was
truncated by the state cap (an incomplete verification is not a
verification), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint.registry import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    add_report_arguments,
    render_registry,
)
from repro.modelcheck.explorer import (
    DEFAULT_MAX_STATES,
    ExplorationResult,
    explore,
)
from repro.modelcheck.harness import MUTATIONS
from repro.modelcheck.report import render_github, render_json, render_text
from repro.modelcheck.scenarios import SCENARIOS, get_scenario


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.modelcheck",
        description="bounded explicit-state model checker for the "
                    "clash-detection protocol (drives the real "
                    "implementation through every interleaving)",
    )
    parser.add_argument(
        "scenarios", nargs="*", default=["smoke"],
        help=f"scenarios to exhaust: "
             f"{', '.join(sorted(SCENARIOS))}, or 'all' "
             f"(default: smoke)",
    )
    parser.add_argument("--mutation", choices=MUTATIONS,
                        help="inject a seeded protocol bug and expect "
                             "a counterexample")
    parser.add_argument("--seed", type=int, default=0,
                        help="world seed (jitter draws derive from it)")
    parser.add_argument("--depth", type=int, default=None,
                        help="override the scenario's trace-depth "
                             "bound")
    parser.add_argument("--max-states", type=int,
                        default=DEFAULT_MAX_STATES,
                        help="safety cap on explored states")
    parser.add_argument("--keep-going", action="store_true",
                        help="exhaust the space instead of stopping "
                             "at the first (minimal) violation")
    add_report_arguments(parser)
    parser.add_argument("--list-scenarios", action="store_true",
                        help="print the scenario registry and exit")
    return parser


def list_scenarios() -> str:
    lines = []
    for name in sorted(SCENARIOS):
        scenario = SCENARIOS[name]
        lines.append(f"{name:<14s} {scenario.doc}")
        lines.append(f"        nodes={scenario.nodes} "
                     f"space={scenario.space_size} "
                     f"depth={scenario.depth} "
                     f"loss_budget={scenario.loss_budget} "
                     f"horizon={scenario.horizon:.0f}s")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_registry())
        return EXIT_CLEAN
    if args.list_scenarios:
        print(list_scenarios())
        return EXIT_CLEAN
    names: List[str] = []
    for name in args.scenarios:
        if name == "all":
            names.extend(sorted(SCENARIOS))
        else:
            names.append(name)
    results: List[ExplorationResult] = []
    for name in names:
        try:
            scenario = get_scenario(name)
        except ValueError as exc:
            print(f"repro.modelcheck: {exc}", file=sys.stderr)
            return EXIT_USAGE
        results.append(explore(
            scenario, seed=args.seed, mutation=args.mutation,
            depth=args.depth, max_states=args.max_states,
            stop_on_violation=not args.keep_going,
        ))
    if args.format == "json":
        print(render_json(results))
    elif args.format == "github":
        output = render_github(results)
        if output:
            print(output)
    else:
        print(render_text(results))
    clean = all(result.clean and not result.truncated
                for result in results)
    return EXIT_CLEAN if clean else EXIT_FINDINGS


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
