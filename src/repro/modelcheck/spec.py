"""Declared protocol state machines (the spec side of MC301–MC304).

The paper describes the clash-detection protocol (§3) as a small
reactive machine per site: announcements arrive, timers fire, and the
site reacts by defending, retreating, scheduling a third-party
defence, or re-announcing.  This module *declares* that machine —
which (state, event) pairs have handlers and which effects each
handler may and must perform — and
:mod:`repro.modelcheck.astcheck` extracts the machine actually
implemented from the AST and cross-checks the two.

Effect vocabulary (how call sites are classified):

========== ====================================================
effect     call names
========== ====================================================
send       ``send``, ``_multicast``, ``announce_now``
defend     ``defend``, ``proxy_defend``
retreat    ``retreat``
allocate   ``allocate``
schedule   ``schedule``, ``schedule_at``
cancel     ``cancel``, ``cancel_all``, ``stop``
========== ====================================================

A handler's *schedules* set lists the methods it arms timers for —
the deferred transitions of the machine.  ``allowed`` bounds what the
implementation may do; ``required`` pins what it must do (deleting
the retreat branch of ``on_announcement`` is a spec violation, not a
refactor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

#: Classifier from call name to effect kind; astcheck consumes this.
EFFECT_NAMES: Dict[str, str] = {
    "send": "send",
    "_multicast": "send",
    "announce_now": "send",
    "defend": "defend",
    "proxy_defend": "defend",
    "retreat": "retreat",
    "allocate": "allocate",
    "schedule": "schedule",
    "schedule_at": "schedule",
    "cancel": "cancel",
    "cancel_all": "cancel",
    "stop": "cancel",
}

#: Method-name prefixes that make a method "handler-shaped": it reacts
#: to a message or a timer.  Handler-shaped methods in a spec'd class
#: must be declared (MC303).
HANDLER_PREFIXES: Tuple[str, ...] = ("on_", "_on_", "_fire", "receive")


@dataclass(frozen=True)
class HandlerSpec:
    """One (state, event) → handler declaration.

    Attributes:
        name: the method implementing the handler.
        state: protocol state label the handler serves (documentation
            and finding messages; ``*`` = any state).
        event: the message or timer the handler reacts to.
        allowed: effect kinds the handler may perform.
        required: effect kinds the handler must perform.
        schedules: methods the handler arms timers for (exact set).
    """

    name: str
    state: str
    event: str
    allowed: FrozenSet[str] = frozenset()
    required: FrozenSet[str] = frozenset()
    schedules: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class MachineSpec:
    """The declared machine for one protocol class."""

    cls: str
    doc: str
    handlers: Tuple[HandlerSpec, ...] = field(default_factory=tuple)

    def handler_names(self) -> FrozenSet[str]:
        return frozenset(h.name for h in self.handlers)

    def handler(self, name: str) -> HandlerSpec:
        for handler in self.handlers:
            if handler.name == name:
                return handler
        raise KeyError(name)


def _fs(*names: str) -> FrozenSet[str]:
    return frozenset(names)


#: The declared machines, keyed by class name.  Classes not listed
#: here are outside the spec and ignored by MC301–MC304.
SPEC_MACHINES: Dict[str, MachineSpec] = {
    "ClashHandler": MachineSpec(
        cls="ClashHandler",
        doc="three-phase clash detection (paper §3)",
        handlers=(
            HandlerSpec(
                name="on_announcement",
                state="*",
                event="SAP announcement received",
                allowed=_fs("defend", "retreat", "schedule"),
                required=_fs("defend", "retreat", "schedule"),
                schedules=_fs("_fire_defence"),
            ),
            HandlerSpec(
                name="_fire_defence",
                state="third-party-pending",
                event="random-delay defence timer",
                allowed=_fs("defend"),
                required=_fs("defend"),
            ),
            HandlerSpec(
                name="cancel_all",
                state="*",
                event="teardown",
                allowed=_fs("cancel"),
                required=_fs("cancel"),
            ),
        ),
    ),
    "SessionDirectory": MachineSpec(
        cls="SessionDirectory",
        doc="per-site sdr: announce/listen plus clash callbacks",
        handlers=(
            HandlerSpec(
                name="create_session",
                state="*",
                event="user creates a session",
                allowed=_fs("allocate", "schedule", "send"),
                required=_fs("allocate"),
                schedules=_fs("_expire_own"),
            ),
            HandlerSpec(
                name="delete_session",
                state="announcing",
                event="user withdraws a session",
                allowed=_fs("send", "cancel"),
                required=_fs("send", "cancel"),
            ),
            HandlerSpec(
                name="_expire_own",
                state="announcing",
                event="session lifetime expiry timer",
                allowed=_fs("send", "cancel"),
                required=_fs("send"),
            ),
            HandlerSpec(
                name="defend",
                state="established",
                event="clash handler phase-1 callback",
                allowed=_fs("send"),
                required=_fs("send"),
            ),
            HandlerSpec(
                name="retreat",
                state="newcomer",
                event="clash handler phase-2 callback",
                # "defend" is the scenario-persona override branch: an
                # always-defends adversary holds its claim where the
                # protocol says a newcomer must yield.  The honest
                # path must still allocate and re-announce.
                allowed=_fs("allocate", "send", "defend"),
                required=_fs("allocate", "send"),
            ),
            HandlerSpec(
                name="proxy_defend",
                state="third-party",
                event="clash handler phase-3 callback",
                allowed=_fs("send"),
                required=_fs("send"),
            ),
            HandlerSpec(
                name="_on_packet",
                state="*",
                event="SAP packet delivered",
            ),
        ),
    ),
    "Announcer": MachineSpec(
        cls="Announcer",
        doc="periodic announcement loop (paper §4 rates)",
        handlers=(
            HandlerSpec(
                name="start",
                state="idle",
                event="session starts announcing",
                allowed=_fs("send", "schedule"),
                required=_fs("send", "schedule"),
                schedules=_fs("_fire"),
            ),
            HandlerSpec(
                name="stop",
                state="announcing",
                event="session withdrawn",
                allowed=_fs("cancel"),
                required=_fs("cancel"),
            ),
            HandlerSpec(
                name="announce_now",
                state="announcing",
                event="clash defence re-announcement",
                allowed=_fs("send"),
                required=_fs("send"),
            ),
            HandlerSpec(
                name="_fire",
                state="announcing",
                event="re-announcement timer",
                allowed=_fs("send", "schedule"),
                required=_fs("send", "schedule"),
                schedules=_fs("_fire"),
            ),
        ),
    ),
    "ZamTransport": MachineSpec(
        cls="ZamTransport",
        doc="scoped ZAM delivery (MZAP-lite)",
        handlers=(
            HandlerSpec(
                name="send",
                state="*",
                event="ZAM multicast",
                allowed=_fs("schedule"),
                required=_fs("schedule"),
                schedules=_fs("_deliver"),
            ),
            HandlerSpec(
                name="_deliver",
                state="*",
                event="ZAM delivery timer",
            ),
        ),
    ),
    "ZoneAnnouncer": MachineSpec(
        cls="ZoneAnnouncer",
        doc="zone announcement producer (MZAP-lite)",
        handlers=(
            HandlerSpec(
                name="start",
                state="idle",
                event="producer starts",
                allowed=_fs("send", "schedule"),
                required=_fs("send", "schedule"),
                schedules=_fs("_fire"),
            ),
            HandlerSpec(
                name="stop",
                state="announcing",
                event="producer stops",
                allowed=_fs("cancel"),
                required=_fs("cancel"),
            ),
            HandlerSpec(
                name="_fire",
                state="announcing",
                event="ZAM period timer",
                allowed=_fs("send", "schedule"),
                required=_fs("send", "schedule"),
                schedules=_fs("_fire"),
            ),
        ),
    ),
    "ZoneListener": MachineSpec(
        cls="ZoneListener",
        doc="ZAM collector and leak detector (MZAP-lite)",
        handlers=(
            HandlerSpec(
                name="receive",
                state="*",
                event="ZAM delivered",
            ),
        ),
    ),
}
