"""Model-check reporters, in the shared lint report model.

Runtime model-check violations map into the lint
:class:`~repro.lint.engine.Finding` shape the same way sanitizer
violations do: a pseudo-path (``<modelcheck:scenario>``), line 0 and
the simulated time folded into the message.  JSON output is the lint
schema (``{"count": N, "findings": [...]}``) extended with a
``results`` array carrying the exploration statistics — state and
transition counts, bounds, and the minimal counterexample trace when
a violation was found.
"""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.lint.engine import Finding
from repro.lint.report import render_github as _lint_render_github
from repro.modelcheck.explorer import ExplorationResult


def result_pseudo_path(result: ExplorationResult) -> str:
    if result.mutation:
        return f"<modelcheck:{result.scenario}+{result.mutation}>"
    return f"<modelcheck:{result.scenario}>"


def result_findings(result: ExplorationResult) -> List[Finding]:
    """Map one exploration's violations into lint findings."""
    path = result_pseudo_path(result)
    return [
        Finding(
            path=path, line=0, col=0, code=violation.code,
            rule=violation.rule,
            message=f"t={violation.time:.4f}: {violation.message}",
        )
        for violation in result.violations
    ]


def _summary_line(result: ExplorationResult) -> str:
    label = f"modelcheck[{result.scenario}]"
    if result.mutation:
        label = f"modelcheck[{result.scenario}+{result.mutation}]"
    status = ("TRUNCATED" if result.truncated
              else "clean" if result.clean
              else f"{len(result.violations)} violation(s)")
    return (f"{label}: {status} — {result.states} states, "
            f"{result.transitions} transitions, "
            f"{result.quiescent_states} quiescent, "
            f"{result.latent_clashes} latent clash(es), "
            f"depth {result.depth}, "
            f"{result.elapsed_seconds:.2f}s")


def render_text(results: Sequence[ExplorationResult]) -> str:
    """Per-scenario summaries, violations and counterexamples."""
    lines: List[str] = []
    for result in results:
        lines.append(_summary_line(result))
        for violation in result.violations:
            lines.append(f"  t={violation.time:.4f}: {violation.code} "
                         f"[{violation.rule}] {violation.message}")
        if result.violations and result.counterexample_labels:
            lines.append("  minimal counterexample "
                         f"({len(result.counterexample_labels)} "
                         "actions):")
            for step, label in enumerate(
                    result.counterexample_labels, start=1):
                lines.append(f"    {step:2d}. {label}")
    total = sum(len(result.violations) for result in results)
    if total == 0:
        lines.append(f"modelcheck: {len(results)} exploration(s) clean")
    else:
        lines.append(f"modelcheck: {total} violation(s) across "
                     f"{len(results)} exploration(s)")
    return "\n".join(lines)


def render_json(results: Sequence[ExplorationResult]) -> str:
    """Lint-schema findings plus per-exploration statistics."""
    findings = [
        finding.to_dict()
        for result in results
        for finding in result_findings(result)
    ]
    return json.dumps(
        {
            "count": len(findings),
            "findings": findings,
            "results": [result.to_dict() for result in results],
        },
        indent=2,
        sort_keys=True,
    )


def render_github(results: Sequence[ExplorationResult]) -> str:
    """GitHub Actions annotations for every violation."""
    findings = [
        finding
        for result in results
        for finding in result_findings(result)
    ]
    return _lint_render_github(findings)
