"""Model-checking scenarios: small worlds worth exhausting.

Each scenario is a tiny configuration (2–4 directories, a 2-address
space, one or two contended addresses) chosen so that the bounded
state space is small enough to exhaust yet still contains the
protocol situations the paper reasons about in §3:

* ``smoke`` — the canonical defend/retreat encounter: an established
  session versus a newcomer that allocated the same address while the
  establisher's announcements were lost.
* ``simultaneous`` — the simultaneous-allocation race: two sites
  allocate the same address in the same propagation window and the
  deterministic tie-break must make exactly one of them move.
* ``ghost`` — the use-after-expiry gauntlet: an established session
  expires while a third-party defence of it is pending; nobody may
  re-announce it as its originator afterwards.

Scenario announcement intervals are deliberately short (45 s versus
sdr's classic 600 s) so that one or two re-announcements fall inside
the timer horizon: repair-after-loss paths are then part of the
explored space instead of being truncated away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple


@dataclass(frozen=True)
class Scenario:
    """One bounded configuration to exhaust.

    Attributes:
        name: CLI identifier.
        doc: one-line description for listings and reports.
        nodes: number of session directories.
        space_size: addresses in the (deliberately tiny) space.
        horizon: timers due after this simulated time are outside the
            model (bounds periodic re-announcement chains).
        depth: default exploration depth bound (actions per trace).
        loss_budget: maximum messages the explorer may lose per trace.
        delay_bound: maximum in-flight delay (seconds) for a message
            that is eventually delivered.  Timer firings that would
            advance the clock past an undelivered message's deadline
            are disabled until that message is delivered or dropped.
            Without this bound the explorer can defer a delivery past
            the recent window, turning *both* claimants established —
            the paper's partition-heal case, which the protocol
            deliberately does not auto-resolve (§3).
        announce_interval: fixed re-announcement interval (seconds).
        protocol_nodes: nodes running the clash protocol; the rest are
            legacy announcers (announce and cache, never defend or
            retreat — the paper's guarantee is among participants, so
            MC312 only counts protocol-running claimants).
        setup: callable building the initial world on a harness.
    """

    name: str
    doc: str
    nodes: int
    space_size: int
    horizon: float
    depth: int
    loss_budget: int
    delay_bound: float
    announce_interval: float
    protocol_nodes: Tuple[int, ...]
    setup: Callable[["object"], None]


def _setup_smoke(harness) -> None:
    """Node 0 establishes a session whose announcements never reached
    node 1 (partition); 40 s later node 1 allocates the same address."""
    harness.create(0, "established")
    harness.void_inflight()
    harness.advance(40.0)
    harness.create(1, "newcomer")


def _setup_simultaneous(harness) -> None:
    """Both sites allocate in the same propagation window: each picks
    address 0 before hearing the other's announcement."""
    harness.create(0, "racer-a")
    harness.create(1, "racer-b")


def _setup_ghost(harness) -> None:
    """Node 0's session (lifetime 50 s, so it expires mid-exploration)
    is cached only at node 1; node 2 — a legacy announcer with no
    clash protocol — never heard it and allocates the same address at
    t=40."""
    harness.create(0, "victim", lifetime=50.0)
    harness.deliver_inflight(1)
    harness.advance(40.0)
    harness.create(2, "newcomer")


SCENARIOS: Dict[str, Scenario] = {
    "smoke": Scenario(
        name="smoke",
        doc="established session vs newcomer (defend/retreat, §3 "
            "phases 1-2)",
        nodes=2,
        space_size=2,
        horizon=120.0,
        depth=12,
        loss_budget=1,
        delay_bound=5.0,
        announce_interval=45.0,
        protocol_nodes=(0, 1),
        setup=_setup_smoke,
    ),
    "simultaneous": Scenario(
        name="simultaneous",
        doc="simultaneous-allocation race, deterministic tie-break "
            "(§3 phase 2)",
        nodes=2,
        space_size=2,
        horizon=100.0,
        depth=12,
        loss_budget=1,
        delay_bound=5.0,
        announce_interval=45.0,
        protocol_nodes=(0, 1),
        setup=_setup_simultaneous,
    ),
    "ghost": Scenario(
        name="ghost",
        doc="session expires while a third-party defence is pending "
            "(§3 phase 3 vs withdrawal)",
        nodes=3,
        space_size=2,
        horizon=120.0,
        depth=12,
        loss_budget=1,
        delay_bound=5.0,
        announce_interval=45.0,
        protocol_nodes=(0, 1),
        setup=_setup_ghost,
    ),
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown scenario {name!r} (known: {known})")


def scenario_names() -> Tuple[str, ...]:
    return tuple(sorted(SCENARIOS))
