"""Entry point for ``python -m repro.modelcheck``."""

import sys

from repro.modelcheck.cli import main

sys.exit(main())
