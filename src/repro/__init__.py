"""repro — Session Directories and Scalable Internet Multicast Address
Allocation (Handley, SIGCOMM 1998), reproduced as a Python library.

Layout:

* :mod:`repro.core` — the allocation algorithms (R, IR, static IPRMA,
  adaptive/deterministic-adaptive IPRMA, AIPR-H, hierarchical prefix
  allocation) plus address spaces, sessions and clash detection.
* :mod:`repro.analysis` — the paper's closed-form models (birthday
  curve, eq. 1 clash model, §2.3 announcement arithmetic, eq. 2/4
  responder bounds).
* :mod:`repro.topology` — the synthetic Mbone map, the Doar-style
  generator, hop-count analysis.
* :mod:`repro.routing` — DVMRP shortest-path trees, shared trees, TTL
  scoping.
* :mod:`repro.sim` — discrete-event kernel and the lossy multicast
  network model.
* :mod:`repro.sap` — the session directory: SDP, SAP announcements,
  caches, announcement strategies, the three-phase clash protocol.
* :mod:`repro.experiments` — harnesses regenerating every figure and
  table in the paper's evaluation.
"""

from repro.core import (
    AdaptiveIprmaAllocator,
    Allocator,
    HierarchicalAllocator,
    HybridIprmaAllocator,
    InformedRandomAllocator,
    MulticastAddressSpace,
    PrefixPool,
    RandomAllocator,
    Session,
    StaticIprmaAllocator,
    VisibleSet,
)
from repro.routing import ScopeMap
from repro.sap import SessionDirectory
from repro.sim import EventScheduler, NetworkModel
from repro.topology import Topology, generate_doar, generate_mbone

__version__ = "1.0.0"

__all__ = [
    "AdaptiveIprmaAllocator",
    "Allocator",
    "EventScheduler",
    "HierarchicalAllocator",
    "HybridIprmaAllocator",
    "InformedRandomAllocator",
    "MulticastAddressSpace",
    "NetworkModel",
    "PrefixPool",
    "RandomAllocator",
    "ScopeMap",
    "Session",
    "SessionDirectory",
    "StaticIprmaAllocator",
    "Topology",
    "VisibleSet",
    "generate_doar",
    "generate_mbone",
    "__version__",
]
