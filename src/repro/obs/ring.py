"""Fixed-capacity ring-buffer exporter with explicit drop accounting.

The exporter is the out-of-band half of the telemetry pipeline: hot
paths append small records (span completions, registry snapshots) to
a preallocated ring, and a reader drains them to JSON or Prometheus
text *between* simulation runs — never from inside the event loop.

The ring never blocks and never allocates after construction: at
capacity it overwrites the oldest record and counts the loss in
:attr:`dropped`.  Saturation is a telemetry-quality problem, not a
correctness problem, so it surfaces as the **OBS403** advisory (via
``ObsContext.finish``) rather than failing the scenario — the
simulation's own output is unaffected by how much of its telemetry
survived.  The accounting identity ``pushed == retained + drained +
dropped`` always holds and is pinned by ``tests/test_obs_ring.py``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.metrics import (
    MetricsRegistry,
    _label_str,
    canonical_labels,
)

#: Default ring capacity: holds every sampled span of a steady run
#: (~280 at the default 1-in-64 rate) with generous headroom.
DEFAULT_EXPORT_CAPACITY = 1024


class RingExporter:
    """Overwrite-oldest ring of telemetry records.

    Records are plain dicts with a ``"kind"`` key (``"span"`` or
    ``"snapshot"``); the ring itself is payload-agnostic.
    """

    __slots__ = ("capacity", "_ring", "_head", "_size", "pushed",
                 "dropped", "drained")

    def __init__(self, capacity: int = DEFAULT_EXPORT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1: {capacity}")
        self.capacity = int(capacity)
        self._ring: List[Optional[dict]] = [None] * self.capacity
        self._head = 0  # index of the oldest retained record
        self._size = 0
        self.pushed = 0   # total records ever offered
        self.dropped = 0  # records overwritten before being drained
        self.drained = 0  # records handed to a reader

    # ------------------------------------------------------------------
    # Writer side (hot-ish: called per sampled span, not per event)
    # ------------------------------------------------------------------
    def push(self, record: dict) -> None:
        """Append a record, overwriting the oldest at capacity."""
        self.pushed += 1
        if self._size == self.capacity:
            # Overwrite the oldest: head advances, size stays full.
            self._ring[self._head] = record
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1
        else:
            tail = (self._head + self._size) % self.capacity
            self._ring[tail] = record
            self._size += 1

    def push_snapshot(self, registry: MetricsRegistry,
                      label: str = "") -> None:
        """Capture the registry's current state as one ring record."""
        self.push({
            "kind": "snapshot",
            "label": label,
            "metrics": registry.as_dict(),
        })

    # ------------------------------------------------------------------
    # Reader side (out-of-band)
    # ------------------------------------------------------------------
    def drain(self) -> List[dict]:
        """Remove and return all retained records, oldest first."""
        out: List[dict] = []
        head, size, ring = self._head, self._size, self._ring
        for offset in range(size):
            index = (head + offset) % self.capacity
            record = ring[index]
            assert record is not None
            out.append(record)
            ring[index] = None
        self._head = 0
        self._size = 0
        self.drained += len(out)
        return out

    def peek(self) -> List[dict]:
        """All retained records, oldest first, without consuming."""
        return [
            self._ring[(self._head + offset) % self.capacity]  # type: ignore[misc]
            for offset in range(self._size)
        ]

    @property
    def retained(self) -> int:
        return self._size

    @property
    def saturated(self) -> bool:
        """True once any record has been lost to overwrite."""
        return self.dropped > 0

    def stats(self) -> Dict[str, int]:
        """Drop-accounting block for reports.

        Invariant: ``pushed == retained + drained + dropped``.
        """
        return {
            "capacity": self.capacity,
            "pushed": self.pushed,
            "retained": self._size,
            "drained": self.drained,
            "dropped": self.dropped,
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def drain_json(self) -> str:
        """Drain to one JSON document: records plus accounting."""
        records = self.drain()
        return json.dumps(
            {"records": records, "exporter": self.stats()},
            indent=2, sort_keys=True,
        )

    def drain_prometheus(self) -> str:
        """Drain, rendering snapshot records to exposition text.

        Span records have no Prometheus shape and are skipped here
        (drain to JSON for those); each snapshot renders with its
        ``label`` stamped on as a ``snapshot`` label, followed by the
        exporter's own accounting series.
        """
        records = self.drain()
        lines: List[str] = []
        for record in records:
            if record.get("kind") != "snapshot":
                continue
            snapshot_labels = canonical_labels(
                {"snapshot": record.get("label", "")}
            )
            for name, family in sorted(record["metrics"].items()):
                lines.append(f"# TYPE {name} {family['type']}")
                for sample in family["samples"]:
                    labels = dict(sample["labels"])
                    key = snapshot_labels + canonical_labels(labels)
                    if family["type"] == "histogram":
                        lines.append(
                            f"{name}_sum{_label_str(key)} "
                            f"{sample['sum']!r}"
                        )
                        lines.append(
                            f"{name}_count{_label_str(key)} "
                            f"{sample['count']}"
                        )
                    else:
                        lines.append(
                            f"{name}{_label_str(key)} "
                            f"{sample['value']}"
                        )
        for stat, value in self.stats().items():
            lines.append(f"obs_exporter_{stat} {value}")
        return "\n".join(lines) + "\n"
