"""Deterministic 1-in-N samplers for the hot observation paths.

Full tracing of every event at steady state is what made observed mode
cost 74% throughput; counting every event but *materialising* (span
records, wall-clock timing, histograms) only a sampled subset brings
the cost under the 5% budget.  Two properties matter:

* **Deterministic.**  The sampler draws from a stream derived from the
  scenario seed via :func:`repro.sim.rng.derived_stream`, never from
  OS entropy and never from a simulation stream — so two runs of the
  same seed sample the *identical* event subset (pinned by
  ``tests/test_obs_sampling.py``) and attaching the sampler cannot
  perturb the simulation's own random sequences (the determinism
  trace stays byte-identical).

* **Unbiased gaps.**  A fixed stride of N aliases against any
  workload periodicity (e.g. every N-th event always being the same
  announce timer).  Instead each gap is drawn uniformly from
  ``[1, 2N-1]``, giving mean N with no phase lock.

The countdown idiom keeps the per-event cost to one decrement and one
compare at the call site; :meth:`next_gap` (an RNG draw) runs only on
the 1-in-N sampled path.
"""

from __future__ import annotations

from repro.sim.rng import derived_stream

#: Default sampling rate for ObsContext: one event in 64 is
#: materialised.  At the steady scenario's ~18k events this still
#: yields ~280 samples per run — plenty for latency histograms —
#: while keeping the observed path inside the <5% overhead gate.
DEFAULT_SAMPLE_RATE = 64


class DeterministicSampler:
    """Seed-derived 1-in-``rate`` sampler with randomised gaps.

    Args:
        rate: mean events per sample; ``1`` samples everything
            (useful for unit tests that assert exact counts).
        seed: scenario seed the gap stream is derived from.
        stream: derived-stream name; concerns that must not share a
            gap sequence (spans vs. scheduler latency vs. delivery)
            pass distinct names.
    """

    __slots__ = ("rate", "_rng")

    def __init__(self, rate: int, seed: int = 0,
                 stream: str = "obs/sampler") -> None:
        if rate < 1:
            raise ValueError(f"sample rate must be >= 1: {rate}")
        self.rate = int(rate)
        self._rng = derived_stream(stream, seed=seed)

    def next_gap(self) -> int:
        """Events until the next sample (inclusive), mean ``rate``."""
        if self.rate == 1:
            return 1
        # Uniform on [1, 2*rate - 1]: mean exactly `rate`, never 0,
        # no fixed stride to alias against periodic workloads.
        return 1 + int(self._rng.integers(0, 2 * self.rate - 1))
