"""Observability issue model — the OBS4xx code space.

An :class:`ObsIssue` is the observability analogue of a sanitizer
:class:`~repro.sanitize.report.Violation`: a diagnostic about the
*instrumentation* itself (a metric name registered twice with
conflicting shapes, a span left open at scenario end), not about the
simulated protocol.  The :meth:`ObsIssue.to_finding` bridge maps
issues into the lint report model so ``repro obs --format github``
and the JSON findings block speak the same schema as the other three
tools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.lint.engine import Finding
from repro.lint.registry import OBS_RUNTIME_CODES

#: The (code, rule) pairs the observability layer can emit — an alias
#: of the shared registry's OBS4xx block, so ``--list-rules`` and the
#: runtime emitter can never drift apart.
ISSUE_CODES = OBS_RUNTIME_CODES


@dataclass(frozen=True)
class ObsIssue:
    """One observability diagnostic at one simulated instant."""

    code: str
    rule: str
    message: str
    time: float = 0.0

    def __post_init__(self) -> None:
        if ISSUE_CODES.get(self.code) != self.rule:
            raise ValueError(
                f"unregistered obs issue {self.code}/{self.rule}"
            )

    def format(self) -> str:
        return (f"t={self.time:.4f}: {self.code} [{self.rule}] "
                f"{self.message}")

    def to_finding(self, path: str) -> Finding:
        """Map into the lint report model (pseudo-path, line 0)."""
        return Finding(
            path=path, line=0, col=0, code=self.code, rule=self.rule,
            message=f"t={self.time:.4f}: {self.message}",
        )


def render_issues_text(issues: Sequence[ObsIssue],
                       scenario: str = "") -> str:
    """One line per issue plus a lint-style summary line."""
    lines: List[str] = [issue.format() for issue in issues]
    label = f"obs[{scenario}]" if scenario else "obs"
    count = len(issues)
    if count == 0:
        lines.append(f"{label}: clean (0 issues)")
    else:
        by_rule: dict = {}
        for issue in issues:
            by_rule[issue.rule] = by_rule.get(issue.rule, 0) + 1
        breakdown = ", ".join(
            f"{rule}={n}" for rule, n in sorted(by_rule.items())
        )
        noun = "issue" if count == 1 else "issues"
        lines.append(f"{label}: {count} {noun} ({breakdown})")
    return "\n".join(lines)
