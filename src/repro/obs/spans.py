"""Nested span tracing, layered on :class:`repro.sim.trace.Tracer`.

A span is one named interval of *simulated* time with a parent — the
protocol phases nest naturally (``listen`` around a received packet,
``defend``/``retreat`` inside it; ``announce`` around a session
creation, ``allocate`` inside it), so the span tree is the protocol's
call structure annotated with timing.

The existing tracer is the sink: every begin/end emits one
:class:`~repro.sim.trace.TraceRecord` in the ``span`` category, so
the timeline tools (``format_timeline``, category filters, capacity
bounds) work on spans with no changes and existing consumers keep
working unchanged.  The tracker additionally keeps a bounded
structured tree for the JSON report.

Span ids are sequential integers and all timestamps are simulated
time, so span output is deterministic for a given seed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.report import ObsIssue
from repro.sim.trace import Tracer

#: Trace category used for span begin/end records.
SPAN_CATEGORY = "span"

#: Structured-tree retention bound; spans past it still trace and
#: count but are not kept as objects.
DEFAULT_MAX_RETAINED = 10_000


@dataclass
class Span:
    """One named interval of simulated time within the span tree."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    node: Optional[int]
    start: float
    end: Optional[float] = None
    children: List["Span"] = field(default_factory=list)

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def depth(self) -> int:
        """Height of the subtree rooted here (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "span_id": self.span_id,
            "name": self.name,
            "category": self.category,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
        }
        if self.children:
            out["children"] = [child.to_dict()
                               for child in self.children]
        return out


class _SpanContext:
    """``with tracker.span(...):`` support."""

    __slots__ = ("_tracker", "_span")

    def __init__(self, tracker: "SpanTracker", span: Span) -> None:
        self._tracker = tracker
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info: Any) -> None:
        self._tracker.end(self._span)


class SpanTracker:
    """Begin/end spans, maintain the parent stack, sink to a tracer.

    Args:
        tracer: the sink for begin/end records; its scheduler's clock
            supplies all timestamps.
        max_retained: structured-tree retention bound.  The begin/end
            *records* still flow to the tracer past the bound (that
            buffer has its own capacity policy); only the tree stops
            growing.
    """

    def __init__(self, tracer: Tracer,
                 max_retained: int = DEFAULT_MAX_RETAINED) -> None:
        if max_retained <= 0:
            raise ValueError(
                f"max_retained must be positive: {max_retained}"
            )
        self.tracer = tracer
        self.max_retained = max_retained
        self._ids = itertools.count(1)
        self._stack: List[Span] = []
        self._roots: List[Span] = []
        self.started = 0
        self.finished = 0
        self.dropped = 0
        self.mismatched = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "phase",
             node: Optional[int] = None, **data: Any) -> _SpanContext:
        """Context manager: begin now, end on exit (even on error)."""
        return _SpanContext(self, self.begin(name, category=category,
                                             node=node, **data))

    def begin(self, name: str, category: str = "phase",
              node: Optional[int] = None, **data: Any) -> Span:
        parent = self._stack[-1] if self._stack else None
        span = Span(
            span_id=next(self._ids),
            parent_id=None if parent is None else parent.span_id,
            name=name,
            category=category,
            node=node,
            start=self.tracer.scheduler.now,
        )
        self.started += 1
        if self.started <= self.max_retained:
            if parent is None:
                self._roots.append(span)
            else:
                parent.children.append(span)
        else:
            self.dropped += 1
        self._stack.append(span)
        self.tracer.emit(
            SPAN_CATEGORY, f"begin {name}", node=node,
            span=span.span_id, parent=span.parent_id or 0, **data,
        )
        return span

    def end(self, span: Span) -> None:
        """Close ``span``; tolerates (and counts) mis-nested ends."""
        if span.end is not None:
            self.mismatched += 1
            return
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:
            # Out-of-order close: remove it wherever it sits so the
            # stack stays usable; count the discipline violation.
            self.mismatched += 1
            self._stack.remove(span)
        else:
            self.mismatched += 1
        span.end = self.tracer.scheduler.now
        self.finished += 1
        self.tracer.emit(
            SPAN_CATEGORY, f"end {span.name}", node=span.node,
            span=span.span_id, duration=round(span.duration or 0.0, 9),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def roots(self) -> List[Span]:
        return list(self._roots)

    def iter_spans(self) -> Iterator[Span]:
        stack = list(reversed(self._roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def open_spans(self) -> List[Span]:
        return [span for span in self.iter_spans() if span.open]

    def max_depth(self) -> int:
        if not self._roots:
            return 0
        return max(root.depth() for root in self._roots)

    def nested_root_count(self) -> int:
        """Roots that actually have children (true trees)."""
        return sum(1 for root in self._roots if root.children)

    def check_closed(self, scenario: str = "") -> List[ObsIssue]:
        """OBS402 for every span still open (call at scenario end)."""
        label = f" in scenario {scenario!r}" if scenario else ""
        return [
            ObsIssue(
                code="OBS402", rule="unclosed-span",
                message=(f"span #{span.span_id} {span.name!r} "
                         f"(node={span.node}) still open at scenario "
                         f"end{label}"),
                time=span.start,
            )
            for span in self.open_spans()
        ]

    def to_dict(self, max_roots: int = 50) -> Dict[str, Any]:
        """Bounded JSON snapshot of the span forest."""
        roots = self._roots[:max_roots]
        return {
            "started": self.started,
            "finished": self.finished,
            "dropped": self.dropped,
            "mismatched": self.mismatched,
            "max_depth": self.max_depth(),
            "nested_trees": self.nested_root_count(),
            "roots_total": len(self._roots),
            "roots": [root.to_dict() for root in roots],
        }
