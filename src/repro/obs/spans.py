"""Nested span tracing, layered on :class:`repro.sim.trace.Tracer`.

A span is one named interval of *simulated* time with a parent — the
protocol phases nest naturally (``listen`` around a received packet,
``defend``/``retreat`` inside it; ``announce`` around a session
creation, ``allocate`` inside it), so the span tree is the protocol's
call structure annotated with timing.

The existing tracer is the sink: every begin/end emits one
:class:`~repro.sim.trace.TraceRecord` in the ``span`` category, so
the timeline tools (``format_timeline``, category filters, capacity
bounds) work on spans with no changes and existing consumers keep
working unchanged.  The tracker additionally keeps a bounded
structured tree for the JSON report.

Span ids are sequential integers and all timestamps are simulated
time, so span output is deterministic for a given seed.

**Sampling.**  Materialising a span (tracer records, tree nodes,
exporter pushes) is far too expensive to do per protocol event at
steady state, so the tracker carries a deterministic 1-in-N
:class:`~repro.obs.sampling.DeterministicSampler` and a public
:attr:`~SpanTracker.countdown`.  The *wiring sites* (the closures
``ObsContext`` installs) own the sampling decision: a root site
decrements ``countdown`` and, on zero, resets it via
:meth:`~SpanTracker.next_gap` and opens a real span; otherwise it
bumps :attr:`~SpanTracker.started` and moves on.  Child sites record
iff the parent stack is non-empty — i.e. exactly when their root was
sampled — which preserves the nesting invariant (every recorded child
sits inside a recorded parent; no orphaned children) at any rate.
Calling :meth:`~SpanTracker.begin` directly always records: the
direct API is for tests and low-frequency phases where sampling would
only lose information.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.report import ObsIssue
from repro.obs.ring import RingExporter
from repro.obs.sampling import DeterministicSampler
from repro.sim.trace import Tracer

#: Trace category used for span begin/end records.
SPAN_CATEGORY = "span"

#: Structured-tree retention bound; spans past it still trace and
#: count but are not kept as objects.
DEFAULT_MAX_RETAINED = 10_000


@dataclass
class Span:
    """One named interval of simulated time within the span tree."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    node: Optional[int]
    start: float
    end: Optional[float] = None
    children: List["Span"] = field(default_factory=list)

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def depth(self) -> int:
        """Height of the subtree rooted here (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "span_id": self.span_id,
            "name": self.name,
            "category": self.category,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
        }
        if self.children:
            out["children"] = [child.to_dict()
                               for child in self.children]
        return out


class _SpanContext:
    """``with tracker.span(...):`` support."""

    __slots__ = ("_tracker", "_span")

    def __init__(self, tracker: "SpanTracker", span: Span) -> None:
        self._tracker = tracker
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info: Any) -> None:
        self._tracker.end(self._span)


class SpanTracker:
    """Begin/end spans, maintain the parent stack, sink to a tracer.

    Args:
        tracer: the sink for begin/end records; its scheduler's clock
            supplies all timestamps.
        max_retained: structured-tree retention bound.  The begin/end
            *records* still flow to the tracer past the bound (that
            buffer has its own capacity policy); only the tree stops
            growing.
        sampler: gap source for site-level sampling; ``None`` means
            every site decision samples (rate 1).
        exporter: optional ring that receives one record per span
            close, for out-of-band draining.

    Counters: :attr:`started` counts every span the wiring sites saw,
    sampled or not (sites bump it directly on the skip path);
    :attr:`recorded` counts the spans actually materialised.
    """

    __slots__ = ("tracer", "max_retained", "sampler", "exporter",
                 "_ids", "_stack", "_roots", "started", "recorded",
                 "finished", "dropped", "mismatched", "countdown")

    def __init__(self, tracer: Tracer,
                 max_retained: int = DEFAULT_MAX_RETAINED,
                 sampler: Optional[DeterministicSampler] = None,
                 exporter: Optional[RingExporter] = None) -> None:
        if max_retained <= 0:
            raise ValueError(
                f"max_retained must be positive: {max_retained}"
            )
        self.tracer = tracer
        self.max_retained = max_retained
        self.sampler = sampler
        self.exporter = exporter
        self._ids = itertools.count(1)
        self._stack: List[Span] = []
        self._roots: List[Span] = []
        self.started = 0
        self.recorded = 0
        self.finished = 0
        self.dropped = 0
        self.mismatched = 0
        #: Root-site sampling countdown: sites decrement it per span
        #: opportunity and open a real span when it reaches zero.
        self.countdown = 1 if sampler is None else sampler.next_gap()

    def next_gap(self) -> int:
        """Reset value for :attr:`countdown` after a sampled root."""
        return 1 if self.sampler is None else self.sampler.next_gap()

    @property
    def in_recorded_span(self) -> bool:
        """True while a materialised span is open (child-site gate)."""
        return bool(self._stack)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "phase",
             node: Optional[int] = None, **data: Any) -> _SpanContext:
        """Context manager: begin now, end on exit (even on error)."""
        return _SpanContext(self, self.begin(name, category=category,
                                             node=node, **data))

    def begin(self, name: str, category: str = "phase",
              node: Optional[int] = None, **data: Any) -> Span:
        parent = self._stack[-1] if self._stack else None
        span = Span(
            span_id=next(self._ids),
            parent_id=None if parent is None else parent.span_id,
            name=name,
            category=category,
            node=node,
            start=self.tracer.scheduler.now,
        )
        self.started += 1
        self.recorded += 1
        if self.recorded <= self.max_retained:
            if parent is None:
                self._roots.append(span)
            else:
                parent.children.append(span)
        else:
            self.dropped += 1
        self._stack.append(span)
        self.tracer.emit(
            SPAN_CATEGORY, f"begin {name}", node=node,
            span=span.span_id, parent=span.parent_id or 0, **data,
        )
        return span

    def end(self, span: Span) -> None:
        """Close ``span``; tolerates (and counts) mis-nested ends."""
        if span.end is not None:
            self.mismatched += 1
            return
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:
            # Out-of-order close: remove it wherever it sits so the
            # stack stays usable; count the discipline violation.
            self.mismatched += 1
            self._stack.remove(span)
        else:
            self.mismatched += 1
        span.end = self.tracer.scheduler.now
        self.finished += 1
        self.tracer.emit(
            SPAN_CATEGORY, f"end {span.name}", node=span.node,
            span=span.span_id, duration=round(span.duration or 0.0, 9),
        )
        if self.exporter is not None:
            self.exporter.push({
                "kind": "span",
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "name": span.name,
                "category": span.category,
                "node": span.node,
                "start": span.start,
                "end": span.end,
                "duration": span.duration,
            })

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def roots(self) -> List[Span]:
        return list(self._roots)

    def iter_spans(self) -> Iterator[Span]:
        stack = list(reversed(self._roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def open_spans(self) -> List[Span]:
        return [span for span in self.iter_spans() if span.open]

    def max_depth(self) -> int:
        if not self._roots:
            return 0
        return max(root.depth() for root in self._roots)

    def nested_root_count(self) -> int:
        """Roots that actually have children (true trees)."""
        return sum(1 for root in self._roots if root.children)

    def check_closed(self, scenario: str = "") -> List[ObsIssue]:
        """OBS402 for every span still open (call at scenario end)."""
        label = f" in scenario {scenario!r}" if scenario else ""
        return [
            ObsIssue(
                code="OBS402", rule="unclosed-span",
                message=(f"span #{span.span_id} {span.name!r} "
                         f"(node={span.node}) still open at scenario "
                         f"end{label}"),
                time=span.start,
            )
            for span in self.open_spans()
        ]

    def to_dict(self, max_roots: int = 50) -> Dict[str, Any]:
        """Bounded JSON snapshot of the span forest."""
        roots = self._roots[:max_roots]
        return {
            "started": self.started,
            "recorded": self.recorded,
            "sample_rate": (1 if self.sampler is None
                            else self.sampler.rate),
            "finished": self.finished,
            "dropped": self.dropped,
            "mismatched": self.mismatched,
            "max_depth": self.max_depth(),
            "nested_trees": self.nested_root_count(),
            "roots_total": len(self._roots),
            "roots": [root.to_dict() for root in roots],
        }
