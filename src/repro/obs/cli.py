"""``python -m repro.obs`` — run instrumented scenarios, emit metrics.

Formats:

* ``text`` (default) — scenario summary lines plus headline metrics;
* ``json`` — the full metrics report per scenario (registry snapshot,
  callback-latency histogram, span trees, findings);
* ``prom`` — Prometheus text exposition (version 0.0.4) of every
  scenario registry, each sample stamped with a ``scenario`` label;
* ``github`` — OBS4xx findings as workflow annotations.

Exit status 0 when every scenario ran with no OBS4xx issue, 1 when any
issue was recorded, 2 on usage errors — the contract shared with
``repro.lint``, ``repro.sanitize`` and ``repro.modelcheck``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.lint.registry import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    add_report_arguments,
    render_registry,
)
from repro.lint.report import render_github as lint_render_github
from repro.obs.report import render_issues_text
from repro.obs.scenarios import (
    SCENARIO_NAMES,
    ObsScenarioResult,
    run_scenario,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="observability layer: run instrumented scenarios "
                    "and report metrics, spans and profiling baselines",
    )
    parser.add_argument(
        "scenarios", nargs="*", default=[],
        help=f"scenarios to run: {', '.join(SCENARIO_NAMES)}, or "
             f"'all' (default)",
    )
    parser.add_argument(
        "--scenario", action="append", default=[], metavar="NAME",
        help="scenario to run (repeatable; merged with positionals)",
    )
    add_report_arguments(parser,
                         formats=("text", "json", "prom", "github"))
    parser.add_argument("--seed", type=int, default=1998,
                        help="scenario seed")
    parser.add_argument("--bench", action="store_true",
                        help="collect the BENCH_obs baseline (scheduler "
                             "overhead + allocation latency + steady "
                             "snapshot) instead of scenario reports")
    parser.add_argument("--out", metavar="PATH",
                        help="also write the report to this file")
    parser.add_argument("--list-scenarios", action="store_true",
                        help="print the scenario registry and exit")
    return parser


def list_scenarios() -> str:
    from repro.obs import scenarios as module

    lines = []
    for line in (module.__doc__ or "").splitlines():
        stripped = line.strip()
        if stripped.startswith("* "):
            lines.append(stripped[2:])
        elif lines and stripped and not stripped.startswith("*"):
            lines[-1] += " " + stripped
    return "\n".join(lines)


def _emit(text: str, out: Optional[str]) -> None:
    print(text)
    if out:
        with open(out, "w") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")


def _render_text(results: List[ObsScenarioResult]) -> str:
    lines: List[str] = []
    for result in results:
        lines.append(result.summary)
        probe = result.context.scheduler_probe
        if probe is not None and probe.latency.count:
            lines.append(
                f"  callback latency: mean="
                f"{probe.latency.mean * 1e6:.1f}us "
                f"p99<={probe.latency.quantile(0.99) * 1e6:.1f}us "
                f"over {probe.latency.count} events"
            )
        lines.append(render_issues_text(result.issues, result.name))
    total = sum(len(result.issues) for result in results)
    if total == 0:
        lines.append(f"obs: {len(results)} scenario(s) clean")
    else:
        lines.append(f"obs: {total} issue(s) across "
                     f"{len(results)} scenario(s)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_registry())
        return EXIT_CLEAN
    if args.list_scenarios:
        print(list_scenarios())
        return EXIT_CLEAN
    if args.bench:
        from repro.obs.bench import collect_baseline

        payload = collect_baseline(seed=args.seed)
        _emit(json.dumps(payload, indent=2, sort_keys=True), args.out)
        return EXIT_CLEAN

    requested = list(args.scenarios) + list(args.scenario)
    if not requested:
        requested = ["all"]
    names: List[str] = []
    for name in requested:
        if name == "all":
            names.extend(SCENARIO_NAMES)
        else:
            names.append(name)
    results: List[ObsScenarioResult] = []
    for name in names:
        try:
            results.append(run_scenario(name, seed=args.seed))
        except ValueError as exc:
            print(f"repro.obs: {exc}", file=sys.stderr)
            return EXIT_USAGE

    if args.format == "json":
        findings = [
            issue.to_finding(f"<obs:{result.name}>").to_dict()
            for result in results for issue in result.issues
        ]
        document = {
            "count": len(findings),
            "findings": findings,
            "reports": {result.name: result.report()
                        for result in results},
        }
        _emit(json.dumps(document, indent=2, sort_keys=True), args.out)
    elif args.format == "prom":
        chunks = [
            result.context.registry.render_prometheus(
                extra_labels={"scenario": result.name}
            )
            for result in results
        ]
        _emit("".join(chunks).rstrip("\n"), args.out)
    elif args.format == "github":
        findings = [
            issue.to_finding(f"<obs:{result.name}>")
            for result in results for issue in result.issues
        ]
        output = lint_render_github(findings)
        if output:
            _emit(output, args.out)
    else:
        _emit(_render_text(results), args.out)
    return (EXIT_CLEAN if all(result.clean for result in results)
            else EXIT_FINDINGS)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
