"""Named observed scenarios for ``python -m repro.obs``.

Each scenario builds a fresh :class:`ObsContext`, runs one of the
repo's harnesses under it, and returns the context plus a one-line
summary — the profiling analogue of the sanitized scenarios.

* ``kernel`` — the determinism harness scenario (lossy jittered
  full-mesh, partition+heal, expiries) under full instrumentation;
  the same run the byte-identity contract is checked against.
* ``clash`` — the full-stack SAP-in-the-loop experiment (§4
  exponential back-off announcements, three-phase clash protocol) on
  a synthetic Mbone, profiling the whole stack end to end.
* ``steady`` — a steady-state churn harness built for profiling: a
  small full mesh where the adaptive AIPR-1 allocator runs against a
  deliberately tight address space while sessions expire and are
  replaced, so allocation latency, cache hit rates and per-allocator
  clash counters all accumulate under continuous load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.obs.context import ObsContext

#: Scenario registry order; ``all`` expands to this.
SCENARIO_NAMES = ("kernel", "clash", "steady")


@dataclass
class ObsScenarioResult:
    """One observed run: its context and a human summary line."""

    name: str
    context: ObsContext
    summary: str

    @property
    def issues(self):
        return self.context.issues

    @property
    def clean(self) -> bool:
        return self.context.clean

    def report(self) -> Dict[str, Any]:
        return self.context.report()


def _summary(context: ObsContext, extra: str = "") -> str:
    context.finish()
    probe = context.scheduler_probe
    events = int(probe.events.value) if probe is not None else 0
    spans = context.spans
    parts = [
        f"events={events}",
        f"rate={context.events_per_wall_second:,.0f}/s",
        f"spans={spans.started if spans else 0}"
        f" (depth {spans.max_depth() if spans else 0})",
        f"cache-hit={context.cache_hit_rate():.0%}",
    ]
    if extra:
        parts.append(extra)
    return f"{context.scenario}: " + " ".join(parts)


def _run_kernel(seed: int) -> ObsScenarioResult:
    from repro.lint.determinism import run_scenario as run_determinism

    context = ObsContext(scenario="kernel")
    trace = run_determinism(seed=seed, observer=context)
    summary = _summary(context, f"trace={trace.count(chr(10))} lines")
    return ObsScenarioResult("kernel", context, summary)


def _run_clash(seed: int) -> ObsScenarioResult:
    from repro.experiments.sap_in_the_loop import (
        SapLoopConfig,
        run_sap_in_the_loop,
    )
    from repro.routing.scoping import ScopeMap
    from repro.topology.mbone import MboneParams, generate_mbone

    topology = generate_mbone(MboneParams(total_nodes=60, seed=seed))
    scope_map = ScopeMap.from_topology(topology)
    context = ObsContext(scenario="clash")
    config = SapLoopConfig(
        num_directories=8, sessions_per_directory=3, space_size=64,
        loss=0.02, strategy="backoff", inter_arrival=5.0,
        settle_time=300.0, seed=seed,
    )
    result = run_sap_in_the_loop(topology, scope_map, config,
                                 observer=context)
    summary = _summary(
        context,
        f"allocations={result.allocations} "
        f"moves={result.address_changes}",
    )
    return ObsScenarioResult("clash", context, summary)


def build_steady(seed: int, context: Optional[ObsContext] = None,
                 num_sites: int = 8, space_size: int = 16,
                 sessions_per_site: int = 6, horizon: float = 600.0):
    """Construct the steady churn harness; run it with
    ``scheduler.run(until=horizon)``.

    Every created session has a finite lifetime, so over the horizon
    the directories continuously withdraw and re-allocate — the fig. 12
    steady state, but driven through the real event kernel so the
    profiling hooks see scheduler, network, cache and clash-protocol
    load at once.  A partition that heals midway makes both sides
    allocate from the same tight space while split, so the clash
    protocol's per-allocator counters accumulate too.

    ``context=None`` builds the identical harness uninstrumented —
    observers observe and never steer, so the bare and observed builds
    execute the same event sequence; the overhead benchmark times one
    against the other (and asserts the event counts agree).

    Returns ``(scheduler, directories)``.
    """
    from repro.core.address_space import MulticastAddressSpace
    from repro.core.adaptive import AdaptiveIprmaAllocator
    from repro.sap.announcer import FixedIntervalStrategy
    from repro.sap.directory import SessionDirectory
    from repro.sim.events import EventScheduler
    from repro.sim.network import NetworkModel
    from repro.sim.rng import RandomStreams

    streams = RandomStreams(seed)
    scheduler = EventScheduler()
    if context is not None:
        context.attach_scheduler(scheduler)

    def receiver_map(source: int, ttl: int):
        # Full mesh with deterministic, asymmetric per-pair delays.
        return [(node, 0.01 + 0.002 * ((source + 3 * node) % 5))
                for node in range(num_sites) if node != source]

    network = NetworkModel(scheduler, receiver_map, streams=streams,
                           loss_rate=0.01, jitter=0.01)
    if context is not None:
        context.attach_network(network)
    space = MulticastAddressSpace.abstract(space_size)

    directories: List[SessionDirectory] = []
    for node in range(num_sites):
        directory = SessionDirectory(
            node, scheduler, network,
            AdaptiveIprmaAllocator.aipr1(
                space_size, rng=streams.get(f"alloc.{node}")
            ),
            space,
            strategy_factory=lambda: FixedIntervalStrategy(20.0),
            rng=streams.get(f"dir.{node}"),
        )
        if context is not None:
            context.watch_directory(directory)
        directories.append(directory)

    workload = streams.get("obs.workload")

    def make_creation(directory: SessionDirectory, name: str,
                      lifetime: Optional[float]):
        def create() -> None:
            directory.create_session(name, ttl=127, lifetime=lifetime)
        return create

    # Sessions arrive through the first 60% of the horizon and live
    # 60-180 simulated seconds each, so the space keeps turning over.
    index = 0
    for node, directory in enumerate(directories):
        for __ in range(sessions_per_site):
            when = float(workload.uniform(0.0, horizon * 0.6))
            lifetime = float(workload.uniform(60.0, 180.0))
            scheduler.schedule_at(  # simlint: disable=discarded-handle
                when,
                make_creation(directory, f"s{index}@{node}", lifetime),
            )
            index += 1

    # Split the mesh while load is arriving, heal it mid-run (the §3
    # "network partition has been resolved recently" clash source).
    half = range(num_sites // 2)
    scheduler.schedule_at(  # simlint: disable=discarded-handle
        horizon * 0.25, lambda: network.partition(half)
    )
    scheduler.schedule_at(  # simlint: disable=discarded-handle
        horizon * 0.45, network.heal
    )
    return scheduler, directories


def _run_steady(seed: int, horizon: float = 600.0) -> ObsScenarioResult:
    """The steady churn harness under full (sampled) instrumentation."""
    context = ObsContext(scenario="steady", seed=seed)
    scheduler, directories = build_steady(seed, context,
                                          horizon=horizon)
    scheduler.run(until=horizon, max_events=2_000_000)
    context.finish()
    moves = sum(d.address_changes for d in directories)
    summary = _summary(context, f"moves={moves}")
    return ObsScenarioResult("steady", context, summary)


_RUNNERS = {
    "kernel": _run_kernel,
    "clash": _run_clash,
    "steady": _run_steady,
}


def run_scenario(name: str, seed: int = 1998) -> ObsScenarioResult:
    """Run one named scenario under full instrumentation."""
    runner = _RUNNERS.get(name)
    if runner is None:
        raise ValueError(
            f"unknown scenario {name!r}; choose from "
            f"{', '.join(SCENARIO_NAMES)} or 'all'"
        )
    return runner(seed)


def run_all_scenarios(seed: int = 1998) -> List[ObsScenarioResult]:
    """Run every registered scenario."""
    return [run_scenario(name, seed=seed) for name in SCENARIO_NAMES]
