"""repro.obs — zero-cost-when-disabled observability.

The observability layer is the measurement substrate the paper's
quantitative claims need: clash probability vs. occupancy (figs. 5-6),
announcement latency (§2.3) and responder-count bounds (eqs. 2/4) are
all *counted* quantities, and "runs as fast as the hardware allows"
requires profiling the hot paths first.

Three pieces:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  fixed-bucket histograms keyed by ``(name, labels)``, recorded in
  simulation time and exposed as JSON or Prometheus text format;
* :class:`~repro.obs.spans.SpanTracker` — nested span tracing layered
  on the existing :class:`~repro.sim.trace.Tracer` (the tracer is the
  sink for span begin/end records);
* :class:`~repro.obs.context.ObsContext` — attaches profiling probes
  to the hot paths (scheduler steps, packet delivery, announcement
  processing, ``allocate()`` calls, the clash protocol) through the
  same ``is not None`` hook pattern the sanitizer uses: when no
  context is attached every hook point costs one attribute check.
"""

from repro.obs.context import ObsContext
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import Span, SpanTracker

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsContext",
    "Span",
    "SpanTracker",
]
