"""Benchmark bridge: scheduler and allocation baselines for BENCH_obs.

Two microbenchmarks back the layer's cost contract:

* :func:`bench_scheduler` — events-per-second through (a) a scheduler
  whose ``step`` is a replica of the pre-observability body (the
  uninstrumented baseline, driven through the identical ``run`` loop),
  (b) the real scheduler with no context attached (the disabled path:
  one extra ``is not None`` check per event), and (c) the real
  scheduler with a full :class:`ObsContext` attached.  The
  disabled-vs-baseline delta is the "when-off" overhead the design
  bounds at 2%.
* :func:`bench_allocation` — wall-clock ``allocate()`` latency through
  the instrumented wrapper at a representative occupancy.

:func:`collect_baseline` bundles both with a steady-scenario metric
snapshot into the JSON written to ``benchmarks/results/BENCH_obs.json``
(see ``benchmarks/test_obs_baseline.py`` and ``repro obs --bench``).

Wall-clock numbers are machine-dependent by nature; the baseline file
records them for trend comparison on one machine, not for cross-machine
assertions.  Only the *ratios* (overhead percentages) are meaningful
targets.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, Dict

import numpy as np

from repro.core.allocator import VisibleSet
from repro.core.informed import InformedRandomAllocator
from repro.obs.context import ObsContext
from repro.sim.events import EventScheduler

Wall = Callable[[], float]


class _BaselineScheduler(EventScheduler):
    """The pre-observability ``step`` body, on the real ``run`` loop.

    Identical to :meth:`EventScheduler.step` minus the ``_obs`` hook
    check, so timing this subclass against the real scheduler (both
    driven through the inherited ``run``) isolates the cost of the one
    added check — the "when-off" overhead of the observability layer.
    """

    def step(self) -> bool:
        while self._heap:
            when, __, handle = heapq.heappop(self._heap)
            if handle.cancelled or handle.callback is None:
                continue
            self.clock.advance_to(when)
            if self._monitor is not None:  # pragma: no cover - bench
                self._monitor.on_fire(handle)
            callback, handle.callback = handle.callback, None
            callback()
            self._events_run += 1
            return True
        return False


def _prepared_scheduler(num_events: int, baseline: bool,
                        observed: bool) -> EventScheduler:
    scheduler = _BaselineScheduler() if baseline else EventScheduler()
    if observed:
        ObsContext(scenario="bench").attach_scheduler(scheduler)

    def noop() -> None:
        pass

    for index in range(num_events):
        scheduler.schedule_at(  # simlint: disable=discarded-handle
            index * 1e-3, noop
        )
    return scheduler


def _timed_drain(num_events: int, wall: Wall, baseline: bool = False,
                 observed: bool = False) -> float:
    """Seconds to drain ``num_events`` no-ops through ``run()``.

    Scheduling happens outside the timed region; only the drain loop
    is measured.
    """
    scheduler = _prepared_scheduler(num_events, baseline, observed)
    begin = wall()
    scheduler.run()
    elapsed = wall() - begin
    assert scheduler.events_run == num_events
    return max(elapsed, 1e-9)


def bench_scheduler(num_events: int = 50_000, repeats: int = 5,
                    wall: Wall = time.perf_counter) -> Dict[str, Any]:
    """Baseline vs disabled vs observed scheduler throughput.

    The three variants run interleaved, round by round, so slow drift
    (thermal, host load) penalises them equally; the min-time
    estimator then discards noise that only ever adds time.
    """
    times = {"baseline": float("inf"), "disabled": float("inf"),
             "observed": float("inf")}
    for __ in range(repeats):
        times["baseline"] = min(
            times["baseline"], _timed_drain(num_events, wall,
                                            baseline=True))
        times["disabled"] = min(
            times["disabled"], _timed_drain(num_events, wall))
        times["observed"] = min(
            times["observed"], _timed_drain(num_events, wall,
                                            observed=True))
    baseline = num_events / times["baseline"]
    disabled = num_events / times["disabled"]
    observed = num_events / times["observed"]
    return {
        "num_events": num_events,
        "repeats": repeats,
        "baseline_events_per_second": baseline,
        "disabled_events_per_second": disabled,
        "observed_events_per_second": observed,
        "disabled_overhead_pct": 100.0 * (baseline / disabled - 1.0),
        "observed_overhead_pct": 100.0 * (baseline / observed - 1.0),
    }


def bench_allocation(space_size: int = 512, occupied: int = 256,
                     trials: int = 2_000, seed: int = 1998,
                     wall: Wall = time.perf_counter) -> Dict[str, Any]:
    """Instrumented ``allocate()`` latency at 50% visible occupancy."""
    rng = np.random.default_rng(seed)
    context = ObsContext(scenario="bench", wall=wall)
    allocator = context.watch_allocator(
        InformedRandomAllocator(space_size, rng)
    )
    addresses = rng.choice(space_size, size=occupied, replace=False)
    visible = VisibleSet(addresses,
                         np.full(occupied, 127, dtype=np.int64))
    for __ in range(trials):
        allocator.allocate(127, visible)
    histogram = context.registry.get(
        "alloc_latency_seconds", {"allocator": allocator.name}
    )
    return {
        "space_size": space_size,
        "occupied": occupied,
        "trials": trials,
        "mean_seconds": histogram.mean,
        "p99_seconds": histogram.quantile(0.99),
        "allocations_per_second": (
            trials / max(histogram.sum, 1e-9)
        ),
    }


def collect_baseline(seed: int = 1998,
                     num_events: int = 50_000) -> Dict[str, Any]:
    """The full BENCH_obs payload: microbenchmarks + steady snapshot."""
    from repro.obs.scenarios import run_scenario

    steady = run_scenario("steady", seed=seed)
    report = steady.report()
    scheduler_block = report["scheduler"]
    return {
        "bench": "obs",
        "seed": seed,
        "scheduler": bench_scheduler(num_events=num_events),
        "allocation": bench_allocation(seed=seed),
        "steady": {
            "summary": steady.summary,
            "events_run": scheduler_block["events_run"],
            "events_per_wall_second": (
                scheduler_block["events_per_wall_second"]
            ),
            "heap_depth_max": scheduler_block["heap_depth_max"],
            "callback_latency_mean_seconds": (
                scheduler_block["callback_latency_seconds"]["mean"]
            ),
            "cache_hit_rate": report["cache_hit_rate"],
            "span_max_depth": report["spans"]["max_depth"],
            "issues": report["findings"]["count"],
        },
    }
