"""Benchmark bridge: scheduler and allocation baselines for BENCH_obs.

Three benchmarks back the layer's cost contract:

* :func:`bench_scheduler` — events-per-second through (a) a scheduler
  whose ``step`` is a replica of the pre-observability body (the
  uninstrumented baseline, driven through the identical ``run`` loop),
  (b) the real scheduler with no context attached (the disabled path:
  one extra ``is not None`` check per event), and (c) the real
  scheduler with a full :class:`ObsContext` attached.  The
  disabled-vs-baseline delta is the "when-off" overhead the design
  bounds at 2%.
* :func:`bench_steady_overhead` — the headline number: the *whole
  stack* (scheduler + network + directories + cache + clash protocol)
  built identically with and without a default-rate context, timed
  over the same steady-churn run.  The observed-vs-bare delta is the
  "when-on" overhead the design bounds at 5%.
* :func:`bench_allocation` — wall-clock ``allocate()`` latency through
  the instrumented wrapper at a representative occupancy.

:func:`collect_baseline` bundles them with a steady-scenario metric
snapshot into the JSON written to ``benchmarks/results/BENCH_obs.json``
(see ``benchmarks/test_obs_baseline.py`` and ``repro obs --bench``).

Wall-clock numbers are machine-dependent by nature; the baseline file
records them for trend comparison on one machine, not for cross-machine
assertions.  Only the *ratios* (overhead percentages) are meaningful
targets.
"""

from __future__ import annotations

import gc
import heapq
import time
from typing import Any, Callable, Dict

import numpy as np

from repro.core.allocator import VisibleSet
from repro.core.informed import InformedRandomAllocator
from repro.obs.context import ObsContext
from repro.sim.events import EventScheduler

Wall = Callable[[], float]


class _BaselineScheduler(EventScheduler):
    """The pre-observability ``step`` body, on the real ``run`` loop.

    Identical to :meth:`EventScheduler.step` minus the ``_obs`` hook
    check, so timing this subclass against the real scheduler (both
    driven through the inherited ``run``) isolates the cost of the one
    added check — the "when-off" overhead of the observability layer.
    """

    def step(self) -> bool:
        while self._heap:
            when, __, handle = heapq.heappop(self._heap)
            if handle.cancelled or handle.callback is None:
                continue
            self.clock.advance_to(when)
            if self._monitor is not None:  # pragma: no cover - bench
                self._monitor.on_fire(handle)
            callback, handle.callback = handle.callback, None
            callback()
            self._events_run += 1
            return True
        return False


def _prepared_scheduler(num_events: int, baseline: bool,
                        observed: bool) -> EventScheduler:
    scheduler = _BaselineScheduler() if baseline else EventScheduler()
    if observed:
        ObsContext(scenario="bench").attach_scheduler(scheduler)

    def noop() -> None:
        pass

    for index in range(num_events):
        scheduler.schedule_at(  # simlint: disable=discarded-handle
            index * 1e-3, noop
        )
    return scheduler


def _timed_drain(num_events: int, wall: Wall, baseline: bool = False,
                 observed: bool = False) -> float:
    """Seconds to drain ``num_events`` no-ops through ``run()``.

    Scheduling happens outside the timed region; only the drain loop
    is measured.
    """
    scheduler = _prepared_scheduler(num_events, baseline, observed)
    begin = wall()
    scheduler.run()
    elapsed = wall() - begin
    assert scheduler.events_run == num_events
    return max(elapsed, 1e-9)


def bench_scheduler(num_events: int = 50_000, repeats: int = 5,
                    wall: Wall = time.perf_counter) -> Dict[str, Any]:
    """Baseline vs disabled vs observed scheduler throughput.

    The three variants run interleaved, round by round, so slow drift
    (thermal, host load) penalises them equally; the min-time
    estimator then discards noise that only ever adds time.
    """
    times = {"baseline": float("inf"), "disabled": float("inf"),
             "observed": float("inf")}
    for __ in range(repeats):
        times["baseline"] = min(
            times["baseline"], _timed_drain(num_events, wall,
                                            baseline=True))
        times["disabled"] = min(
            times["disabled"], _timed_drain(num_events, wall))
        times["observed"] = min(
            times["observed"], _timed_drain(num_events, wall,
                                            observed=True))
    baseline = num_events / times["baseline"]
    disabled = num_events / times["disabled"]
    observed = num_events / times["observed"]
    return {
        "num_events": num_events,
        "repeats": repeats,
        "baseline_events_per_second": baseline,
        "disabled_events_per_second": disabled,
        "observed_events_per_second": observed,
        "disabled_overhead_pct": 100.0 * (baseline / disabled - 1.0),
        "observed_overhead_pct": 100.0 * (baseline / observed - 1.0),
    }


def bench_steady_overhead(seed: int = 1998, repeats: int = 5,
                          sessions_per_site: int = 10,
                          horizon: float = 600.0,
                          wall: Wall = time.perf_counter
                          ) -> Dict[str, Any]:
    """Whole-stack bare-vs-observed steady-state overhead.

    Each round builds the steady churn harness twice — once
    uninstrumented, once under a full default-rate
    :class:`ObsContext` (array counters, sampled spans and latency
    histograms, ring exporter, all armed) — and times the identical
    ``scheduler.run``.  Rounds interleave the two variants so host
    drift penalises them equally and the min-time estimator discards
    noise, which only ever adds time.

    Observers observe and never steer, so both variants must execute
    the same event sequence; the function raises if the event counts
    diverge rather than report a meaningless ratio.  The default
    workload (~250k events, tight space, partition+heal) runs long
    enough that the min-time ratio is stable against scheduler jitter
    on sub-second runs.
    """
    from repro.obs.scenarios import build_steady

    bare_time = float("inf")
    observed_time = float("inf")
    events_bare = events_observed = 0
    context: ObsContext = None  # type: ignore[assignment]

    def run_bare() -> None:
        nonlocal bare_time, events_bare
        scheduler, __dirs = build_steady(
            seed, sessions_per_site=sessions_per_site, horizon=horizon
        )
        gc.collect()  # level the heap even under --benchmark-disable-gc
        begin = wall()
        scheduler.run(until=horizon)
        bare_time = min(bare_time, max(wall() - begin, 1e-9))
        events_bare = scheduler.events_run

    def run_observed() -> None:
        nonlocal observed_time, events_observed, context
        context = ObsContext(scenario="steady-bench", seed=seed)
        scheduler, __dirs = build_steady(
            seed, context, sessions_per_site=sessions_per_site,
            horizon=horizon,
        )
        gc.collect()
        begin = wall()
        scheduler.run(until=horizon)
        observed_time = min(observed_time, max(wall() - begin, 1e-9))
        context.finish()
        events_observed = scheduler.events_run

    for round_index in range(repeats):
        # Alternate which variant runs first so any monotonic host
        # drift (thermal, heap growth) biases neither arm.
        if round_index % 2 == 0:
            run_bare()
            run_observed()
        else:
            run_observed()
            run_bare()
    if events_bare != events_observed:
        raise RuntimeError(
            f"observer steered the run: bare executed {events_bare} "
            f"events, observed executed {events_observed}"
        )
    spans = context.spans
    return {
        "seed": seed,
        "repeats": repeats,
        "sessions_per_site": sessions_per_site,
        "horizon": horizon,
        "events_run": events_bare,
        "sample_rate": context.sample_rate,
        "bare_events_per_second": events_bare / bare_time,
        "observed_events_per_second": events_observed / observed_time,
        "observed_overhead_pct": 100.0 * (observed_time / bare_time
                                          - 1.0),
        "spans_started": spans.started if spans is not None else 0,
        "spans_recorded": spans.recorded if spans is not None else 0,
        "exporter": context.exporter.stats(),
    }


def bench_allocation(space_size: int = 512, occupied: int = 256,
                     trials: int = 2_000, seed: int = 1998,
                     wall: Wall = time.perf_counter) -> Dict[str, Any]:
    """Instrumented ``allocate()`` latency at 50% visible occupancy."""
    rng = np.random.default_rng(seed)
    context = ObsContext(scenario="bench", wall=wall)
    allocator = context.watch_allocator(
        InformedRandomAllocator(space_size, rng)
    )
    addresses = rng.choice(space_size, size=occupied, replace=False)
    visible = VisibleSet(addresses,
                         np.full(occupied, 127, dtype=np.int64))
    for __ in range(trials):
        allocator.allocate(127, visible)
    histogram = context.registry.get(
        "alloc_latency_seconds", {"allocator": allocator.name}
    )
    return {
        "space_size": space_size,
        "occupied": occupied,
        "trials": trials,
        "mean_seconds": histogram.mean,
        "p99_seconds": histogram.quantile(0.99),
        "allocations_per_second": (
            trials / max(histogram.sum, 1e-9)
        ),
    }


def collect_baseline(seed: int = 1998,
                     num_events: int = 50_000,
                     steady_repeats: int = 5,
                     steady_sessions_per_site: int = 10
                     ) -> Dict[str, Any]:
    """The full BENCH_obs payload: benchmarks + steady snapshot.

    The headline steady-overhead measurement runs *first*, on a fresh
    heap: the scheduler microbenchmark churns hundreds of thousands
    of event handles, and allocator-arena fragmentation from that
    would bleed into the whole-stack timing.
    """
    from repro.obs.scenarios import run_scenario

    steady_overhead = bench_steady_overhead(
        seed=seed, repeats=steady_repeats,
        sessions_per_site=steady_sessions_per_site,
    )
    steady = run_scenario("steady", seed=seed)
    report = steady.report()
    scheduler_block = report["scheduler"]
    return {
        "bench": "obs",
        "seed": seed,
        "scheduler": bench_scheduler(num_events=num_events),
        "steady_overhead": steady_overhead,
        "allocation": bench_allocation(seed=seed),
        "steady": {
            "summary": steady.summary,
            "events_run": scheduler_block["events_run"],
            "events_per_wall_second": (
                scheduler_block["events_per_wall_second"]
            ),
            "heap_depth_max": scheduler_block["heap_depth_max"],
            "callback_latency_mean_seconds": (
                scheduler_block["callback_latency_seconds"]["mean"]
            ),
            "cache_hit_rate": report["cache_hit_rate"],
            "span_max_depth": report["spans"]["max_depth"],
            "spans_started": report["spans"]["started"],
            "spans_recorded": report["spans"]["recorded"],
            "sample_rate": report["sample_rate"],
            "issues": report["findings"]["count"],
        },
    }
