"""ObsContext — attach metrics, spans and profilers to a simulation.

Mirrors :class:`repro.sanitize.context.SanitizerContext`: attachment
is explicit and opt-in, and every hook point in the kernel is a single
``is not None`` attribute check when no context is attached — the
zero-cost-when-off contract.

* :meth:`attach_scheduler` installs a :class:`SchedulerProbe` as the
  scheduler's ``_obs`` hook: per-event wall-clock callback latency,
  events-per-wallclock-second throughput, heap-depth high-water mark;
* :meth:`attach_network` installs a :class:`NetworkProbe`: packet
  counters, per-send fan-out, simulated delivery latency;
* :meth:`watch_directory` hooks a directory end to end: announcement
  counters, cache hit rates, per-allocator clash/defence/retreat
  counters, allocation wall-clock latency, and wraps the protocol
  phases (``listen`` → ``defend``/``retreat``/``proxy-defend``,
  ``announce`` → ``allocate``) in nested spans;
* :meth:`watch_allocator` wraps a bare allocator (allocator-only
  experiments).

The wall clock is read **only** inside this module, never in kernel
code, and only for throughput/latency measurement — metric values
derived from it are observability output, not simulation input, so
runs stay deterministic.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    SIM_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import ObsIssue
from repro.obs.spans import SpanTracker
from repro.sim.trace import Tracer


class SchedulerProbe:
    """The scheduler's ``_obs`` hook: step timing and heap depth."""

    __slots__ = ("_wall", "events", "scheduled", "latency",
                 "heap_depth_max")

    def __init__(self, registry: MetricsRegistry,
                 wall: Callable[[], float]) -> None:
        self._wall = wall
        self.events: Counter = registry.counter(
            "sim_events_total",
            help_text="callbacks executed by EventScheduler.step",
        )
        self.scheduled: Counter = registry.counter(
            "sim_events_scheduled_total",
            help_text="events pushed onto the scheduler heap",
        )
        self.latency: Histogram = registry.histogram(
            "sim_callback_latency_seconds", LATENCY_BUCKETS,
            help_text="wall-clock latency of one scheduled callback",
            unit="seconds",
        )
        self.heap_depth_max = 0

    def on_schedule(self, when: float, depth: int) -> None:
        self.scheduled.inc()
        if depth > self.heap_depth_max:
            self.heap_depth_max = depth

    def observe_event(self, callback: Callable[[], Any],
                      depth: int) -> None:
        """Run one callback under the wall-clock latency probe."""
        if depth > self.heap_depth_max:
            self.heap_depth_max = depth
        wall = self._wall
        begin = wall()
        try:
            callback()
        finally:
            self.latency.observe(wall() - begin)
            self.events.inc()


class NetworkProbe:
    """The network model's ``_obs`` hook: traffic and sim latency."""

    __slots__ = ("_scheduler", "sent", "delivered", "fanout",
                 "delivery_latency")

    def __init__(self, registry: MetricsRegistry, scheduler) -> None:
        self._scheduler = scheduler
        self.sent: Counter = registry.counter(
            "net_packets_sent_total",
            help_text="multicast sends entering the network model",
        )
        self.delivered: Counter = registry.counter(
            "net_packets_delivered_total",
            help_text="per-receiver deliveries that reached a listener",
        )
        self.fanout: Histogram = registry.histogram(
            "net_fanout_receivers", COUNT_BUCKETS,
            help_text="deliveries scheduled per multicast send",
        )
        self.delivery_latency: Histogram = registry.histogram(
            "net_delivery_latency_seconds", SIM_SECONDS_BUCKETS,
            help_text="simulated send-to-delivery latency",
            unit="seconds",
        )

    def on_send(self, packet, scheduled: int) -> None:
        self.sent.inc()
        self.fanout.observe(scheduled)

    def on_deliver(self, receiver: int, packet) -> None:
        self.delivered.inc()
        self.delivery_latency.observe(
            self._scheduler.now - packet.sent_at
        )


class CacheProbe:
    """A session cache's ``_obs`` hook: hit/miss/delete/invalid."""

    __slots__ = ("hits", "misses", "deletes", "invalid")

    def __init__(self, registry: MetricsRegistry, node: int) -> None:
        label = {"node": node}

        def counter(result: str) -> Counter:
            return registry.counter(
                "sap_cache_observations_total",
                labels={**label, "result": result},
                help_text="SAP cache observe() outcomes "
                          "(hit=refresh of a known entry)",
            )

        self.hits = counter("hit")
        self.misses = counter("miss")
        self.deletes = counter("delete")
        self.invalid = counter("invalid")

    def on_cache_hit(self) -> None:
        self.hits.inc()

    def on_cache_miss(self) -> None:
        self.misses.inc()

    def on_cache_delete(self) -> None:
        self.deletes.inc()

    def on_cache_invalid(self) -> None:
        self.invalid.inc()

    @property
    def hit_rate(self) -> float:
        total = self.hits.value + self.misses.value
        return self.hits.value / total if total else 0.0


class ClashProbe:
    """A clash handler's ``_obs`` hook: per-phase protocol counters."""

    __slots__ = ("clashes", "defences", "retreats", "proxies",
                 "suppressed")

    def __init__(self, registry: MetricsRegistry, node: int,
                 allocator_name: str) -> None:
        labels = {"node": node, "allocator": allocator_name}

        def counter(name: str, help_text: str) -> Counter:
            return registry.counter(name, labels=labels,
                                    help_text=help_text)

        self.clashes = counter(
            "clash_clashes_total",
            "address clashes observed by the clash handler",
        )
        self.defences = counter(
            "clash_defences_total",
            "phase-1 defences of an established/tie-break session",
        )
        self.retreats = counter(
            "clash_retreats_total",
            "phase-2 retreats to a fresh address",
        )
        self.proxies = counter(
            "clash_proxy_defences_total",
            "phase-3 third-party defences actually sent",
        )
        self.suppressed = counter(
            "clash_suppressed_total",
            "phase-3 defences suppressed by an earlier response",
        )

    def on_clash(self) -> None:
        self.clashes.inc()

    def on_defence(self) -> None:
        self.defences.inc()

    def on_retreat(self) -> None:
        self.retreats.inc()

    def on_proxy_defence(self) -> None:
        self.proxies.inc()

    def on_suppressed(self) -> None:
        self.suppressed.inc()


class ObsContext:
    """Shared state for one observed run.

    Args:
        scenario: label used in reports and pseudo-paths.
        wall: wall-clock source (injectable for tests); defaults to
            :func:`time.perf_counter`.  Wall time is measurement
            output only — it never feeds back into the simulation.
        span_capacity: structured span-tree retention bound.
    """

    def __init__(self, scenario: str = "",
                 wall: Optional[Callable[[], float]] = None,
                 span_capacity: int = 10_000) -> None:
        self.scenario = scenario
        self.registry = MetricsRegistry()
        self._wall = wall if wall is not None else time.perf_counter
        self._span_capacity = span_capacity
        self.tracer: Optional[Tracer] = None
        self.spans: Optional[SpanTracker] = None
        self.scheduler_probe: Optional[SchedulerProbe] = None
        self.network_probe: Optional[NetworkProbe] = None
        self._scheduler = None
        self._networks: List[Any] = []
        self._cache_probes: List[CacheProbe] = []
        self._clash_probes: List[ClashProbe] = []
        self._wall_start: Optional[float] = None
        self._finish_issues: List[ObsIssue] = []
        self._finished = False

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach_scheduler(self, scheduler):
        """Profile a scheduler; also arms span tracing.  Returns it."""
        self._scheduler = scheduler
        self.tracer = Tracer(scheduler)
        self.spans = SpanTracker(self.tracer,
                                 max_retained=self._span_capacity)
        self.scheduler_probe = SchedulerProbe(self.registry, self._wall)
        scheduler._obs = self.scheduler_probe
        self._wall_start = self._wall()
        return scheduler

    def attach_network(self, network):
        """Count a network model's traffic; returns it."""
        if self._scheduler is None:
            self.attach_scheduler(network.scheduler)
        self.network_probe = NetworkProbe(self.registry,
                                          network.scheduler)
        network._obs = self.network_probe
        self._networks.append(network)
        return network

    def watch_directory(self, directory):
        """Instrument a session directory end to end; returns it."""
        if self._scheduler is None:
            self.attach_scheduler(directory.scheduler)
        node = directory.node
        cache_probe = CacheProbe(self.registry, node)
        directory.cache._obs = cache_probe
        self._cache_probes.append(cache_probe)
        if directory.clash_handler is not None:
            clash_probe = ClashProbe(self.registry, node,
                                     directory.allocator.name)
            directory.clash_handler._obs = clash_probe
            self._clash_probes.append(clash_probe)
        self.watch_allocator(directory.allocator, node=node)
        self._wrap_directory(directory)
        return directory

    def watch_allocator(self, allocator, node: Optional[int] = None):
        """Wrap ``allocator.allocate`` with latency + span probes."""
        if getattr(allocator, "_obs_watched", False):
            return allocator
        labels = {"allocator": allocator.name,
                  "node": "-" if node is None else node}
        allocations = self.registry.counter(
            "alloc_allocations_total", labels=labels,
            help_text="allocate() calls",
        )
        forced = self.registry.counter(
            "alloc_forced_total", labels=labels,
            help_text="allocations forced into a possibly-used address",
        )
        latency = self.registry.histogram(
            "alloc_latency_seconds", LATENCY_BUCKETS,
            labels={"allocator": allocator.name},
            help_text="wall-clock latency of one allocate() call",
            unit="seconds",
        )
        inner = allocator.allocate
        spans = self.spans
        wall = self._wall

        def allocate(ttl, visible):
            begin = wall()
            if spans is not None:
                with spans.span("allocate", node=node):
                    result = inner(ttl, visible)
            else:
                result = inner(ttl, visible)
            latency.observe(wall() - begin)
            allocations.inc()
            if result.forced:
                forced.inc()
            return result

        allocator.allocate = allocate
        allocator._obs_watched = True
        return allocator

    def _wrap_directory(self, directory) -> None:
        """Span-wrap the protocol phases and count announcements.

        Follows :func:`repro.sim.trace.trace_directory`: the packet
        handler swap re-registers the network listener in place, so
        delivery order is unchanged.  The spans nest through the
        tracker's stack — ``defend``/``retreat``/``proxy-defend`` fire
        inside ``listen``, ``allocate`` inside ``announce``.
        """
        spans = self.spans
        assert spans is not None  # attach_scheduler ran first
        node = directory.node
        rx = self.registry.counter(
            "sap_announcements_rx_total", labels={"node": node},
            help_text="SAP packets accepted by the directory",
        )
        created = self.registry.counter(
            "sap_sessions_created_total", labels={"node": node},
            help_text="sessions created at this directory",
        )

        original_on_packet = directory._on_packet

        def obs_on_packet(receiver, packet):
            rx.inc()
            with spans.span("listen", node=node):
                original_on_packet(receiver, packet)

        directory._on_packet = obs_on_packet
        directory.network.unlisten(node, original_on_packet)
        directory.network.listen(node, obs_on_packet)

        original_create = directory.create_session

        def obs_create_session(*args, **kwargs):
            created.inc()
            with spans.span("announce", node=node):
                return original_create(*args, **kwargs)

        directory.create_session = obs_create_session

        original_defend = directory.defend

        def obs_defend(own):
            with spans.span("defend", node=node):
                original_defend(own)

        directory.defend = obs_defend

        original_retreat = directory.retreat

        def obs_retreat(own):
            with spans.span("retreat", node=node):
                original_retreat(own)

        directory.retreat = obs_retreat

        original_proxy = directory.proxy_defend

        def obs_proxy_defend(entry):
            with spans.span("proxy-defend", node=node):
                original_proxy(entry)

        directory.proxy_defend = obs_proxy_defend

    # ------------------------------------------------------------------
    # Finishing and reporting
    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Snapshot end-of-run gauges and close out span checking.

        Idempotent; scenario runners call it once after
        ``scheduler.run`` returns.
        """
        if self._finished:
            return
        self._finished = True
        if self._scheduler is not None:
            self._finish_scheduler()
        if self._networks:
            lost = self.registry.counter(
                "net_packets_lost_total",
                help_text="sends dropped by the loss model",
            )
            lost.inc(sum(network.packets_lost
                         for network in self._networks))
        if self.spans is not None:
            self._finish_issues.extend(
                self.spans.check_closed(self.scenario)
            )

    def _finish_scheduler(self) -> None:
        probe = self.scheduler_probe
        assert probe is not None and self._wall_start is not None
        elapsed = max(self._wall() - self._wall_start, 1e-9)
        wall_gauge: Gauge = self.registry.gauge(
            "sim_wall_seconds",
            help_text="wall-clock seconds the observed run took",
            unit="seconds",
        )
        wall_gauge.set(elapsed)
        sim_gauge: Gauge = self.registry.gauge(
            "sim_time_seconds",
            help_text="final simulated clock value",
            unit="seconds",
        )
        sim_gauge.set(self._scheduler.now)
        rate: Gauge = self.registry.gauge(
            "sim_events_per_wall_second",
            help_text="scheduler throughput over the observed run",
        )
        rate.set(probe.events.value / elapsed)
        depth: Gauge = self.registry.gauge(
            "sim_heap_depth_max",
            help_text="high-water mark of the scheduler heap",
        )
        depth.set(probe.heap_depth_max)

    @property
    def issues(self) -> List[ObsIssue]:
        """All OBS4xx diagnostics recorded so far."""
        return list(self.registry.issues) + list(self._finish_issues)

    @property
    def clean(self) -> bool:
        return not self.issues

    @property
    def events_per_wall_second(self) -> float:
        metric = self.registry.get("sim_events_per_wall_second")
        return metric.value if metric is not None else 0.0

    def cache_hit_rate(self) -> float:
        hits = sum(p.hits.value for p in self._cache_probes)
        misses = sum(p.misses.value for p in self._cache_probes)
        total = hits + misses
        return hits / total if total else 0.0

    def report(self) -> Dict[str, Any]:
        """The full JSON-able metrics report for this run."""
        self.finish()
        probe = self.scheduler_probe
        scheduler_block: Dict[str, Any] = {}
        if probe is not None:
            scheduler_block = {
                "events_run": int(probe.events.value),
                "events_scheduled": int(probe.scheduled.value),
                "events_per_wall_second": self.events_per_wall_second,
                "heap_depth_max": probe.heap_depth_max,
                "callback_latency_seconds": {
                    "bounds": list(probe.latency.bounds),
                    "counts": list(probe.latency.counts),
                    "sum": probe.latency.sum,
                    "count": probe.latency.count,
                    "mean": probe.latency.mean,
                    "p99": probe.latency.quantile(0.99),
                },
            }
        issues = self.issues
        return {
            "scenario": self.scenario,
            "scheduler": scheduler_block,
            "cache_hit_rate": self.cache_hit_rate(),
            "metrics": self.registry.as_dict(),
            "spans": (self.spans.to_dict()
                      if self.spans is not None else {}),
            "findings": {
                "count": len(issues),
                "findings": [
                    issue.to_finding(f"<obs:{self.scenario}>").to_dict()
                    for issue in issues
                ],
            },
        }

    def __repr__(self) -> str:
        label = self.scenario or "unnamed"
        return (f"ObsContext({label!r}, metrics={len(self.registry)}, "
                f"issues={len(self.issues)})")
