"""ObsContext — attach metrics, spans and profilers to a simulation.

Mirrors :class:`repro.sanitize.context.SanitizerContext`: attachment
is explicit and opt-in, and every hook point in the kernel is a single
``is not None`` attribute check when no context is attached — the
zero-cost-when-off contract.

* :meth:`attach_scheduler` installs a :class:`SchedulerProbe` as the
  scheduler's ``_obs`` hook: per-event counters, sampled wall-clock
  callback latency, events-per-wallclock-second throughput, heap-depth
  high-water mark;
* :meth:`attach_network` installs a :class:`NetworkProbe`: packet
  counters, per-send fan-out, sampled simulated delivery latency;
* :meth:`watch_directory` hooks a directory end to end: announcement
  counters, cache hit rates, per-allocator clash/defence/retreat
  counters, allocation wall-clock latency, and wraps the protocol
  phases (``listen`` → ``defend``/``retreat``/``proxy-defend``,
  ``announce`` → ``allocate``) in sampled nested spans;
* :meth:`watch_allocator` wraps a bare allocator (allocator-only
  experiments).

**The always-on cost contract.**  Per-event work on the hot paths is
one shared-slot array increment (``slots[handle] += 1.0`` against the
registry's handle table, resolved once at attach time — no dict
lookup, no method call) plus one countdown decrement.  Everything
expensive — wall-clock reads, histogram observes, span
materialisation — runs only on the deterministic 1-in-N sampled path
(:mod:`repro.obs.sampling`), so attaching full telemetry costs <5% at
steady state instead of the 74% the per-event probes used to.  Pass
``sample_rate=1`` to sample everything (unit tests that assert exact
observation counts do).

The wall clock is read **only** inside this module, never in kernel
code, and only for throughput/latency measurement — metric values
derived from it are observability output, not simulation input, so
runs stay deterministic.  The sampler draws from seed-derived streams
(``obs/sampler*``) that are independent of every simulation stream,
so sampling cannot steer the run either.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

from repro.lint.registry import OBS_ADVISORY_CODES
from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    SIM_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import ObsIssue
from repro.obs.ring import DEFAULT_EXPORT_CAPACITY, RingExporter
from repro.obs.sampling import DEFAULT_SAMPLE_RATE, DeterministicSampler
from repro.obs.spans import SpanTracker
from repro.sim.trace import Tracer


class SchedulerProbe:
    """The scheduler's ``_obs`` hook: step counters and heap depth.

    The scheduler pays *only* the ``countdown`` decrement per step and
    nothing at all per schedule: the events counter advances in whole
    sampling gaps inside :meth:`observe_event` (the gap is exactly how
    many events ran since the last sample) with the partial tail
    folded in by :meth:`sync`, the scheduled total syncs from the
    scheduler's native ``events_scheduled`` count at finish, and the
    heap-depth high-water mark is sampled on the same 1-in-N path as
    callback timing.  Every counter is exact at every read that
    matters (``finish`` runs :meth:`sync` first) without a single
    per-event array add on the hot path.
    """

    __slots__ = ("_wall", "_sampler", "_scheduler", "_base_scheduled",
                 "_gap", "slots", "h_events", "h_scheduled",
                 "countdown", "events", "scheduled", "latency",
                 "heap_depth_max")

    def __init__(self, registry: MetricsRegistry, scheduler,
                 wall: Callable[[], float],
                 sampler: DeterministicSampler) -> None:
        self._wall = wall
        self._sampler = sampler
        self._scheduler = scheduler
        self._base_scheduled = scheduler.events_scheduled
        self.events: Counter = registry.counter(
            "sim_events_total",
            help_text="callbacks executed by EventScheduler.step",
        )
        self.scheduled: Counter = registry.counter(
            "sim_events_scheduled_total",
            help_text="events pushed onto the scheduler heap",
        )
        self.latency: Histogram = registry.histogram(
            "sim_callback_latency_seconds", LATENCY_BUCKETS,
            help_text="wall-clock latency of one scheduled callback "
                      "(sampled 1-in-N)",
            unit="seconds",
        )
        # The hot-path contract: the scheduler indexes this table
        # directly with these handles.
        self.slots = registry.slots
        self.h_events = self.events.handle
        self.h_scheduled = self.scheduled.handle
        self._gap = sampler.next_gap()
        self.countdown = self._gap
        self.heap_depth_max = 0

    def observe_event(self, callback: Callable[[], Any],
                      heap_depth: int) -> None:
        """Run one *sampled* callback under the latency probe.

        Reaching here means the countdown expired: exactly ``_gap``
        events (this one included) ran since the last sample, so the
        events counter advances by the whole gap at once.
        ``heap_depth`` is the queue depth with the popped event
        counted back in; the high-water mark is therefore sampled, a
        deliberate trade for a hook-free schedule path.
        """
        self.slots[self.h_events] += self._gap
        if heap_depth > self.heap_depth_max:
            self.heap_depth_max = heap_depth
        gap = self._sampler.next_gap()
        self._gap = gap
        self.countdown = gap
        wall = self._wall
        begin = wall()
        try:
            callback()
        finally:
            self.latency.observe(wall() - begin)

    def sync(self) -> None:
        """Reconcile the gap-accounted and natively-counted totals.

        Folds the partial tail gap into the events counter and copies
        the scheduler's exact native schedule count (relative to the
        attach-time baseline) into the scheduled slot.  Called once
        from ``ObsContext.finish`` but safe to call repeatedly; after
        it both counters are exact.
        """
        consumed = self._gap - self.countdown
        if consumed:
            self.slots[self.h_events] += consumed
            self._gap = self.countdown
        self.slots[self.h_scheduled] = float(
            self._scheduler.events_scheduled - self._base_scheduled
        )


class NetworkProbe:
    """The network model's ``_obs`` hook: traffic and sim latency.

    Deliveries are the hot side (one per receiver per send): the
    network inlines only the sampling countdown and calls
    :meth:`sample_delivery` 1-in-N.  The sent/delivered totals are
    *not* counted per event at all — ``NetworkModel`` already counts
    both natively, so :meth:`sync` copies the exact totals into the
    counter slots at finish.  Sends are one-per-multicast and keep
    the exact-fanout method call.
    """

    __slots__ = ("_scheduler", "_sampler", "slots", "h_sent",
                 "h_delivered", "countdown", "sent", "delivered",
                 "fanout", "delivery_latency")

    def __init__(self, registry: MetricsRegistry, scheduler,
                 sampler: DeterministicSampler) -> None:
        self._scheduler = scheduler
        self._sampler = sampler
        self.sent: Counter = registry.counter(
            "net_packets_sent_total",
            help_text="multicast sends entering the network model",
        )
        self.delivered: Counter = registry.counter(
            "net_packets_delivered_total",
            help_text="per-receiver deliveries that reached a listener",
        )
        self.fanout: Histogram = registry.histogram(
            "net_fanout_receivers", COUNT_BUCKETS,
            help_text="deliveries scheduled per multicast send",
        )
        self.delivery_latency: Histogram = registry.histogram(
            "net_delivery_latency_seconds", SIM_SECONDS_BUCKETS,
            help_text="simulated send-to-delivery latency "
                      "(sampled 1-in-N)",
            unit="seconds",
        )
        self.slots = registry.slots
        self.h_sent = self.sent.handle
        self.h_delivered = self.delivered.handle
        self.countdown = sampler.next_gap()

    def on_send(self, packet, scheduled: int) -> None:
        self.fanout.observe(scheduled)

    def sample_delivery(self, packet) -> None:
        """Record simulated latency for one *sampled* delivery."""
        self.countdown = self._sampler.next_gap()
        self.delivery_latency.observe(
            self._scheduler.now - packet.sent_at
        )

    def sync(self, packets_sent: int, packets_delivered: int) -> None:
        """Copy the network's exact native totals into the slots."""
        self.slots[self.h_sent] = float(packets_sent)
        self.slots[self.h_delivered] = float(packets_delivered)


class CacheProbe:
    """A session cache's ``_obs`` hook: hit/miss/delete/invalid.

    The cache inlines all four outcomes as slot increments against
    ``slots`` / ``h_hit`` / ``h_miss`` / ``h_delete`` / ``h_invalid``;
    this object only owns the handles and the read-side counters.
    """

    __slots__ = ("slots", "h_hit", "h_miss", "h_delete", "h_invalid",
                 "hits", "misses", "deletes", "invalid")

    def __init__(self, registry: MetricsRegistry, node: int) -> None:
        label = {"node": node}

        def counter(result: str) -> Counter:
            return registry.counter(
                "sap_cache_observations_total",
                labels={**label, "result": result},
                help_text="SAP cache observe() outcomes "
                          "(hit=refresh of a known entry)",
            )

        self.hits = counter("hit")
        self.misses = counter("miss")
        self.deletes = counter("delete")
        self.invalid = counter("invalid")
        self.slots = registry.slots
        self.h_hit = self.hits.handle
        self.h_miss = self.misses.handle
        self.h_delete = self.deletes.handle
        self.h_invalid = self.invalid.handle

    @property
    def hit_rate(self) -> float:
        total = self.hits.value + self.misses.value
        return self.hits.value / total if total else 0.0


class ClashProbe:
    """A clash handler's ``_obs`` hook: per-phase protocol counters.

    In the saturated steady regime a tight address space makes clash
    checks fire per received announcement — as hot as the cache path —
    so the handler inlines all five outcomes as slot increments
    against ``slots`` / ``h_clash`` / ``h_defence`` / ``h_retreat`` /
    ``h_proxy`` / ``h_suppressed``.
    """

    __slots__ = ("slots", "h_clash", "h_defence", "h_retreat",
                 "h_proxy", "h_suppressed", "clashes", "defences",
                 "retreats", "proxies", "suppressed")

    def __init__(self, registry: MetricsRegistry, node: int,
                 allocator_name: str) -> None:
        labels = {"node": node, "allocator": allocator_name}

        def counter(name: str, help_text: str) -> Counter:
            return registry.counter(name, labels=labels,
                                    help_text=help_text)

        self.clashes = counter(
            "clash_clashes_total",
            "address clashes observed by the clash handler",
        )
        self.defences = counter(
            "clash_defences_total",
            "phase-1 defences of an established/tie-break session",
        )
        self.retreats = counter(
            "clash_retreats_total",
            "phase-2 retreats to a fresh address",
        )
        self.proxies = counter(
            "clash_proxy_defences_total",
            "phase-3 third-party defences actually sent",
        )
        self.suppressed = counter(
            "clash_suppressed_total",
            "phase-3 defences suppressed by an earlier response",
        )
        self.slots = registry.slots
        self.h_clash = self.clashes.handle
        self.h_defence = self.defences.handle
        self.h_retreat = self.retreats.handle
        self.h_proxy = self.proxies.handle
        self.h_suppressed = self.suppressed.handle


class ObsContext:
    """Shared state for one observed run.

    Args:
        scenario: label used in reports and pseudo-paths.
        wall: wall-clock source (injectable for tests); defaults to
            :func:`time.perf_counter`.  Wall time is measurement
            output only — it never feeds back into the simulation.
        span_capacity: structured span-tree retention bound.
        sample_rate: mean events per materialised observation on the
            hot paths (spans, latency histograms).  ``1`` samples
            everything; the default keeps full telemetry inside the
            <5% steady-state overhead budget.
        seed: seeds the deterministic samplers.  Pass the scenario
            seed so two runs of one experiment sample the identical
            event subset.
        export_capacity: ring-buffer exporter capacity; overflowing
            it drops oldest-first with accounting (OBS403 advisory).
    """

    def __init__(self, scenario: str = "",
                 wall: Optional[Callable[[], float]] = None,
                 span_capacity: int = 10_000,
                 sample_rate: int = DEFAULT_SAMPLE_RATE,
                 seed: int = 0,
                 export_capacity: int = DEFAULT_EXPORT_CAPACITY) -> None:
        self.scenario = scenario
        self.registry = MetricsRegistry()
        self.sample_rate = int(sample_rate)
        self.seed = int(seed)
        self.exporter = RingExporter(export_capacity)
        self._wall = wall if wall is not None else time.perf_counter
        self._span_capacity = span_capacity
        self.tracer: Optional[Tracer] = None
        self.spans: Optional[SpanTracker] = None
        self.scheduler_probe: Optional[SchedulerProbe] = None
        self.network_probe: Optional[NetworkProbe] = None
        self._scheduler = None
        self._networks: List[Any] = []
        self._cache_probes: List[CacheProbe] = []
        self._clash_probes: List[ClashProbe] = []
        self._wall_start: Optional[float] = None
        self._finish_issues: List[ObsIssue] = []
        self._finished = False

    def _sampler(self, concern: str) -> DeterministicSampler:
        """One independent gap stream per instrumentation concern."""
        return DeterministicSampler(self.sample_rate, seed=self.seed,
                                    stream=f"obs/sampler/{concern}")

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach_scheduler(self, scheduler):
        """Profile a scheduler; also arms span tracing.  Returns it."""
        self._scheduler = scheduler
        self.tracer = Tracer(scheduler)
        self.spans = SpanTracker(self.tracer,
                                 max_retained=self._span_capacity,
                                 sampler=self._sampler("spans"),
                                 exporter=self.exporter)
        self.scheduler_probe = SchedulerProbe(
            self.registry, scheduler, self._wall,
            self._sampler("scheduler")
        )
        scheduler._obs = self.scheduler_probe
        self._wall_start = self._wall()
        return scheduler

    def attach_network(self, network):
        """Count a network model's traffic; returns it."""
        if self._scheduler is None:
            self.attach_scheduler(network.scheduler)
        self.network_probe = NetworkProbe(
            self.registry, network.scheduler, self._sampler("network")
        )
        network._obs = self.network_probe
        self._networks.append(network)
        return network

    def watch_directory(self, directory):
        """Instrument a session directory end to end; returns it."""
        if self._scheduler is None:
            self.attach_scheduler(directory.scheduler)
        node = directory.node
        cache_probe = CacheProbe(self.registry, node)
        directory.cache._obs = cache_probe
        self._cache_probes.append(cache_probe)
        if directory.clash_handler is not None:
            clash_probe = ClashProbe(self.registry, node,
                                     directory.allocator.name)
            directory.clash_handler._obs = clash_probe
            self._clash_probes.append(clash_probe)
        self.watch_allocator(directory.allocator, node=node)
        self._wrap_directory(directory)
        return directory

    def watch_allocator(self, allocator, node: Optional[int] = None):
        """Wrap ``allocator.allocate`` with latency + span probes.

        In directory mode (spans armed) the span/latency work rides
        the span sampling: an allocate inside a recorded parent span
        records as its child; a standalone allocate is a root subject
        to the countdown.  In allocator-only mode (no scheduler, no
        spans) every call is timed — that mode exists for latency
        microbenchmarks, where sampling would only lose data.
        """
        if getattr(allocator, "_obs_watched", False):
            return allocator
        labels = {"allocator": allocator.name,
                  "node": "-" if node is None else node}
        allocations = self.registry.counter(
            "alloc_allocations_total", labels=labels,
            help_text="allocate() calls",
        )
        forced = self.registry.counter(
            "alloc_forced_total", labels=labels,
            help_text="allocations forced into a possibly-used address",
        )
        latency = self.registry.histogram(
            "alloc_latency_seconds", LATENCY_BUCKETS,
            labels={"allocator": allocator.name},
            help_text="wall-clock latency of one allocate() call "
                      "(sampled 1-in-N in directory mode)",
            unit="seconds",
        )
        inner = allocator.allocate
        spans = self.spans
        wall = self._wall
        slots = self.registry.slots
        h_alloc = allocations.handle
        h_forced = forced.handle

        def allocate(ttl, visible):
            slots[h_alloc] += 1.0
            if spans is None:
                begin = wall()
                result = inner(ttl, visible)
                latency.observe(wall() - begin)
            elif spans.in_recorded_span:
                begin = wall()
                with spans.span("allocate", node=node):
                    result = inner(ttl, visible)
                latency.observe(wall() - begin)
            else:
                spans.countdown -= 1
                if spans.countdown <= 0:
                    spans.countdown = spans.next_gap()
                    begin = wall()
                    with spans.span("allocate", node=node):
                        result = inner(ttl, visible)
                    latency.observe(wall() - begin)
                else:
                    spans.started += 1
                    result = inner(ttl, visible)
            if result.forced:
                slots[h_forced] += 1.0
            return result

        allocator.allocate = allocate
        allocator._obs_watched = True
        return allocator

    def _wrap_directory(self, directory) -> None:
        """Span-wrap the protocol phases and count announcements.

        Follows :func:`repro.sim.trace.trace_directory`: the packet
        handler swap re-registers the network listener in place, so
        delivery order is unchanged.  ``listen`` and ``announce`` are
        the *root* sites: they own the span-sampling countdown, and
        on the skip path do only a slot increment and a ``started``
        bump.  ``defend``/``retreat``/``proxy-defend`` (and
        ``allocate`` via the wrapper) are *child* sites: they record
        exactly when a recorded parent is open, so every sampled root
        keeps its full subtree and nesting invariants survive any
        sampling rate.
        """
        spans = self.spans
        assert spans is not None  # attach_scheduler ran first
        node = directory.node
        slots = self.registry.slots
        h_rx = self.registry.counter_handle(
            "sap_announcements_rx_total", labels={"node": node},
            help_text="SAP packets accepted by the directory",
        )
        h_created = self.registry.counter_handle(
            "sap_sessions_created_total", labels={"node": node},
            help_text="sessions created at this directory",
        )

        original_on_packet = directory._on_packet

        def obs_on_packet(receiver, packet):
            slots[h_rx] += 1.0
            spans.countdown -= 1
            if spans.countdown <= 0:
                spans.countdown = spans.next_gap()
                with spans.span("listen", node=node):
                    original_on_packet(receiver, packet)
            else:
                spans.started += 1
                original_on_packet(receiver, packet)

        directory._on_packet = obs_on_packet
        directory.network.unlisten(node, original_on_packet)
        directory.network.listen(node, obs_on_packet)

        original_create = directory.create_session

        def obs_create_session(*args, **kwargs):
            slots[h_created] += 1.0
            spans.countdown -= 1
            if spans.countdown <= 0:
                spans.countdown = spans.next_gap()
                with spans.span("announce", node=node):
                    return original_create(*args, **kwargs)
            spans.started += 1
            return original_create(*args, **kwargs)

        directory.create_session = obs_create_session

        original_defend = directory.defend

        def obs_defend(own):
            if spans.in_recorded_span:
                with spans.span("defend", node=node):
                    original_defend(own)
            else:
                spans.started += 1
                original_defend(own)

        directory.defend = obs_defend

        original_retreat = directory.retreat

        def obs_retreat(own):
            if spans.in_recorded_span:
                with spans.span("retreat", node=node):
                    original_retreat(own)
            else:
                spans.started += 1
                original_retreat(own)

        directory.retreat = obs_retreat

        original_proxy = directory.proxy_defend

        def obs_proxy_defend(entry):
            if spans.in_recorded_span:
                with spans.span("proxy-defend", node=node):
                    original_proxy(entry)
            else:
                spans.started += 1
                original_proxy(entry)

        directory.proxy_defend = obs_proxy_defend

    # ------------------------------------------------------------------
    # Finishing and reporting
    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Snapshot end-of-run gauges and close out span checking.

        Idempotent; scenario runners call it once after
        ``scheduler.run`` returns.  Also pushes the final registry
        snapshot into the exporter ring and accounts for any records
        the ring had to drop (OBS403 advisory).
        """
        if self._finished:
            return
        self._finished = True
        if self._scheduler is not None:
            self._finish_scheduler()
        if self._networks:
            if self.network_probe is not None:
                self.network_probe.sync(
                    sum(n.packets_sent for n in self._networks),
                    sum(n.packets_delivered for n in self._networks),
                )
            lost = self.registry.counter(
                "net_packets_lost_total",
                help_text="sends dropped by the loss model",
            )
            lost.inc(sum(network.packets_lost
                         for network in self._networks))
        if self.spans is not None:
            self._finish_issues.extend(
                self.spans.check_closed(self.scenario)
            )
        self.exporter.push_snapshot(self.registry,
                                    label=self.scenario or "final")
        if self.exporter.dropped > 0:
            stats = self.exporter.stats()
            self._finish_issues.append(ObsIssue(
                code="OBS403", rule="exporter-ring-saturated",
                message=(
                    f"ring exporter dropped {stats['dropped']} of "
                    f"{stats['pushed']} record(s) at capacity "
                    f"{stats['capacity']}; drain mid-run or raise "
                    f"export_capacity"
                ),
            ))

    def _finish_scheduler(self) -> None:
        probe = self.scheduler_probe
        assert probe is not None and self._wall_start is not None
        probe.sync()
        elapsed = max(self._wall() - self._wall_start, 1e-9)
        wall_gauge: Gauge = self.registry.gauge(
            "sim_wall_seconds",
            help_text="wall-clock seconds the observed run took",
            unit="seconds",
        )
        wall_gauge.set(elapsed)
        sim_gauge: Gauge = self.registry.gauge(
            "sim_time_seconds",
            help_text="final simulated clock value",
            unit="seconds",
        )
        sim_gauge.set(self._scheduler.now)
        rate: Gauge = self.registry.gauge(
            "sim_events_per_wall_second",
            help_text="scheduler throughput over the observed run",
        )
        rate.set(probe.events.value / elapsed)
        depth: Gauge = self.registry.gauge(
            "sim_heap_depth_max",
            help_text="high-water mark of the scheduler heap",
        )
        depth.set(probe.heap_depth_max)

    @property
    def issues(self) -> List[ObsIssue]:
        """All OBS4xx diagnostics recorded so far."""
        return list(self.registry.issues) + list(self._finish_issues)

    @property
    def clean(self) -> bool:
        """No *hard* issues.  Advisory codes (OBS403/OBS404) describe
        degraded telemetry, not a broken run, so they never flip this.
        """
        return not [issue for issue in self.issues
                    if issue.code not in OBS_ADVISORY_CODES]

    @property
    def advisories(self) -> List[ObsIssue]:
        return [issue for issue in self.issues
                if issue.code in OBS_ADVISORY_CODES]

    @property
    def events_per_wall_second(self) -> float:
        metric = self.registry.get("sim_events_per_wall_second")
        return metric.value if metric is not None else 0.0

    def cache_hit_rate(self) -> float:
        hits = sum(p.hits.value for p in self._cache_probes)
        misses = sum(p.misses.value for p in self._cache_probes)
        total = hits + misses
        return hits / total if total else 0.0

    def report(self) -> Dict[str, Any]:
        """The full JSON-able metrics report for this run."""
        self.finish()
        probe = self.scheduler_probe
        scheduler_block: Dict[str, Any] = {}
        if probe is not None:
            scheduler_block = {
                "events_run": int(probe.events.value),
                "events_scheduled": int(probe.scheduled.value),
                "events_per_wall_second": self.events_per_wall_second,
                "heap_depth_max": probe.heap_depth_max,
                "callback_latency_seconds": {
                    "bounds": list(probe.latency.bounds),
                    "counts": list(probe.latency.counts),
                    "sum": probe.latency.sum,
                    "count": probe.latency.count,
                    "mean": probe.latency.mean,
                    "p99": probe.latency.quantile(0.99),
                },
            }
        issues = self.issues
        return {
            "scenario": self.scenario,
            "sample_rate": self.sample_rate,
            "scheduler": scheduler_block,
            "cache_hit_rate": self.cache_hit_rate(),
            "metrics": self.registry.as_dict(),
            "spans": (self.spans.to_dict()
                      if self.spans is not None else {}),
            "exporter": self.exporter.stats(),
            "findings": {
                "count": len(issues),
                "findings": [
                    issue.to_finding(f"<obs:{self.scenario}>").to_dict()
                    for issue in issues
                ],
            },
        }

    def __repr__(self) -> str:
        label = self.scenario or "unnamed"
        return (f"ObsContext({label!r}, metrics={len(self.registry)}, "
                f"issues={len(self.issues)})")
