"""Metric primitives and the registry that owns them.

A metric *family* is one name with one type, help string, unit and
label-key set; a metric *child* is one (family, label-values) pair.
Families keep Prometheus exposition well formed — emitting one name
with two types is a scrape error — so re-registering a name with a
conflicting type or label-key set records an **OBS401** issue instead
of silently forking the family (the first registration wins).

Everything here is allocation-light on the record path: ``Counter.inc``
is one float add, ``Histogram.observe`` one bisect plus two adds.  The
registry is only consulted at *registration* time; probes hold direct
references to the child metrics they update.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.obs.report import ObsIssue

LabelValue = Union[str, int]
Labels = Mapping[str, LabelValue]
#: Canonical child key: label items sorted by key.
LabelKey = Tuple[Tuple[str, str], ...]

#: Wall-clock callback-latency buckets (seconds): sub-microsecond
#: through 100 ms, roughly log-spaced, 1-2.5-5 per decade.
LATENCY_BUCKETS = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1,
)

#: Simulated-time latency buckets (seconds): packet propagation and
#: protocol timers live between 1 ms and a few minutes.
SIM_SECONDS_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: Small-integer count buckets (e.g. multicast fan-out per send).
COUNT_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                 256.0)


def canonical_labels(labels: Optional[Labels]) -> LabelKey:
    """Sorted, stringified label items — the child identity."""
    if not labels:
        return ()
    return tuple(sorted(
        (str(key), str(value)) for key, value in labels.items()
    ))


def _format_value(value: float) -> Union[int, float]:
    """Integers stay integers in reports; floats stay floats."""
    if float(value).is_integer():
        return int(value)
    return value


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc {amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (heap depth, rates)."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the running maximum (high-water marks)."""
        if value > self._value:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed upper-bound buckets plus sum and count.

    Bucket semantics match Prometheus: ``counts[i]`` holds
    observations with ``value <= bounds[i]``; the implicit final
    bucket is ``+Inf``.  Counts are stored non-cumulative and summed
    at exposition time.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")

    def __init__(self, name: str, bounds: Iterable[float],
                 labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(bound) for bound in bounds)
        if not self.bounds:
            raise ValueError(f"histogram {name} needs >= 1 bucket bound")
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(
                f"histogram {name} bounds must be strictly increasing"
            )
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[int]:
        """Per-bucket cumulative counts, ending with the total."""
        out: List[int] = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile (the bucket's upper bound).

        Coarse by design — useful for "p99 callback latency" in
        reports, not for precise statistics.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for index, count in enumerate(self.counts):
            running += count
            if running >= target:
                if index < len(self.bounds):
                    return self.bounds[index]
                return float("inf")
        return float("inf")


Metric = Union[Counter, Gauge, Histogram]

_KINDS = {"counter", "gauge", "histogram"}


class _Family:
    """One metric name: its type, metadata and children."""

    __slots__ = ("name", "kind", "help", "unit", "label_keys",
                 "children")

    def __init__(self, name: str, kind: str, help_text: str, unit: str,
                 label_keys: Tuple[str, ...]) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.unit = unit
        self.label_keys = label_keys
        self.children: Dict[LabelKey, Metric] = {}


class MetricsRegistry:
    """All metric families of one observed run.

    Registration (``counter()`` / ``gauge()`` / ``histogram()``) is
    idempotent per ``(name, labels)`` and returns the live metric
    object, so hot-path probes register once and then update direct
    references.  Conflicting re-registrations record OBS401 issues on
    :attr:`issues` and return a detached metric that keeps the caller
    working without corrupting the family.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self.issues: List[ObsIssue] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def counter(self, name: str, labels: Optional[Labels] = None,
                help_text: str = "", unit: str = "") -> Counter:
        return self._register("counter", name, labels, help_text, unit)

    def gauge(self, name: str, labels: Optional[Labels] = None,
              help_text: str = "", unit: str = "") -> Gauge:
        return self._register("gauge", name, labels, help_text, unit)

    def histogram(self, name: str,
                  bounds: Iterable[float] = LATENCY_BUCKETS,
                  labels: Optional[Labels] = None,
                  help_text: str = "", unit: str = "") -> Histogram:
        return self._register("histogram", name, labels, help_text,
                              unit, bounds=tuple(bounds))

    def _register(self, kind: str, name: str, labels: Optional[Labels],
                  help_text: str, unit: str,
                  bounds: Optional[Tuple[float, ...]] = None) -> Metric:
        assert kind in _KINDS
        child_key = canonical_labels(labels)
        label_keys = tuple(key for key, __ in child_key)
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text, unit, label_keys)
            self._families[name] = family
        else:
            conflict = None
            if family.kind != kind:
                conflict = (f"registered as {family.kind}, "
                            f"re-registered as {kind}")
            elif family.label_keys != label_keys:
                conflict = (f"label keys {list(family.label_keys)} vs "
                            f"{list(label_keys)}")
            if conflict is not None:
                self.issues.append(ObsIssue(
                    code="OBS401", rule="metric-name-collision",
                    message=f"metric {name!r}: {conflict}",
                ))
                return self._detached(kind, name, child_key, bounds)
        metric = family.children.get(child_key)
        if metric is None:
            metric = self._detached(kind, name, child_key, bounds)
            family.children[child_key] = metric
        return metric

    @staticmethod
    def _detached(kind: str, name: str, child_key: LabelKey,
                  bounds: Optional[Tuple[float, ...]]) -> Metric:
        if kind == "counter":
            return Counter(name, child_key)
        if kind == "gauge":
            return Gauge(name, child_key)
        return Histogram(name, bounds or LATENCY_BUCKETS, child_key)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str,
            labels: Optional[Labels] = None) -> Optional[Metric]:
        family = self._families.get(name)
        if family is None:
            return None
        return family.children.get(canonical_labels(labels))

    def family_names(self) -> List[str]:
        return sorted(self._families)

    def __len__(self) -> int:
        return sum(len(family.children)
                   for family in self._families.values())

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, dict]:
        """JSON-able snapshot: family name -> metadata + samples."""
        out: Dict[str, dict] = {}
        for name in self.family_names():
            family = self._families[name]
            samples = []
            for child_key in sorted(family.children):
                metric = family.children[child_key]
                sample: Dict[str, object] = {
                    "labels": dict(child_key),
                }
                if isinstance(metric, Histogram):
                    sample["bounds"] = list(metric.bounds)
                    sample["counts"] = list(metric.counts)
                    sample["sum"] = metric.sum
                    sample["count"] = metric.count
                    sample["mean"] = metric.mean
                else:
                    sample["value"] = _format_value(metric.value)
                samples.append(sample)
            out[name] = {
                "type": family.kind,
                "help": family.help,
                "unit": family.unit,
                "samples": samples,
            }
        return out

    def render_prometheus(
        self, extra_labels: Optional[Labels] = None
    ) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Args:
            extra_labels: labels stamped onto every sample (e.g.
                ``{"scenario": "steady"}`` when several scenario
                registries share one scrape).
        """
        extra = canonical_labels(extra_labels)
        lines: List[str] = []
        for name in self.family_names():
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for child_key in sorted(family.children):
                metric = family.children[child_key]
                base = extra + child_key
                if isinstance(metric, Histogram):
                    cumulative = metric.cumulative()
                    for bound, count in zip(metric.bounds, cumulative):
                        bucket = base + (("le", _le_repr(bound)),)
                        lines.append(
                            f"{name}_bucket{_label_str(bucket)} {count}"
                        )
                    inf = base + (("le", "+Inf"),)
                    lines.append(
                        f"{name}_bucket{_label_str(inf)} {metric.count}"
                    )
                    lines.append(
                        f"{name}_sum{_label_str(base)} {metric.sum!r}"
                    )
                    lines.append(
                        f"{name}_count{_label_str(base)} {metric.count}"
                    )
                else:
                    value = _format_value(metric.value)
                    lines.append(f"{name}{_label_str(base)} {value}")
        return "\n".join(lines) + ("\n" if lines else "")


def _le_repr(bound: float) -> str:
    """``le`` label value: integral bounds without a trailing .0."""
    if bound.is_integer():
        return str(int(bound))
    return repr(bound)


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _label_str(items: LabelKey) -> str:
    if not items:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in items
    )
    return "{" + inner + "}"
