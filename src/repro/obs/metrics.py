"""Metric primitives and the registry that owns them.

A metric *family* is one name with one type, help string, unit and
label-key set; a metric *child* is one (family, label-values) pair.
Families keep Prometheus exposition well formed — emitting one name
with two types is a scrape error — so re-registering a name with a
conflicting type or label-key set records an **OBS401** issue instead
of silently forking the family (the first registration wins).

Counters and gauges are *slot-backed*: every child owns one float slot
in its registry's shared handle table (:attr:`MetricsRegistry.slots`),
and its integer :attr:`~Counter.handle` indexes that slot.  Hot-path
probes resolve ``(slots, handle)`` pairs once at attach time and then
record with a single list increment — no dict lookup, no method call,
no ``(name, labels)`` tuple hashing per event.  The metric objects
remain the read/exposition surface (``value`` reads the slot), so
reports and Prometheus rendering are unchanged.

The handle table has a configured capacity; registration past it keeps
working (the table grows) but records an **OBS404** advisory, because
attach-time registration leaking into a hot loop is exactly the bug
the handle design exists to prevent.

``Histogram.observe`` stays one :func:`bisect.bisect_left` over the
fixed bucket bounds plus two adds — O(log buckets), never a linear
scan (pinned by ``tests/test_obs_metrics.py``).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.obs.report import ObsIssue

LabelValue = Union[str, int]
Labels = Mapping[str, LabelValue]
#: Canonical child key: label items sorted by key.
LabelKey = Tuple[Tuple[str, str], ...]

#: Default handle-table capacity.  Attach-time registration of every
#: probe in the repo uses well under a hundred slots; crossing this
#: bound means something registers metrics per event.
DEFAULT_HANDLE_CAPACITY = 4096

#: Wall-clock callback-latency buckets (seconds): sub-microsecond
#: through 100 ms, roughly log-spaced, 1-2.5-5 per decade.
LATENCY_BUCKETS = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1,
)

#: Simulated-time latency buckets (seconds): packet propagation and
#: protocol timers live between 1 ms and a few minutes.
SIM_SECONDS_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: Small-integer count buckets (e.g. multicast fan-out per send).
COUNT_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                 256.0)


def canonical_labels(labels: Optional[Labels]) -> LabelKey:
    """Sorted, stringified label items — the child identity."""
    if not labels:
        return ()
    return tuple(sorted(
        (str(key), str(value)) for key, value in labels.items()
    ))


def _format_value(value: float) -> Union[int, float]:
    """Integers stay integers in reports; floats stay floats."""
    if float(value).is_integer():
        return int(value)
    return value


class Counter:
    """A monotonically increasing total, backed by one table slot.

    ``slots[handle]`` is deliberately shared with the owning registry's
    handle table so probes can increment it without going through this
    object; a bare ``Counter(name)`` owns a private one-slot table.
    """

    __slots__ = ("name", "labels", "slots", "handle")

    def __init__(self, name: str, labels: LabelKey = (),
                 slots: Optional[List[float]] = None,
                 handle: int = 0) -> None:
        self.name = name
        self.labels = labels
        if slots is None:
            self.slots: List[float] = [0.0]
            self.handle = 0
        else:
            self.slots = slots
            self.handle = handle

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc {amount})")
        self.slots[self.handle] += amount

    @property
    def value(self) -> float:
        return self.slots[self.handle]


class Gauge:
    """A value that can go up and down (heap depth, rates).

    Slot-backed exactly like :class:`Counter`.
    """

    __slots__ = ("name", "labels", "slots", "handle")

    def __init__(self, name: str, labels: LabelKey = (),
                 slots: Optional[List[float]] = None,
                 handle: int = 0) -> None:
        self.name = name
        self.labels = labels
        if slots is None:
            self.slots: List[float] = [0.0]
            self.handle = 0
        else:
            self.slots = slots
            self.handle = handle

    def set(self, value: float) -> None:
        self.slots[self.handle] = float(value)

    def set_max(self, value: float) -> None:
        """Keep the running maximum (high-water marks)."""
        if value > self.slots[self.handle]:
            self.slots[self.handle] = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.slots[self.handle] += amount

    def dec(self, amount: float = 1.0) -> None:
        self.slots[self.handle] -= amount

    @property
    def value(self) -> float:
        return self.slots[self.handle]


class Histogram:
    """Fixed upper-bound buckets plus sum and count.

    Bucket semantics match Prometheus: ``counts[i]`` holds
    observations with ``value <= bounds[i]``; the implicit final
    bucket is ``+Inf``.  Counts are stored non-cumulative and summed
    at exposition time.  Bucket selection is a binary search over the
    fixed bounds (:func:`bisect.bisect_left`), not a linear scan.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")

    def __init__(self, name: str, bounds: Iterable[float],
                 labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(bound) for bound in bounds)
        if not self.bounds:
            raise ValueError(f"histogram {name} needs >= 1 bucket bound")
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(
                f"histogram {name} bounds must be strictly increasing"
            )
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[int]:
        """Per-bucket cumulative counts, ending with the total."""
        out: List[int] = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile (the bucket's upper bound).

        Coarse by design — useful for "p99 callback latency" in
        reports, not for precise statistics.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for index, count in enumerate(self.counts):
            running += count
            if running >= target:
                if index < len(self.bounds):
                    return self.bounds[index]
                return float("inf")
        return float("inf")


Metric = Union[Counter, Gauge, Histogram]

_KINDS = {"counter", "gauge", "histogram"}


class _Family:
    """One metric name: its type, metadata and children."""

    __slots__ = ("name", "kind", "help", "unit", "label_keys",
                 "children")

    def __init__(self, name: str, kind: str, help_text: str, unit: str,
                 label_keys: Tuple[str, ...]) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.unit = unit
        self.label_keys = label_keys
        self.children: Dict[LabelKey, Metric] = {}


class MetricsRegistry:
    """All metric families of one observed run.

    Registration (``counter()`` / ``gauge()`` / ``histogram()``) is
    idempotent per ``(name, labels)`` and returns the live metric
    object, so hot-path probes register once and then update direct
    references — or, cheaper still, capture :attr:`slots` plus the
    metric's integer handle (:meth:`counter_handle` /
    :meth:`gauge_handle`) and record with one list increment.
    Conflicting re-registrations record OBS401 issues on
    :attr:`issues` and return a detached metric that keeps the caller
    working without corrupting the family.

    Args:
        handle_capacity: advisory bound on the handle table; growth
            past it records one OBS404 issue (the table still grows,
            so callers keep working).
    """

    def __init__(self,
                 handle_capacity: int = DEFAULT_HANDLE_CAPACITY) -> None:
        if handle_capacity < 1:
            raise ValueError(
                f"handle_capacity must be positive: {handle_capacity}"
            )
        self._families: Dict[str, _Family] = {}
        self.issues: List[ObsIssue] = []
        #: The live handle table.  Shared, on purpose, with every
        #: slot-backed metric and every attached probe; index it with
        #: the handles the registration methods hand out.
        self.slots: List[float] = []
        self._handle_capacity = handle_capacity

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def counter(self, name: str, labels: Optional[Labels] = None,
                help_text: str = "", unit: str = "") -> Counter:
        metric = self._register("counter", name, labels, help_text,
                                unit)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, labels: Optional[Labels] = None,
              help_text: str = "", unit: str = "") -> Gauge:
        metric = self._register("gauge", name, labels, help_text, unit)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str,
                  bounds: Iterable[float] = LATENCY_BUCKETS,
                  labels: Optional[Labels] = None,
                  help_text: str = "", unit: str = "") -> Histogram:
        metric = self._register("histogram", name, labels, help_text,
                                unit, bounds=tuple(bounds))
        assert isinstance(metric, Histogram)
        return metric

    def counter_handle(self, name: str,
                       labels: Optional[Labels] = None,
                       help_text: str = "", unit: str = "") -> int:
        """Register a counter; return its slot index into :attr:`slots`.

        The hot-path idiom: resolve once at attach time, then
        ``slots[handle] += 1.0`` per event.
        """
        return self.counter(name, labels, help_text, unit).handle

    def gauge_handle(self, name: str, labels: Optional[Labels] = None,
                     help_text: str = "", unit: str = "") -> int:
        """Register a gauge; return its slot index into :attr:`slots`."""
        return self.gauge(name, labels, help_text, unit).handle

    def _new_slot(self) -> int:
        """Allocate one handle-table slot (OBS404 past capacity)."""
        slots = self.slots
        if len(slots) == self._handle_capacity:
            self.issues.append(ObsIssue(
                code="OBS404", rule="handle-table-overflow",
                message=(
                    f"handle table exceeded its configured capacity "
                    f"of {self._handle_capacity} slot(s); metric "
                    f"registration is running per event instead of "
                    f"per attach"
                ),
            ))
        slots.append(0.0)
        return len(slots) - 1

    def _register(self, kind: str, name: str, labels: Optional[Labels],
                  help_text: str, unit: str,
                  bounds: Optional[Tuple[float, ...]] = None) -> Metric:
        assert kind in _KINDS
        child_key = canonical_labels(labels)
        label_keys = tuple(key for key, __ in child_key)
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text, unit, label_keys)
            self._families[name] = family
        else:
            conflict = None
            if family.kind != kind:
                conflict = (f"registered as {family.kind}, "
                            f"re-registered as {kind}")
            elif family.label_keys != label_keys:
                conflict = (f"label keys {list(family.label_keys)} vs "
                            f"{list(label_keys)}")
            if conflict is not None:
                self.issues.append(ObsIssue(
                    code="OBS401", rule="metric-name-collision",
                    message=f"metric {name!r}: {conflict}",
                ))
                return self._make(kind, name, child_key, bounds)
        metric = family.children.get(child_key)
        if metric is None:
            metric = self._make(kind, name, child_key, bounds)
            family.children[child_key] = metric
        return metric

    def _make(self, kind: str, name: str, child_key: LabelKey,
              bounds: Optional[Tuple[float, ...]]) -> Metric:
        if kind == "counter":
            return Counter(name, child_key, self.slots,
                           self._new_slot())
        if kind == "gauge":
            return Gauge(name, child_key, self.slots, self._new_slot())
        return Histogram(name, bounds or LATENCY_BUCKETS, child_key)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str,
            labels: Optional[Labels] = None) -> Optional[Metric]:
        family = self._families.get(name)
        if family is None:
            return None
        return family.children.get(canonical_labels(labels))

    def family_names(self) -> List[str]:
        return sorted(self._families)

    def __len__(self) -> int:
        return sum(len(family.children)
                   for family in self._families.values())

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, dict]:
        """JSON-able snapshot: family name -> metadata + samples."""
        out: Dict[str, dict] = {}
        for name in self.family_names():
            family = self._families[name]
            samples = []
            for child_key in sorted(family.children):
                metric = family.children[child_key]
                sample: Dict[str, object] = {
                    "labels": dict(child_key),
                }
                if isinstance(metric, Histogram):
                    sample["bounds"] = list(metric.bounds)
                    sample["counts"] = list(metric.counts)
                    sample["sum"] = metric.sum
                    sample["count"] = metric.count
                    sample["mean"] = metric.mean
                else:
                    sample["value"] = _format_value(metric.value)
                samples.append(sample)
            out[name] = {
                "type": family.kind,
                "help": family.help,
                "unit": family.unit,
                "samples": samples,
            }
        return out

    def render_prometheus(
        self, extra_labels: Optional[Labels] = None
    ) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Args:
            extra_labels: labels stamped onto every sample (e.g.
                ``{"scenario": "steady"}`` when several scenario
                registries share one scrape).
        """
        extra = canonical_labels(extra_labels)
        lines: List[str] = []
        for name in self.family_names():
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for child_key in sorted(family.children):
                metric = family.children[child_key]
                base = extra + child_key
                if isinstance(metric, Histogram):
                    cumulative = metric.cumulative()
                    for bound, count in zip(metric.bounds, cumulative):
                        bucket = base + (("le", _le_repr(bound)),)
                        lines.append(
                            f"{name}_bucket{_label_str(bucket)} {count}"
                        )
                    inf = base + (("le", "+Inf"),)
                    lines.append(
                        f"{name}_bucket{_label_str(inf)} {metric.count}"
                    )
                    lines.append(
                        f"{name}_sum{_label_str(base)} {metric.sum!r}"
                    )
                    lines.append(
                        f"{name}_count{_label_str(base)} {metric.count}"
                    )
                else:
                    value = _format_value(metric.value)
                    lines.append(f"{name}{_label_str(base)} {value}")
        return "\n".join(lines) + ("\n" if lines else "")


def _le_repr(bound: float) -> str:
    """``le`` label value: integral bounds without a trailing .0."""
    if bound.is_integer():
        return str(int(bound))
    return repr(bound)


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _label_str(items: LabelKey) -> str:
    if not items:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in items
    )
    return "{" + inner + "}"
