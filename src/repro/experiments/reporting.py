"""Plain-text series output for benchmark harnesses.

Every benchmark prints the rows/series the corresponding paper figure
or table reports; these helpers keep the formatting uniform.
"""

from __future__ import annotations

from typing import (
    Any,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width table with a header rule."""
    materialised: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialised:
        for col, cell in enumerate(row):
            widths[col] = max(widths[col], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialised:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def print_series(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> None:
    """Print a titled table (used by the benchmark harnesses)."""
    print()
    print(f"== {title} ==")
    print(format_table(headers, rows))


def merge_sharded_rows(
    rows: Iterable[Any],
    key: Optional[str] = None,
) -> List[Any]:
    """Merge sharded result rows into one aggregation-order sequence.

    Parallel sweep workers complete out of order, so rows arrive
    interleaved across shards; everything downstream (tables above,
    figure aggregation) assumes one in-order sequence.  This restores
    it with a *stable* sort by shard index: rows from the same shard
    keep their arrival order relative to each other.

    Args:
        rows: ``(shard_index, row)`` pairs — or, when ``key`` is
            given, mapping rows that carry their own shard index under
            that key.
        key: optional field name holding the shard index in each row.

    Returns:
        The bare rows, ordered by ascending shard index.

    Raises:
        KeyError: when ``key`` is given but missing from a row.
    """
    if key is None:
        pairs: List[Tuple[int, Any]] = [
            (int(index), row) for index, row in rows
        ]
    else:
        pairs = [(int(_shard_index(row, key)), row) for row in rows]
    # sorted() is stable: equal shard indices keep arrival order.
    pairs.sort(key=lambda pair: pair[0])
    return [row for __, row in pairs]


def _shard_index(row: Mapping[str, Any], key: str) -> Any:
    if key not in row:
        raise KeyError(
            f"sharded row is missing its {key!r} index field: "
            f"{dict(row)!r}"
        )
    return row[key]


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "nan"
        if abs(cell) >= 1000 or (cell != 0 and abs(cell) < 0.01):
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)
