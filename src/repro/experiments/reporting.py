"""Plain-text series output for benchmark harnesses.

Every benchmark prints the rows/series the corresponding paper figure
or table reports; these helpers keep the formatting uniform.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width table with a header rule."""
    materialised: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialised:
        for col, cell in enumerate(row):
            widths[col] = max(widths[col], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialised:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def print_series(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> None:
    """Print a titled table (used by the benchmark harnesses)."""
    print()
    print(f"== {title} ==")
    print(format_table(headers, rows))


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "nan"
        if abs(cell) >= 1000 or (cell != 0 and abs(cell) < 0.01):
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)
