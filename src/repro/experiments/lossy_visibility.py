"""Validating eq. 1 by direct simulation (§2.3).

Eq. 1 predicts, for one perfectly-partitioned band of ``n`` addresses
holding ``m`` sessions of which ``i = f*m`` are invisible to an
allocator, the probability that a full generation of ``m``
replacements completes without a clash::

    p_m = ((n - m) / (n + i - m)) ** m

Here we run that process literally: maintain ``m`` live addresses;
for each replacement, hide each live session from the allocator
independently with probability ``f`` (modelling announcements still in
flight), allocate informed-random among the addresses believed free,
and record whether the pick collides with a hidden session.

This gives the repository a closed-loop check that the analytic model
in :mod:`repro.analysis.clash_model` describes the simulated mechanism
(the paper presents the formula without an empirical check).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.allocator import nth_free_address


def simulate_generation(n: int, m: int, i_fraction: float,
                        rng: np.random.Generator) -> bool:
    """One generation of m replacements; True if no clash occurred.

    Args:
        n: band size.
        m: live sessions (held constant).
        i_fraction: probability a live session is invisible to the
            allocator at the moment it allocates.
        rng: numpy Generator.
    """
    if not 0 < m < n:
        raise ValueError(f"need 0 < m < n, got m={m}, n={n}")
    if not 0.0 <= i_fraction <= 1.0:
        raise ValueError(f"i_fraction must be a probability: {i_fraction}")
    # Live addresses, all distinct.
    live = rng.choice(n, size=m, replace=False).astype(np.int64)
    for __ in range(m):
        victim = int(rng.integers(0, m))
        remaining = np.delete(live, victim)
        hidden = rng.random(m - 1) < i_fraction
        visible = np.unique(remaining[~hidden])
        free_believed = n - len(visible)
        rank = int(rng.integers(0, free_believed))
        address = nth_free_address(visible, rank, 0, n)
        if address in set(remaining[hidden].tolist()):
            return False
        # Clash-free replacements keep addresses distinct unless the
        # pick collided with a *visible* address, which cannot happen.
        live = np.concatenate([remaining, [address]])
    return True


def simulated_no_clash_probability(n: int, m: int, i_fraction: float,
                                   rounds: int = 200,
                                   seed: int = 0) -> Tuple[float, float]:
    """(simulated p_m, standard error) over ``rounds`` generations."""
    if rounds < 1:
        raise ValueError("rounds must be positive")
    successes = 0
    for round_no in range(rounds):
        rng = np.random.default_rng((seed, n, m, round_no))
        if simulate_generation(n, m, i_fraction, rng):
            successes += 1
    p = successes / rounds
    stderr = float(np.sqrt(max(p * (1 - p), 1e-12) / rounds))
    return p, stderr
