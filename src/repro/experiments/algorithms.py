"""The allocator registry: algorithm name -> factory.

One place binds the paper's algorithm names (fig. 5's R / IPR curves,
figs. 12/13's AIPR variants) to constructors.  The CLI uses it for
``--algorithms`` choices and the fleet shard jobs use it to rebuild an
allocator inside a worker process from a JSON-safe name, so sharded
sweeps and the serial CLI can never disagree about what "ipr7" means.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.core.adaptive import AdaptiveIprmaAllocator
from repro.core.allocator import Allocator
from repro.core.hybrid import HybridIprmaAllocator
from repro.core.informed import InformedRandomAllocator
from repro.core.iprma import StaticIprmaAllocator
from repro.core.random_alloc import RandomAllocator

AllocatorFactory = Callable[[int, np.random.Generator], Allocator]

ALGORITHM_FACTORIES: Dict[str, AllocatorFactory] = {
    "random": lambda n, rng: RandomAllocator(n, rng),
    "informed": lambda n, rng: InformedRandomAllocator(n, rng),
    "ipr3": lambda n, rng: StaticIprmaAllocator.three_band(n, rng),
    "ipr7": lambda n, rng: StaticIprmaAllocator.seven_band(n, rng),
    "aipr1": lambda n, rng: AdaptiveIprmaAllocator.aipr1(n, rng=rng),
    "aipr2": lambda n, rng: AdaptiveIprmaAllocator.aipr2(n, rng=rng),
    "aipr3": lambda n, rng: AdaptiveIprmaAllocator.aipr3(n, rng=rng),
    "aipr4": lambda n, rng: AdaptiveIprmaAllocator.aipr4(n, rng=rng),
    "aiprh": lambda n, rng: HybridIprmaAllocator(n, rng=rng),
}


def algorithm_factory(name: str) -> AllocatorFactory:
    """The factory registered under ``name``.

    Raises:
        ValueError: for an unknown algorithm name.
    """
    try:
        return ALGORITHM_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; choose from "
            f"{', '.join(sorted(ALGORITHM_FACTORIES))}"
        ) from None
