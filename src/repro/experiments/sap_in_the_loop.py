"""Allocation through the full SAP machinery (closing the loop).

Figs. 5/12/13 assume instant, lossless visibility — every site sees
exactly the sessions whose scope covers it.  §2.3 models loss and
delay analytically.  This experiment runs the *actual* stack instead:
session directories on the simulated Mbone, allocating through their
SAP caches while announcements propagate with real loss, delay and
re-announcement schedules.

It measures the quantity the paper's whole argument turns on — how
many clashes occur per allocation as a function of announcement loss
and the announcement strategy (fixed interval vs the §4 exponential
back-off) — with the clash protocol optionally repairing them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.address_space import MulticastAddressSpace
from repro.core.clash import find_clashing_pairs
from repro.core.iprma import StaticIprmaAllocator
from repro.core.session import Session
from repro.experiments.ttl_distributions import DS4, TtlDistribution
from repro.routing.scoping import ScopeMap
from repro.sap.announcer import (
    ExponentialBackoffStrategy,
    FixedIntervalStrategy,
)
from repro.sap.directory import SessionDirectory
from repro.sim.adapters import scoped_receiver_map
from repro.sim.events import EventScheduler
from repro.sim.network import NetworkModel
from repro.sim.rng import RandomStreams
from repro.routing.spt import ShortestPathForest
from repro.topology.graph import Topology

_STRATEGIES = ("fixed", "backoff")


@dataclass
class SapLoopConfig:
    """One full-stack run.

    Attributes:
        num_directories: how many sites run a directory.
        sessions_per_directory: sessions each creates.
        space_size: allocation space.
        loss: end-to-end announcement loss probability.
        strategy: "fixed" (10-minute interval) or "backoff" (§4).
        inter_arrival: mean gap between session creations (seconds);
            creations are spread uniformly over the run.
        settle_time: extra simulated time after the last creation so
            the clash protocol can repair races.
        distribution: TTL distribution for created sessions.
        seed: RNG seed.
        enable_clash_protocol: run the three-phase protocol.
    """

    num_directories: int = 20
    sessions_per_directory: int = 5
    space_size: int = 512
    loss: float = 0.02
    strategy: str = "fixed"
    inter_arrival: float = 30.0
    settle_time: float = 1200.0
    distribution: TtlDistribution = DS4
    seed: int = 0
    enable_clash_protocol: bool = True

    def __post_init__(self) -> None:
        if self.strategy not in _STRATEGIES:
            raise ValueError(f"strategy must be one of {_STRATEGIES}")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss must be in [0, 1): {self.loss}")
        if self.num_directories < 2:
            raise ValueError("need at least two directories")


@dataclass
class SapLoopResult:
    """Outcome of one run."""

    allocations: int
    residual_clashing_pairs: int
    address_changes: int
    announcements_sent: int
    announcements_lost: int
    clash_rate: float


def run_sap_in_the_loop(topology: Topology, scope_map: ScopeMap,
                        config: SapLoopConfig,
                        sanitizer=None,
                        observer=None) -> SapLoopResult:
    """Run the experiment; see module docstring.

    Args:
        sanitizer: optional
            :class:`repro.sanitize.SanitizerContext`; when given, the
            whole stack runs under shadow-state checking and the
            convergence-time cache cross-check runs before returning.
        observer: optional :class:`repro.obs.ObsContext`; profiles the
            whole stack (metrics, spans, latency histograms) without
            changing its behaviour.
    """
    rng = np.random.default_rng(config.seed)
    scheduler = EventScheduler()
    if sanitizer is not None:
        sanitizer.attach_scheduler(scheduler)
    if observer is not None:
        observer.attach_scheduler(scheduler)
    delay_forest = ShortestPathForest(topology, weight="delay")
    network = NetworkModel(
        scheduler,
        scoped_receiver_map(scope_map, delay_forest),
        streams=RandomStreams(config.seed),
        loss_rate=config.loss,
    )
    if sanitizer is not None:
        sanitizer.attach_network(network)
    if observer is not None:
        observer.attach_network(network)
    space = MulticastAddressSpace.abstract(config.space_size)

    def strategy_factory():
        if config.strategy == "backoff":
            return ExponentialBackoffStrategy()
        return FixedIntervalStrategy(600.0)

    nodes = rng.choice(topology.num_nodes,
                       size=config.num_directories, replace=False)
    directories: List[SessionDirectory] = []
    for node in nodes:
        node = int(node)
        directories.append(SessionDirectory(
            node, scheduler, network,
            StaticIprmaAllocator.seven_band(
                config.space_size, np.random.default_rng((config.seed,
                                                          node))),
            space,
            strategy_factory=strategy_factory,
            enable_clash_protocol=config.enable_clash_protocol,
            rng=np.random.default_rng((config.seed, node, 1)),
        ))
        if sanitizer is not None:
            sanitizer.watch_directory(directories[-1])
        if observer is not None:
            observer.watch_directory(directories[-1])

    # Schedule session creations spread over the arrival window.
    total = config.num_directories * config.sessions_per_directory
    creations: List[Tuple[float, int, int]] = []
    for index in range(total):
        when = float(rng.uniform(0, config.inter_arrival * total))
        directory_index = index % config.num_directories
        ttl = config.distribution.sample(rng)
        creations.append((when, directory_index, ttl))
    for when, directory_index, ttl in creations:
        directory = directories[directory_index]
        # Creations are fire-and-forget; nothing ever cancels them.
        scheduler.schedule_at(  # simlint: disable=discarded-handle
            when,
            lambda d=directory, t=ttl: d.create_session(
                f"s@{d.node}", ttl=t
            ),
        )

    horizon = config.inter_arrival * total + config.settle_time
    scheduler.run(until=horizon, max_events=2_000_000)
    if sanitizer is not None:
        sanitizer.check_convergence(directories)
    if observer is not None:
        observer.finish()

    # Residual clashes: pairs of live sessions with the same address
    # and overlapping scopes that the protocol failed to separate.
    live: List[Session] = [own.session
                           for directory in directories
                           for own in directory.own_sessions()]
    clashing = find_clashing_pairs(live, scope_map)
    address_changes = sum(d.address_changes for d in directories)
    return SapLoopResult(
        allocations=len(live),
        residual_clashing_pairs=len(clashing),
        address_changes=address_changes,
        announcements_sent=network.packets_sent,
        announcements_lost=network.packets_lost,
        clash_rate=len(clashing) / max(1, len(live)),
    )


def sap_loop_cell_job(params: dict, rng: np.random.Generator,
                      attempt: int) -> dict:
    """Fleet shard job: one SAP-in-the-loop (strategy, loss) cell.

    Rebuilds the synthetic Mbone and the full-stack config from
    JSON-safe params and runs the experiment on a worker process.
    The config seed comes from the fleet shard stream (the
    ``rng.derived_stream`` keyed on sweep id and shard index), so
    cells are decorrelated while serial and parallel execution of the
    sweep stay byte-identical.
    """
    del attempt
    from repro.topology.mbone import MboneParams, generate_mbone

    topology = generate_mbone(MboneParams(
        total_nodes=int(params.get("nodes", 60)),
        seed=int(params.get("topology_seed", 1998)),
    ))
    scope_map = ScopeMap.from_topology(topology)
    config = SapLoopConfig(
        num_directories=int(params.get("num_directories", 8)),
        sessions_per_directory=int(params.get("sessions", 3)),
        space_size=int(params.get("space_size", 64)),
        loss=float(params["loss"]),
        strategy=str(params["strategy"]),
        inter_arrival=float(params.get("inter_arrival", 5.0)),
        settle_time=float(params.get("settle_time", 300.0)),
        seed=int(rng.integers(0, 2**31 - 1)),
        enable_clash_protocol=bool(
            params.get("enable_clash_protocol", True)
        ),
    )
    result = run_sap_in_the_loop(topology, scope_map, config)
    return {
        "strategy": config.strategy,
        "loss": config.loss,
        "allocations": result.allocations,
        "residual_clashing_pairs": result.residual_clashing_pairs,
        "address_changes": result.address_changes,
        "announcements_sent": result.announcements_sent,
        "announcements_lost": result.announcements_lost,
        "clash_rate": result.clash_rate,
    }
