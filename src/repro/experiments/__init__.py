"""Experiment harnesses, one per paper figure family.

* :mod:`repro.experiments.ttl_distributions` — the ds1..ds4 TTL
  distributions of fig. 5 (and DS4 of figs. 12/13).
* :mod:`repro.experiments.allocation_run` — fill-until-first-clash
  simulation (fig. 5).
* :mod:`repro.experiments.steady_state` — steady-state churn
  simulation (figs. 12 and 13).
* :mod:`repro.experiments.request_response` — the multicast
  request-response suppression simulation (figs. 15, 16, 18, 19).
* :mod:`repro.experiments.reporting` — plain-text series/table output.
"""

from repro.experiments.allocation_run import (
    allocations_before_first_clash,
    fig5_run,
)
from repro.experiments.lossy_visibility import (
    simulate_generation,
    simulated_no_clash_probability,
)
from repro.experiments.sap_in_the_loop import (
    SapLoopConfig,
    SapLoopResult,
    run_sap_in_the_loop,
)
from repro.experiments.request_response import (
    RequestResponseConfig,
    simulate_request_response,
)
from repro.experiments.steady_state import (
    steady_state_clash_probability,
    allocations_at_half_clash,
)
from repro.experiments.ttl_distributions import (
    DS1,
    DS2,
    DS3,
    DS4,
    TtlDistribution,
)

__all__ = [
    "DS1",
    "DS2",
    "DS3",
    "DS4",
    "RequestResponseConfig",
    "SapLoopConfig",
    "SapLoopResult",
    "TtlDistribution",
    "run_sap_in_the_loop",
    "allocations_at_half_clash",
    "allocations_before_first_clash",
    "fig5_run",
    "simulate_generation",
    "simulate_request_response",
    "simulated_no_clash_probability",
    "steady_state_clash_probability",
]
