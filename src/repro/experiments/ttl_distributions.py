"""The paper's TTL distributions (fig. 5 caption).

Sessions in the allocation simulations draw their TTL from one of::

    ds1 {1,15,31,47,63,127,191}
    ds2 {1,1,15,15,31,47,63,127,191}
    ds3 {1,1,1,1,15,15,15,15,31,47,63,127,191}
    ds4 {1,1,1,1,1,1,1,1,15,15,15,15,15,15,31,31,47,47,63,63,127,191}

"Although these TTL distributions are not based on realistic data,
they help illustrate the way that local scoping of sessions helps
scaling" — ds1 is scope-uniform, ds4 strongly favours local sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class TtlDistribution:
    """A named empirical TTL distribution."""

    name: str
    values: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("distribution must be non-empty")
        if any(not 1 <= v <= 255 for v in self.values):
            raise ValueError(f"TTLs outside [1, 255] in {self.values}")

    def sample(self, rng: np.random.Generator, size=None):
        """Draw one TTL (or ``size`` TTLs) uniformly from the values."""
        choice = rng.choice(np.asarray(self.values, dtype=np.int64),
                            size=size)
        if size is None:
            return int(choice)
        return choice

    def distinct(self) -> Tuple[int, ...]:
        """The distinct TTL values, ascending."""
        return tuple(sorted(set(self.values)))


DS1 = TtlDistribution("ds1", (1, 15, 31, 47, 63, 127, 191))
DS2 = TtlDistribution("ds2", (1, 1, 15, 15, 31, 47, 63, 127, 191))
DS3 = TtlDistribution(
    "ds3", (1, 1, 1, 1, 15, 15, 15, 15, 31, 47, 63, 127, 191)
)
DS4 = TtlDistribution(
    "ds4",
    (1, 1, 1, 1, 1, 1, 1, 1, 15, 15, 15, 15, 15, 15,
     31, 31, 47, 47, 63, 63, 127, 191),
)

ALL_DISTRIBUTIONS = (DS1, DS2, DS3, DS4)


def distribution_by_name(name: str) -> TtlDistribution:
    """The registered distribution called ``name`` (``ds1``..``ds4``).

    Sharded sweeps carry distributions as JSON-safe names; this is the
    lookup worker processes use to rebuild them.

    Raises:
        ValueError: for an unknown distribution name.
    """
    for distribution in ALL_DISTRIBUTIONS:
        if distribution.name == name:
            return distribution
    known = ", ".join(d.name for d in ALL_DISTRIBUTIONS)
    raise ValueError(f"unknown TTL distribution {name!r}; "
                     f"choose from {known}")
