"""Shared state for the allocation simulations.

An :class:`AllocationWorld` tracks every live session in the simulated
internetwork and answers the two questions the experiments keep asking:

* what does the allocator at node ``b`` *see*?  (the sessions whose
  scope covers ``b`` — the announce/listen view, assuming the perfect
  announcement delivery the paper assumes in figs. 5/12/13);
* does a new session *clash* with any live session?  (same address,
  overlapping data scopes).

Session state is kept in parallel numpy-backed columns so visibility is
one vectorised gather per allocation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.allocator import VisibleSet
from repro.core.session import Session
from repro.routing.scoping import ScopeMap


def mesh_clashing_pairs(
        sessions: Sequence[Session]) -> List[Tuple[int, int]]:
    """All same-address index pairs (i < j) in a full mesh.

    The scoped variant is
    :func:`repro.core.clash.find_clashing_pairs`; the scenario
    engine's synthetic substrate is an unscoped full mesh — every
    site hears every other, so two live sessions clash iff they
    share an address, no scope map needed.
    """
    by_address: Dict[int, List[int]] = {}
    for index, session in enumerate(sessions):
        by_address.setdefault(session.address, []).append(index)
    pairs: List[Tuple[int, int]] = []
    for indices in by_address.values():
        for pos, i in enumerate(indices):
            pairs.extend((i, j) for j in indices[pos + 1:])
    return pairs


class AllocationWorld:
    """Live-session table over a scoped topology."""

    def __init__(self, scope_map: ScopeMap,
                 initial_capacity: int = 1024) -> None:
        self.scope_map = scope_map
        self._capacity = max(16, initial_capacity)
        self._sources = np.zeros(self._capacity, dtype=np.int64)
        self._ttls = np.zeros(self._capacity, dtype=np.int64)
        self._addresses = np.zeros(self._capacity, dtype=np.int64)
        self._count = 0
        self._sessions: List[Session] = []
        self._by_address: Dict[int, List[int]] = {}

    def __len__(self) -> int:
        return self._count

    @property
    def sessions(self) -> List[Session]:
        """The live sessions, in table order."""
        return self._sessions[:self._count]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, session: Session) -> int:
        """Insert a session; returns its slot index."""
        if self._count == self._capacity:
            self._grow()
        slot = self._count
        self._sources[slot] = session.source
        self._ttls[slot] = session.ttl
        self._addresses[slot] = session.address
        self._sessions.append(session)
        self._by_address.setdefault(session.address, []).append(slot)
        self._count += 1
        return slot

    def remove_at(self, slot: int) -> Session:
        """Remove the session in ``slot`` (swap-with-last, O(1))."""
        if not 0 <= slot < self._count:
            raise IndexError(f"slot {slot} out of {self._count}")
        removed = self._sessions[slot]
        last = self._count - 1
        self._unindex(slot, removed.address)
        if slot != last:
            moved = self._sessions[last]
            self._sessions[slot] = moved
            self._sources[slot] = self._sources[last]
            self._ttls[slot] = self._ttls[last]
            self._addresses[slot] = self._addresses[last]
            self._unindex(last, moved.address)
            self._by_address.setdefault(moved.address, []).append(slot)
        self._sessions.pop()
        self._count -= 1
        return removed

    def _unindex(self, slot: int, address: int) -> None:
        bucket = self._by_address[address]
        bucket.remove(slot)
        if not bucket:
            del self._by_address[address]

    def _grow(self) -> None:
        self._capacity *= 2
        for name in ("_sources", "_ttls", "_addresses"):
            old = getattr(self, name)
            grown = np.zeros(self._capacity, dtype=old.dtype)
            grown[: self._count] = old[: self._count]
            setattr(self, name, grown)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def visible_at(self, node: int) -> VisibleSet:
        """Sessions whose announcements reach ``node``."""
        sources = self._sources[: self._count]
        ttls = self._ttls[: self._count]
        mask = self.scope_map.need[sources, node] <= ttls
        return VisibleSet(self._addresses[: self._count][mask], ttls[mask])

    def clashes(self, session: Session) -> bool:
        """Would ``session`` clash with any live session?

        Checks only live sessions sharing the address, then tests data
        scope overlap through the scope map.
        """
        for slot in self._by_address.get(session.address, ()):
            other = self._sessions[slot]
            if self.scope_map.scopes_overlap(
                session.source, session.ttl, other.source, other.ttl
            ):
                return True
        return False

    def random_slot(self, rng: np.random.Generator) -> int:
        """A uniformly random occupied slot."""
        if self._count == 0:
            raise ValueError("world is empty")
        return int(rng.integers(0, self._count))
