"""Figs. 15, 16, 18, 19: the multicast request-response simulation.

A clash report ("request") is multicast from a random node.  Every
other node is a potential responder: it starts a random timer when the
request arrives and responds when the timer fires — unless it has
already heard someone else's response, in which case it is suppressed.

Measured per configuration: the mean number of responses actually sent
and the delay until the requester hears the first response.  Variables:

* routing — source-rooted shortest-path trees vs the shared
  (construction) tree of the Doar topology;
* per-packet random jitter (queueing) on top of distance-based delay;
* the delay distribution — uniform over [D1, D2] vs the exponential
  distribution of §3.1;
* D2 and the number of sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.response_bounds import exponential_delay_array
from repro.routing.spt import ShortestPathForest
from repro.topology.doar import DoarTopology


@dataclass
class RequestResponseConfig:
    """One simulated configuration.

    Attributes:
        d2: maximum response delay D2 in seconds.
        d1: minimum response delay D1 (0 in the paper's fig. 15 runs).
        timer: "uniform" or "exponential".
        routing: "spt" (source shortest-path trees) or "shared".
        jitter: per-packet random extra delay, uniform [0, jitter]
            seconds (fig. 15's "delay=distance+random" variants).
        trials: independent repetitions.
        seed: base RNG seed.
        rtt_estimate: bucket width r for the exponential timer; when
            None, twice the maximum request propagation delay is used.
        member_fraction: fraction of nodes that are group members and
            hence potential responders (1.0 = everyone, the paper's
            setting; §3 suggests "initially only allowing the sites
            that are actually announcing sessions to respond" — a
            smaller responder set).  Non-members still forward and
            hear responses (suppression unaffected).
    """

    d2: float
    d1: float = 0.0
    timer: str = "uniform"
    routing: str = "spt"
    jitter: float = 0.0
    trials: int = 10
    seed: int = 0
    rtt_estimate: Optional[float] = None
    member_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.timer not in ("uniform", "exponential"):
            raise ValueError(f"unknown timer {self.timer!r}")
        if self.routing not in ("spt", "shared"):
            raise ValueError(f"unknown routing {self.routing!r}")
        if self.d1 < 0 or self.d2 < self.d1:
            raise ValueError(f"need 0 <= D1 <= D2: {self.d1}, {self.d2}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0: {self.jitter}")
        if self.trials < 1:
            raise ValueError("need at least one trial")
        if not 0.0 < self.member_fraction <= 1.0:
            raise ValueError(
                f"member_fraction outside (0, 1]: {self.member_fraction}"
            )


@dataclass
class RequestResponseResult:
    """Aggregated outcome over the trials."""

    config: RequestResponseConfig
    num_sites: int
    mean_responses: float
    mean_first_delay: float
    max_first_delay: float


class _DelayProvider:
    """Per-node one-way delays under the configured routing."""

    def __init__(self, doar: DoarTopology, routing: str) -> None:
        self.routing = routing
        if routing == "shared":
            self._tree = doar.shared_tree(core=0)
            self._cache: Dict[int, np.ndarray] = {}
        else:
            self._forest = ShortestPathForest(doar.topology,
                                              weight="delay")

    def delays_from(self, node: int) -> np.ndarray:
        if self.routing == "shared":
            cached = self._cache.get(node)
            if cached is None:
                cached = self._tree.delays_from(node)
                self._cache[node] = cached
            return cached
        return self._forest.distances_from(node)


def simulate_request_response(
    doar: DoarTopology, config: RequestResponseConfig
) -> RequestResponseResult:
    """Run the suppression simulation on a Doar topology."""
    n = doar.topology.num_nodes
    provider = _DelayProvider(doar, config.routing)
    responses: List[int] = []
    first_delays: List[float] = []
    for trial in range(config.trials):
        rng = np.random.default_rng((config.seed, trial, n))
        count, first = _one_round(provider, n, config, rng)
        responses.append(count)
        first_delays.append(first)
    return RequestResponseResult(
        config=config,
        num_sites=n,
        mean_responses=float(np.mean(responses)),
        mean_first_delay=float(np.mean(first_delays)),
        max_first_delay=float(np.max(first_delays)),
    )


def _one_round(provider: _DelayProvider, n: int,
               config: RequestResponseConfig,
               rng: np.random.Generator) -> "tuple[int, float]":
    requester = int(rng.integers(0, n))
    arrival = provider.delays_from(requester).copy()
    if config.jitter:
        arrival += rng.uniform(0.0, config.jitter, size=n)
    arrival[requester] = 0.0

    timer_delays = _sample_timers(config, arrival, n, rng)
    fire = arrival + timer_delays
    fire[requester] = np.inf  # the requester does not respond to itself
    if config.member_fraction < 1.0:
        # Only group members respond; others never fire.
        non_members = rng.random(n) >= config.member_fraction
        fire[non_members] = np.inf

    order = np.argsort(fire)
    earliest_heard = np.full(n, np.inf)
    senders = 0
    first_delay = np.inf
    for idx in order:
        i = int(idx)
        if not np.isfinite(fire[i]):
            break
        if earliest_heard[i] <= fire[i]:
            continue  # suppressed before the timer fired
        senders += 1
        prop = provider.delays_from(i)
        if config.jitter:
            prop = prop + rng.uniform(0.0, config.jitter, size=n)
        heard_at = fire[i] + prop
        np.minimum(earliest_heard, heard_at, out=earliest_heard)
        first_delay = min(first_delay, fire[i] + float(prop[requester]))
    if senders == 0:
        first_delay = float("nan")
    return senders, first_delay


def _sample_timers(config: RequestResponseConfig, arrival: np.ndarray,
                   n: int, rng: np.random.Generator) -> np.ndarray:
    if config.timer == "uniform":
        return rng.uniform(config.d1, config.d2, size=n)
    rtt = config.rtt_estimate
    if rtt is None:
        finite = arrival[np.isfinite(arrival)]
        rtt = 2.0 * float(finite.max()) if finite.size else 0.2
        rtt = max(rtt, 1e-6)
    xs = rng.random(n)
    return exponential_delay_array(xs, config.d1, config.d2, rtt)
