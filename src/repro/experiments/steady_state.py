"""Figs. 12 and 13: steady-state behaviour under session churn.

The paper's method (§2.6):

1. allocate n sessions with TTLs from the distribution and random
   sources, without regard for clashes;
2. re-allocate the addresses using the algorithm under test so that no
   clashes exist;
3. remove one existing session chosen at random;
4. allocate a new session;
5. repeat from 3 until n sessions have been replaced, keeping score of
   the address clashes.

The process is repeated to estimate, per (algorithm, space size), the
clash probability over one "mean session lifetime" (n replacements),
and the n at which that probability crosses 0.5.

Fig. 13's upper bound replaces a removed session with one from the
*same site with the same TTL*, testing adaptation limits rather than
the adaptation mechanism itself.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocator import Allocator
from repro.core.session import Session
from repro.experiments.ttl_distributions import TtlDistribution
from repro.experiments.world import AllocationWorld
from repro.routing.scoping import ScopeMap

AllocatorFactory = Callable[[int, np.random.Generator], Allocator]

#: Give up re-drawing a clash-free address after this many attempts;
#: the slot is then left with a clashing allocation (the space is
#: effectively beyond saturation for the algorithm).
MAX_REDRAWS = 64


def _allocate_clash_free(world: AllocationWorld, allocator: Allocator,
                         source: int, ttl: int,
                         rng: np.random.Generator) -> Tuple[Session, bool]:
    """Allocate at (source, ttl), redrawing on clash.

    Returns (session, clashed_first_try).
    """
    clashed_first = False
    for attempt in range(MAX_REDRAWS):
        visible = world.visible_at(source)
        result = allocator.allocate(ttl, visible)
        session = Session(address=result.address, ttl=ttl, source=source)
        if not world.clashes(session):
            return session, clashed_first
        if attempt == 0:
            clashed_first = True
    # Space saturated: accept the clash so the simulation can proceed.
    return session, clashed_first


def steady_state_clash_probability(
    scope_map: ScopeMap,
    allocator_factory: AllocatorFactory,
    space_size: int,
    n_sessions: int,
    distribution: TtlDistribution,
    trials: int = 20,
    seed: int = 0,
    same_site_replacement: bool = False,
) -> float:
    """P(at least one clash while replacing n sessions).

    Args:
        same_site_replacement: fig. 13's upper-bound variant — the new
            session reuses the removed session's site and TTL.
    """
    if n_sessions <= 0:
        raise ValueError(f"n_sessions must be positive: {n_sessions}")
    clash_trials = 0
    for trial in range(trials):
        rng = np.random.default_rng((seed, space_size, n_sessions, trial))
        if _one_trial_has_clash(scope_map, allocator_factory, space_size,
                                n_sessions, distribution, rng,
                                same_site_replacement):
            clash_trials += 1
    return clash_trials / trials


def _one_trial_has_clash(scope_map, allocator_factory, space_size,
                         n_sessions, distribution, rng,
                         same_site_replacement) -> bool:
    allocator = allocator_factory(space_size, rng)
    world = AllocationWorld(scope_map, initial_capacity=n_sessions * 2)
    num_nodes = scope_map.num_nodes
    # Steps 1+2 fused: allocate each session with the algorithm,
    # redrawing until clash-free (equivalent to "re-allocate the
    # addresses ... so that no clashes exist").
    for __ in range(n_sessions):
        source = int(rng.integers(0, num_nodes))
        ttl = distribution.sample(rng)
        session, __clash = _allocate_clash_free(world, allocator, source,
                                                ttl, rng)
        world.add(session)
    # Steps 3-5: churn.
    for __ in range(n_sessions):
        victim_slot = world.random_slot(rng)
        victim = world.remove_at(victim_slot)
        if same_site_replacement:
            source, ttl = victim.source, victim.ttl
        else:
            source = int(rng.integers(0, num_nodes))
            ttl = distribution.sample(rng)
        session, clashed = _allocate_clash_free(world, allocator, source,
                                                ttl, rng)
        world.add(session)
        if clashed:
            return True
    return False


def allocations_at_half_clash(
    scope_map: ScopeMap,
    allocator_factory: AllocatorFactory,
    space_size: int,
    distribution: TtlDistribution,
    trials: int = 20,
    seed: int = 0,
    same_site_replacement: bool = False,
    n_max: Optional[int] = None,
) -> int:
    """The n at which steady-state clash probability crosses 0.5.

    Geometric bracketing followed by bisection; this is the y value of
    one fig. 12/13 point.
    """
    n_cap = n_max if n_max is not None else space_size * 4

    def probability(n: int) -> float:
        return steady_state_clash_probability(
            scope_map, allocator_factory, space_size, n, distribution,
            trials=trials, seed=seed,
            same_site_replacement=same_site_replacement,
        )

    # Bracket by doubling.
    lo, hi = 1, 2
    while hi < n_cap and probability(hi) < 0.5:
        lo = hi
        hi *= 2
    hi = min(hi, n_cap)
    # Bisect [lo, hi); lo is below threshold, hi at/above (or capped).
    while hi - lo > max(1, lo // 8):
        mid = (lo + hi) // 2
        if probability(mid) < 0.5:
            lo = mid
        else:
            hi = mid
    return lo


@dataclass
class SteadyStateRow:
    """One fig. 12/13 data point."""

    algorithm: str
    space_size: int
    allocations_at_half: int


def steady_cell(
    scope_map: ScopeMap,
    factory: AllocatorFactory,
    algo_name: str,
    space_size: int,
    distribution: TtlDistribution,
    trials: int = 10,
    seed: int = 0,
    same_site_replacement: bool = False,
    derive_seed: bool = True,
) -> SteadyStateRow:
    """One fig. 12/13 (algorithm, space size) point.

    Seeded from the cell coordinates alone (the sweep's historical
    ``seed ^ crc32(algorithm)`` derivation), so the cell is
    shard-relocatable: it computes the same row serially or on a
    fleet worker.  ``derive_seed=False`` keeps the raw seed — the
    ``repro steady-state`` CLI's historical behaviour — so its
    sharded path reproduces the serial table byte for byte.
    """
    effective_seed = seed
    if derive_seed:
        effective_seed = seed ^ zlib.crc32(algo_name.encode())
    value = allocations_at_half_clash(
        scope_map, factory, space_size, distribution,
        trials=trials,
        seed=effective_seed,
        same_site_replacement=same_site_replacement,
    )
    return SteadyStateRow(algo_name, space_size, value)


def steady_state_sweep(
    scope_map: ScopeMap,
    algorithms: Dict[str, AllocatorFactory],
    space_sizes: Sequence[int],
    distribution: TtlDistribution,
    trials: int = 10,
    seed: int = 0,
    same_site_replacement: bool = False,
) -> List[SteadyStateRow]:
    """The full fig. 12 (or, with same-site replacement, fig. 13) sweep."""
    rows: List[SteadyStateRow] = []
    for algo_name, factory in algorithms.items():
        for space_size in space_sizes:
            rows.append(steady_cell(
                scope_map, factory, algo_name, space_size, distribution,
                trials=trials, seed=seed,
                same_site_replacement=same_site_replacement,
            ))
    return rows


def steady_cell_job(params: dict, rng: np.random.Generator,
                    attempt: int) -> dict:
    """Fleet shard job: one fig. 12/13 point from JSON-safe params.

    Deterministic in the params alone — the fleet shard ``rng`` is
    unused so sharded and serial sweeps agree byte for byte.
    """
    del rng, attempt
    from repro.experiments.algorithms import algorithm_factory
    from repro.experiments.allocation_run import _cell_scope_map
    from repro.experiments.ttl_distributions import distribution_by_name

    scope_map = _cell_scope_map(params)
    row = steady_cell(
        scope_map,
        algorithm_factory(params["algorithm"]),
        params["algorithm"],
        int(params["space_size"]),
        distribution_by_name(params.get("distribution", "ds4")),
        trials=int(params.get("trials", 10)),
        seed=int(params["seed"]),
        same_site_replacement=bool(params.get("same_site", False)),
        derive_seed=bool(params.get("derive_seed", True)),
    )
    return {
        "algorithm": row.algorithm,
        "space_size": row.space_size,
        "allocations_at_half": row.allocations_at_half,
    }
