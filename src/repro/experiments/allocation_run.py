"""Fig. 5: fill the address space until the first clash.

"Nodes in this graph were chosen at random as the originator of a
session, and the TTL for the session was chosen randomly from the
following distributions ... In this simulation we assume no packet
loss" — so every site sees exactly the sessions whose scope covers it,
and the only clash causes are scope asymmetry and imperfect
partitioning.

For each (algorithm, distribution, space size) we repeatedly allocate
sessions at random sites until a new session clashes with a live one,
and report the mean number of successful allocations before that first
clash, on the fig. 5 log/log axes.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.allocator import Allocator
from repro.core.session import Session
from repro.experiments.ttl_distributions import TtlDistribution
from repro.experiments.world import AllocationWorld
from repro.routing.scoping import ScopeMap

AllocatorFactory = Callable[[int, np.random.Generator], Allocator]


def allocations_before_first_clash(
    scope_map: ScopeMap,
    allocator_factory: AllocatorFactory,
    space_size: int,
    distribution: TtlDistribution,
    rng: np.random.Generator,
    max_allocations: Optional[int] = None,
) -> int:
    """One trial: successful allocations before the first clash.

    Args:
        scope_map: topology scoping (all sites share it — "no loss").
        allocator_factory: builds the algorithm under test.
        space_size: addresses available.
        distribution: TTL distribution for new sessions.
        rng: trial RNG (drives sources, TTLs and the allocator).
        max_allocations: optional cap (for bounded benchmark time);
            reaching it returns the cap.

    Returns:
        Number of clash-free allocations made before the first clash.
    """
    allocator = allocator_factory(space_size, rng)
    world = AllocationWorld(scope_map)
    num_nodes = scope_map.num_nodes
    cap = max_allocations if max_allocations is not None else (
        space_size * 16
    )
    for count in range(cap):
        source = int(rng.integers(0, num_nodes))
        ttl = distribution.sample(rng)
        visible = world.visible_at(source)
        result = allocator.allocate(ttl, visible)
        session = Session(address=result.address, ttl=ttl, source=source)
        if world.clashes(session):
            return count
        world.add(session)
    return cap


@dataclass
class Fig5Row:
    """One fig. 5 data point."""

    algorithm: str
    distribution: str
    space_size: int
    mean_allocations: float
    trials: int


def fig5_cell(
    scope_map: ScopeMap,
    factory: AllocatorFactory,
    algo_name: str,
    distribution: TtlDistribution,
    space_size: int,
    trials: int,
    seed: int = 0,
    max_allocations: Optional[int] = None,
) -> Fig5Row:
    """One fig. 5 (algorithm, distribution, space size) cell.

    The per-trial RNG is derived from the cell coordinates, not from
    any sweep-iteration state, so a cell computes the same row whether
    it runs inside the serial :func:`fig5_run` loop or as one fleet
    shard on a worker process.
    """
    results = []
    for trial in range(trials):
        rng = np.random.default_rng(
            (seed, zlib.crc32(algo_name.encode()), space_size,
             trial, len(distribution.values))
        )
        results.append(allocations_before_first_clash(
            scope_map, factory, space_size, distribution,
            rng, max_allocations=max_allocations,
        ))
    return Fig5Row(
        algorithm=algo_name,
        distribution=distribution.name,
        space_size=space_size,
        mean_allocations=float(np.mean(results)),
        trials=trials,
    )


def fig5_run(
    scope_map: ScopeMap,
    algorithms: Dict[str, AllocatorFactory],
    space_sizes: Sequence[int],
    distributions: Sequence[TtlDistribution],
    trials: int = 5,
    seed: int = 0,
    max_allocations: Optional[int] = None,
) -> List[Fig5Row]:
    """The full fig. 5 sweep.

    Returns one row per (algorithm, distribution, space size) with the
    mean allocations-before-clash over ``trials`` trials.
    """
    rows: List[Fig5Row] = []
    for algo_name, factory in algorithms.items():
        for distribution in distributions:
            for space_size in space_sizes:
                rows.append(fig5_cell(
                    scope_map, factory, algo_name, distribution,
                    space_size, trials, seed=seed,
                    max_allocations=max_allocations,
                ))
    return rows


def _cell_scope_map(params: dict) -> ScopeMap:
    """Rebuild a topology scope map from JSON-safe shard params."""
    from repro.topology.mapfile import load_map
    from repro.topology.mbone import MboneParams, generate_mbone

    if params.get("map"):
        topology = load_map(params["map"])
    else:
        topology = generate_mbone(MboneParams(
            total_nodes=int(params.get("nodes", 400)),
            seed=int(params.get("topology_seed", params["seed"])),
        ))
    return ScopeMap.from_topology(topology)


def fig5_cell_job(params: dict, rng: np.random.Generator,
                  attempt: int) -> dict:
    """Fleet shard job: one fig. 5 cell, rebuilt from JSON params.

    The trial streams are keyed on the cell coordinates (exactly the
    derivation :func:`fig5_cell` uses), so a fleet-sharded fig. 5 is
    byte-identical to the serial sweep at any worker count; the
    fleet-provided shard ``rng`` is deliberately unused here.
    """
    del rng, attempt  # results must depend on params alone
    from repro.experiments.algorithms import algorithm_factory
    from repro.experiments.ttl_distributions import distribution_by_name

    scope_map = _cell_scope_map(params)
    max_allocations = params.get("max_allocations")
    row = fig5_cell(
        scope_map,
        algorithm_factory(params["algorithm"]),
        params["algorithm"],
        distribution_by_name(params["distribution"]),
        int(params["space_size"]),
        int(params["trials"]),
        seed=int(params["seed"]),
        max_allocations=(None if max_allocations is None
                         else int(max_allocations)),
    )
    return {
        "algorithm": row.algorithm,
        "distribution": row.distribution,
        "space_size": row.space_size,
        "mean_allocations": row.mean_allocations,
        "trials": row.trials,
    }
