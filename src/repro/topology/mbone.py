"""Synthetic Mbone map generator.

The paper's allocation experiments run on a map of the 1998 Mbone
gathered by the mcollect/mwatch network monitor (1864 nodes after
removing disconnected subtrees), including all TTL thresholds and DVMRP
routing metrics.  That dataset is not available, so this module
generates a synthetic internetwork reproducing the *structural*
properties the experiments depend on:

* the TTL boundary policy of §2.1/fig. 3 — site boundaries at threshold
  16, country borders inside Europe at threshold 48, country borders
  elsewhere and Europe's external borders at threshold 64, plain links
  at threshold 1 (so TTL 47 sessions exist in Europe but behave like
  TTL 63 sessions in the US, the inconsistency that breaks IPR-3);
* hop-count-vs-TTL structure comparable to fig. 10 (local scopes a few
  hops across, global scopes tens of hops, everything under the DVMRP
  metric infinity of 32);
* tunnel metrics of 1 on local links and larger values on long-haul
  tunnels, as on the real Mbone.

Topology shape: a three-level hierarchy of continental hubs, national
backbones and multi-router sites, with a little random cross-linking in
backbones for realism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.topology.graph import Topology

#: Threshold on a site's gateway link (local scope boundary).
SITE_THRESHOLD = 16
#: Threshold on country borders inside Europe.
EUROPE_COUNTRY_THRESHOLD = 48
#: Threshold on other country borders and continental borders.
COUNTRY_THRESHOLD = 64


@dataclass(frozen=True)
class CountrySpec:
    """A country within a continent."""

    name: str
    weight: float
    border_threshold: int


@dataclass(frozen=True)
class ContinentSpec:
    """A continent: a hub plus a set of countries."""

    name: str
    weight: float
    countries: Tuple[CountrySpec, ...]


def default_continents() -> Tuple[ContinentSpec, ...]:
    """The continental layout described in the paper (§2.1, fig. 3)."""
    def eu(name: str, weight: float) -> CountrySpec:
        return CountrySpec(name, weight, EUROPE_COUNTRY_THRESHOLD)

    def cc(name: str, weight: float) -> CountrySpec:
        return CountrySpec(name, weight, COUNTRY_THRESHOLD)

    return (
        ContinentSpec("north-america", 0.52, (
            cc("usa", 0.80), cc("canada", 0.15), cc("mexico", 0.05),
        )),
        ContinentSpec("europe", 0.30, (
            eu("uk", 0.22), eu("germany", 0.20), eu("holland", 0.12),
            eu("scandinavia", 0.14), eu("france", 0.12), eu("italy", 0.08),
            eu("spain", 0.06), eu("switzerland", 0.06),
        )),
        ContinentSpec("asia-pacific", 0.12, (
            cc("japan", 0.45), cc("australia", 0.35), cc("korea", 0.20),
        )),
        ContinentSpec("south-america", 0.06, (
            cc("brazil", 0.65), cc("chile", 0.35),
        )),
    )


@dataclass
class MboneParams:
    """Knobs for the synthetic Mbone.

    Attributes:
        total_nodes: target node count (the mcollect map had 1864).
        seed: RNG seed; the same seed always yields the same map.
        max_site_size: largest number of routers in one site.
        backbone_chords: extra random links added per national backbone
            (redundant paths, as real Mbone tunnels had).
        continents: continental layout; defaults to the paper's world.
    """

    total_nodes: int = 1864
    seed: int = 1998
    max_site_size: int = 8
    backbone_chords: int = 2
    continents: Tuple[ContinentSpec, ...] = field(
        default_factory=default_continents
    )

    def __post_init__(self) -> None:
        if self.total_nodes < 40:
            raise ValueError(
                f"need at least 40 nodes for the hierarchy, got "
                f"{self.total_nodes}"
            )
        if self.max_site_size < 1:
            raise ValueError("max_site_size must be >= 1")


def generate_mbone(params: MboneParams = None) -> Topology:
    """Generate a synthetic Mbone topology.

    Node labels encode position in the hierarchy:
    ``"<continent>/hub"``, ``"<continent>/<country>/bb<i>"`` and
    ``"<continent>/<country>/site<j>/r<k>"``.
    """
    if params is None:
        params = MboneParams()
    rng = np.random.default_rng(params.seed)
    topo = Topology()
    builder = _MboneBuilder(topo, rng, params)
    builder.build()
    if not topo.is_connected():
        raise AssertionError("generator produced a disconnected map")
    return topo


class _MboneBuilder:
    """Internal builder; splits the construction into readable steps."""

    def __init__(self, topo: Topology, rng: np.random.Generator,
                 params: MboneParams) -> None:
        self.topo = topo
        self.rng = rng
        self.params = params
        self.hub_of: Dict[str, int] = {}

    def build(self) -> None:
        budgets = self._continent_budgets()
        for continent in self.params.continents:
            hub = self.topo.add_node(label=f"{continent.name}/hub")
            self.hub_of[continent.name] = hub
        self._link_hubs()
        for continent in self.params.continents:
            self._build_continent(continent, budgets[continent.name])

    def _continent_budgets(self) -> Dict[str, int]:
        """Split the node budget across continents by weight."""
        total = self.params.total_nodes
        weights = np.array([c.weight for c in self.params.continents])
        weights = weights / weights.sum()
        budgets = np.floor(weights * total).astype(int)
        budgets[0] += total - int(budgets.sum())
        return {c.name: max(8, int(b))
                for c, b in zip(self.params.continents, budgets)}

    def _link_hubs(self) -> None:
        """Intercontinental tunnels: star on the first hub plus a ring.

        Intercontinental borders carry threshold 64, so TTL 63 traffic
        never leaves a continent but TTL 127 does (fig. 10's
        "intercontinental" row).
        """
        hubs = list(self.hub_of.values())
        first = hubs[0]
        for hub in hubs[1:]:
            self.topo.add_link(
                first, hub, metric=3, threshold=COUNTRY_THRESHOLD,
                delay=self.rng.uniform(0.040, 0.080),
            )
        # One redundant long-haul tunnel between the 2nd and last hubs.
        if len(hubs) >= 3:
            self.topo.add_link(
                hubs[1], hubs[-1], metric=4, threshold=COUNTRY_THRESHOLD,
                delay=self.rng.uniform(0.060, 0.100),
            )

    def _build_continent(self, continent: ContinentSpec,
                         budget: int) -> None:
        hub = self.hub_of[continent.name]
        weights = np.array([c.weight for c in continent.countries])
        weights = weights / weights.sum()
        shares = np.floor(weights * budget).astype(int)
        shares[0] += budget - int(shares.sum())
        for country, share in zip(continent.countries, shares):
            self._build_country(continent, country, hub, max(4, int(share)))

    def _build_country(self, continent: ContinentSpec, country: CountrySpec,
                       hub: int, budget: int) -> None:
        prefix = f"{continent.name}/{country.name}"
        backbone_size = int(np.clip(round(budget ** 0.5 * 0.55), 2, 12))
        backbone = self._build_backbone(prefix, backbone_size)
        # National border: the gateway link to the continental hub.
        self.topo.add_link(
            hub, backbone[0], metric=2, threshold=country.border_threshold,
            delay=self.rng.uniform(0.010, 0.030),
        )
        remaining = budget - backbone_size
        site_index = 0
        while remaining > 0:
            size = int(min(remaining,
                           self.rng.integers(1, self.params.max_site_size
                                             + 1)))
            attach = int(self.rng.choice(backbone))
            self._build_site(prefix, site_index, attach, size)
            remaining -= size
            site_index += 1

    def _build_backbone(self, prefix: str, size: int) -> List[int]:
        """National backbone: a random tree plus a few chord links."""
        nodes = [self.topo.add_node(label=f"{prefix}/bb{i}")
                 for i in range(size)]
        for i in range(1, size):
            parent = nodes[int(self.rng.integers(0, i))]
            self.topo.add_link(
                parent, nodes[i], metric=1, threshold=1,
                delay=self.rng.uniform(0.003, 0.015),
            )
        chords = min(self.params.backbone_chords, size - 2)
        for __ in range(max(0, chords)):
            u, v = self.rng.choice(size, size=2, replace=False)
            if not self.topo.has_link(nodes[u], nodes[v]):
                self.topo.add_link(
                    nodes[u], nodes[v], metric=2, threshold=1,
                    delay=self.rng.uniform(0.003, 0.015),
                )
        return nodes

    def _build_site(self, prefix: str, index: int, attach: int,
                    size: int) -> None:
        """A site: gateway behind a threshold-16 link, internal tree."""
        label = f"{prefix}/site{index}"
        gateway = self.topo.add_node(label=f"{label}/r0")
        self.topo.add_link(
            attach, gateway, metric=1, threshold=SITE_THRESHOLD,
            delay=self.rng.uniform(0.002, 0.010),
        )
        internal = [gateway]
        for k in range(1, size):
            node = self.topo.add_node(label=f"{label}/r{k}")
            # Prefer recent nodes as parents so sites form short chains
            # and small trees (a few hops across, as fig. 10's TTL-15
            # curve shows) rather than pure stars.
            parent_pool = internal[-3:]
            parent = parent_pool[int(self.rng.integers(0, len(parent_pool)))]
            self.topo.add_link(
                parent, node, metric=1, threshold=1,
                delay=self.rng.uniform(0.001, 0.003),
            )
            internal.append(node)


def boundary_census(topo: Topology) -> Dict[int, int]:
    """Count links per TTL threshold value (sanity/reporting helper)."""
    census: Dict[int, int] = {}
    for link in topo.links():
        census[link.threshold] = census.get(link.threshold, 0) + 1
    return census
