"""An mcollect/mwatch emulator — the paper's data-collection pipeline.

The paper's topology "as gathered from the mcollect network monitor"
came from walking the Mbone: the mwatch daemon queried each known
mrouter for its neighbour list and followed the answers outward.  The
result was incomplete — "the mcollect data is not a complete mapping
of all of the Mbone because some mrouters do not have unicast routes
to the mwatch daemon" — and "any disconnected subtrees of the network
were removed", leaving 1864 nodes.

This module reproduces that pipeline against a ground-truth topology:
a breadth-first neighbour-query walk from a monitor node, with a
configurable fraction of mrouters unreachable to queries (their links
are only seen from the far end, and mrouters *behind* them may be
missed entirely), followed by the connected-component cleanup.  It
lets the experiments ask how robust the paper's results are to the
map's known incompleteness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from repro.sim.rng import derived_stream
from repro.topology.graph import Topology


@dataclass
class CollectionReport:
    """What the walk saw vs the ground truth."""

    ground_truth_nodes: int
    responding_nodes: int
    mapped_nodes: int
    mapped_links: int
    coverage: float


class McollectProbe:
    """Walks a topology the way mwatch walked the Mbone.

    Args:
        topology: ground truth.
        unreachable_fraction: probability an mrouter does not answer
            queries (no unicast route back to the monitor).
        rng: numpy Generator (drives which mrouters are silent).
    """

    def __init__(self, topology: Topology,
                 unreachable_fraction: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 <= unreachable_fraction < 1.0:
            raise ValueError(
                f"unreachable_fraction must be in [0, 1): "
                f"{unreachable_fraction}"
            )
        self.topology = topology
        self.unreachable_fraction = unreachable_fraction
        self.rng = rng if rng is not None else derived_stream(
            "topology.mcollect"
        )
        self._silent: Optional[Set[int]] = None

    def _choose_silent(self, monitor: int) -> Set[int]:
        silent: Set[int] = set()
        draws = self.rng.random(self.topology.num_nodes)
        for node in self.topology.nodes():
            if node != monitor and \
                    draws[node] < self.unreachable_fraction:
                silent.add(node)
        return silent

    def collect(self, monitor: int = 0) -> Topology:
        """Run the walk; returns the (partial) collected map.

        Silent mrouters appear in the map when a responding neighbour
        reports the link to them, but their own neighbour lists are
        never learned, so anything *only* reachable through them stays
        invisible.  Finally, disconnected fragments are dropped, as the
        paper did.
        """
        self._silent = self._choose_silent(monitor)
        discovered: Set[int] = {monitor}
        queried: Set[int] = set()
        frontier: List[int] = [monitor]
        links: Dict[tuple, tuple] = {}
        while frontier:
            node = frontier.pop()
            if node in queried or node in self._silent:
                continue
            queried.add(node)
            for neighbor in self.topology.neighbors(node):
                link = self.topology.link(node, neighbor)
                key = (link.u, link.v)
                links[key] = (link.metric, link.threshold, link.delay)
                if neighbor not in discovered:
                    discovered.add(neighbor)
                    frontier.append(neighbor)
        return self._build_map(discovered, links)

    def _build_map(self, discovered: Set[int],
                   links: Dict[tuple, tuple]) -> Topology:
        mapping = {old: new
                   for new, old in enumerate(sorted(discovered))}
        partial = Topology()
        for old in sorted(discovered):
            partial.add_node(self.topology.position(old),
                             self.topology.label(old))
        for (u, v), (metric, threshold, delay) in links.items():
            partial.add_link(mapping[u], mapping[v], metric=metric,
                             threshold=threshold, delay=delay)
        return partial.largest_connected_subgraph()

    def report(self, monitor: int = 0) -> CollectionReport:
        """Collect and summarise coverage."""
        collected = self.collect(monitor)
        responding = self.topology.num_nodes - len(self._silent or ())
        return CollectionReport(
            ground_truth_nodes=self.topology.num_nodes,
            responding_nodes=responding,
            mapped_nodes=collected.num_nodes,
            mapped_links=collected.num_links,
            coverage=collected.num_nodes / self.topology.num_nodes,
        )
