"""Hop-count analysis (paper fig. 10 and the §2.4.1 TTL table).

The paper takes every mrouter in the mcollect map, computes a histogram
of mrouter count against hop distance for each commonly used TTL scope,
and combines the per-source histograms.  The headline outputs are the
normalised hop-count distributions for TTL 15/47/63/127 and the table
of typical and maximum hop counts per TTL, which drive the partition
sizing rule of §2.4.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.topology.graph import Topology

if False:  # pragma: no cover - import cycle guard, typing only
    from repro.routing.scoping import ScopeMap

#: The four TTLs the paper plots in fig. 10.
PAPER_TTLS = (15, 47, 63, 127)


@dataclass
class HopCountStats:
    """Hop-count distribution for one TTL scope.

    Attributes:
        ttl: the scope's TTL.
        histogram: ``histogram[k]`` = number of (source, receiver) pairs
            at hop distance k within the scope, combined over sources.
        normalized: histogram scaled to sum to 1 (fig. 10's y axis).
        mean_hops: average hop count (the paper's "most frequent hop
            count" column carries fractional values such as 10.6 and
            3.1, i.e. it is a distribution-typical value; we report the
            mean and the integer mode separately).
        mode_hops: hop count with the largest histogram bin.
        max_hops: largest hop count observed within the scope.
    """

    ttl: int
    histogram: np.ndarray
    normalized: np.ndarray
    mean_hops: float
    mode_hops: int
    max_hops: int


def hop_count_distribution(
    topology: Topology,
    ttls: Sequence[int] = PAPER_TTLS,
    scope_map: "Optional[ScopeMap]" = None,
    sources: Optional[Sequence[int]] = None,
) -> Dict[int, HopCountStats]:
    """Combined hop-count histograms for each TTL scope.

    Args:
        topology: the network.
        ttls: TTL values to analyse.
        scope_map: precomputed :class:`ScopeMap` (computed if omitted).
        sources: subset of source nodes (all nodes if omitted; the
            paper uses all mrouters).
    """
    # Imported here to avoid a topology <-> routing import cycle.
    from repro.routing.scoping import ScopeMap
    from repro.routing.spt import ShortestPathForest

    if scope_map is None:
        scope_map = ScopeMap.from_topology(topology)
    forest = ShortestPathForest(topology, weight="metric")
    depths = forest.all_trees().hop_depths()
    n = topology.num_nodes
    src_list = list(range(n)) if sources is None else list(sources)

    need = scope_map.need[src_list]          # [S, n]
    depth = depths[src_list].astype(np.int64)  # [S, n]
    max_depth = int(depth.max()) if depth.size else 0

    results: Dict[int, HopCountStats] = {}
    for ttl in ttls:
        in_scope = (need <= ttl) & (depth > 0)
        hops = depth[in_scope]
        histogram = np.bincount(hops, minlength=max_depth + 1).astype(
            np.float64
        )
        total = histogram.sum()
        if total > 0:
            normalized = histogram / total
            mean_hops = float((np.arange(len(histogram)) * normalized).sum())
            mode_hops = int(histogram.argmax())
            max_hops = int(np.max(hops))
        else:
            normalized = histogram
            mean_hops = 0.0
            mode_hops = 0
            max_hops = 0
        results[ttl] = HopCountStats(
            ttl=ttl,
            histogram=histogram,
            normalized=normalized,
            mean_hops=mean_hops,
            mode_hops=mode_hops,
            max_hops=max_hops,
        )
    return results


#: Example-usage names from the paper's §2.4.1 table.
TTL_USAGE = {
    255: "DVMRP metric infinity",
    127: "Intercontinental",
    63: "International",
    47: "National",
    16: "Local",
    15: "Local",
}


def usage_table(stats: Dict[int, HopCountStats]) -> List[Dict[str, object]]:
    """Rows shaped like the paper's §2.4.1 table, highest TTL first."""
    rows = []
    for ttl in sorted(stats, reverse=True):
        entry = stats[ttl]
        rows.append({
            "ttl": ttl,
            "typical_hop_count": round(entry.mean_hops, 1),
            "max_hop_count": entry.max_hops,
            "example_usage": TTL_USAGE.get(ttl, ""),
        })
    return rows
