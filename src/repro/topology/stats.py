"""Topology summary statistics (mwatch-style reporting).

Quick structural summaries used by the CLI and by map sanity checks:
degree distribution, threshold census, metric census, hop diameter,
and a one-call report.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.routing.spt import ShortestPathForest
from repro.topology.graph import Topology


@dataclass
class TopologySummary:
    """Structural summary of one topology."""

    num_nodes: int
    num_links: int
    mean_degree: float
    max_degree: int
    threshold_census: Dict[int, int]
    metric_census: Dict[int, int]
    hop_diameter: int
    mean_hop_distance: float
    connected: bool


def summarize(topology: Topology) -> TopologySummary:
    """Compute a :class:`TopologySummary` for ``topology``."""
    degrees = [topology.degree(node) for node in topology.nodes()]
    thresholds = Counter(link.threshold for link in topology.links())
    metrics = Counter(link.metric for link in topology.links())
    connected = topology.is_connected()
    if topology.num_nodes > 1 and connected:
        depths = ShortestPathForest(topology).all_trees().hop_depths()
        positive = depths[depths > 0]
        hop_diameter = int(depths.max())
        mean_hops = float(positive.mean()) if positive.size else 0.0
    else:
        hop_diameter = 0
        mean_hops = 0.0
    return TopologySummary(
        num_nodes=topology.num_nodes,
        num_links=topology.num_links,
        mean_degree=float(np.mean(degrees)) if degrees else 0.0,
        max_degree=max(degrees) if degrees else 0,
        threshold_census=dict(sorted(thresholds.items())),
        metric_census=dict(sorted(metrics.items())),
        hop_diameter=hop_diameter,
        mean_hop_distance=mean_hops,
        connected=connected,
    )


def format_summary(summary: TopologySummary) -> str:
    """Plain-text rendering of a summary."""
    lines = [
        f"nodes:            {summary.num_nodes}",
        f"links:            {summary.num_links}",
        f"connected:        {summary.connected}",
        f"mean degree:      {summary.mean_degree:.2f}",
        f"max degree:       {summary.max_degree}",
        f"hop diameter:     {summary.hop_diameter}",
        f"mean hop dist:    {summary.mean_hop_distance:.2f}",
        "threshold census: " + ", ".join(
            f"{t}:{c}" for t, c in summary.threshold_census.items()
        ),
        "metric census:    " + ", ".join(
            f"{m}:{c}" for m, c in summary.metric_census.items()
        ),
    ]
    return "\n".join(lines)
