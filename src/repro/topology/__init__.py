"""Network topology substrate.

Provides the multicast-capable topology graph (nodes, links with DVMRP
metrics, TTL thresholds and propagation delays), the synthetic Mbone map
generator used in place of the paper's mcollect data, the Doar-style
grid-growth generator used for the request-response simulations of §3,
and hop-count analysis (paper fig. 10).
"""

from repro.topology.graph import Link, Topology
from repro.topology.doar import DoarParams, generate_doar
from repro.topology.hopcount import HopCountStats, hop_count_distribution
from repro.topology.mapfile import dump_map, load_map, parse_map, save_map
from repro.topology.mbone import MboneParams, generate_mbone
from repro.topology.mcollect import CollectionReport, McollectProbe

__all__ = [
    "CollectionReport",
    "DoarParams",
    "HopCountStats",
    "Link",
    "MboneParams",
    "McollectProbe",
    "Topology",
    "dump_map",
    "generate_doar",
    "generate_mbone",
    "hop_count_distribution",
    "load_map",
    "parse_map",
    "save_map",
]
