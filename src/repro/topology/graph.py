"""Multicast topology graph.

Nodes are dense integers ``0..n-1``.  Links are undirected and carry the
three attributes the paper's machinery needs:

* ``metric`` — the DVMRP routing metric (tunnel cost),
* ``threshold`` — the TTL threshold configured on the link (packets whose
  TTL, after the per-hop decrement, is below the threshold are dropped),
* ``delay`` — one-way propagation delay in seconds.

The class is intentionally small and explicit rather than a wrapper over
a general graph library: the routing and scoping code needs exactly these
attributes and nothing else, and keeping the storage flat (adjacency
dicts plus parallel arrays on export) makes the vectorised analyses easy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

#: TTL threshold carried by an ordinary (non-boundary) link.
DEFAULT_THRESHOLD = 1
#: DVMRP treats metric 32 as infinity (unreachable).
DVMRP_INFINITY = 32


@dataclass(frozen=True)
class Link:
    """An undirected link between two nodes.

    Attributes:
        u: lower-numbered endpoint.
        v: higher-numbered endpoint.
        metric: DVMRP routing metric, ``1 <= metric < DVMRP_INFINITY``.
        threshold: TTL threshold (``>= 1``); 1 means no scoping boundary.
        delay: one-way propagation delay in seconds.
    """

    u: int
    v: int
    metric: int = 1
    threshold: int = DEFAULT_THRESHOLD
    delay: float = 0.001

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError(f"self-loop at node {self.u}")
        if not 1 <= self.metric < DVMRP_INFINITY:
            raise ValueError(
                f"metric {self.metric} outside [1, {DVMRP_INFINITY})"
            )
        if self.threshold < 1 or self.threshold > 255:
            raise ValueError(f"threshold {self.threshold} outside [1, 255]")
        if self.delay < 0:
            raise ValueError(f"negative delay {self.delay}")

    def other(self, node: int) -> int:
        """Return the endpoint that is not ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ValueError(f"node {node} is not an endpoint of {self}")


class Topology:
    """A multicast internetwork of nodes and attribute-carrying links."""

    def __init__(self) -> None:
        self._adj: List[Dict[int, Link]] = []
        self._positions: List[Optional[Tuple[float, float]]] = []
        self._labels: List[Optional[str]] = []
        self._num_links = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, position: Optional[Tuple[float, float]] = None,
                 label: Optional[str] = None) -> int:
        """Add a node; returns its id."""
        self._adj.append({})
        self._positions.append(position)
        self._labels.append(label)
        return len(self._adj) - 1

    def add_link(self, u: int, v: int, metric: int = 1,
                 threshold: int = DEFAULT_THRESHOLD,
                 delay: float = 0.001) -> Link:
        """Add an undirected link; replaces any existing (u, v) link."""
        self._check_node(u)
        self._check_node(v)
        lo, hi = (u, v) if u < v else (v, u)
        link = Link(lo, hi, metric=metric, threshold=threshold, delay=delay)
        if v not in self._adj[u]:
            self._num_links += 1
        self._adj[u][v] = link
        self._adj[v][u] = link
        return link

    def _check_node(self, node: int) -> None:
        if not 0 <= node < len(self._adj):
            raise KeyError(f"unknown node {node}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_links(self) -> int:
        return self._num_links

    def nodes(self) -> range:
        return range(len(self._adj))

    def neighbors(self, node: int) -> Iterator[int]:
        self._check_node(node)
        return iter(self._adj[node])

    def degree(self, node: int) -> int:
        self._check_node(node)
        return len(self._adj[node])

    def link(self, u: int, v: int) -> Link:
        """Return the link between ``u`` and ``v``.

        Raises:
            KeyError: if no such link exists.
        """
        self._check_node(u)
        link = self._adj[u].get(v)
        if link is None:
            raise KeyError(f"no link between {u} and {v}")
        return link

    def has_link(self, u: int, v: int) -> bool:
        self._check_node(u)
        return v in self._adj[u]

    def links(self) -> Iterator[Link]:
        """Iterate over each undirected link exactly once."""
        for u, nbrs in enumerate(self._adj):
            for v, link in nbrs.items():
                if u < v:
                    yield link

    def position(self, node: int) -> Optional[Tuple[float, float]]:
        self._check_node(node)
        return self._positions[node]

    def label(self, node: int) -> Optional[str]:
        self._check_node(node)
        return self._labels[node]

    def set_label(self, node: int, label: str) -> None:
        self._check_node(node)
        self._labels[node] = label

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def connected_component(self, start: int = 0) -> List[int]:
        """Nodes reachable from ``start`` (breadth-first)."""
        self._check_node(start)
        seen = [False] * self.num_nodes
        seen[start] = True
        frontier = [start]
        order = [start]
        while frontier:
            nxt: List[int] = []
            for node in frontier:
                for nbr in self._adj[node]:
                    if not seen[nbr]:
                        seen[nbr] = True
                        nxt.append(nbr)
                        order.append(nbr)
            frontier = nxt
        return order

    def is_connected(self) -> bool:
        if self.num_nodes == 0:
            return True
        return len(self.connected_component(0)) == self.num_nodes

    def largest_connected_subgraph(self) -> "Topology":
        """A copy restricted to the largest connected component.

        Mirrors the paper's pre-processing: "Any disconnected subtrees of
        the network were removed".  Node ids are renumbered densely.
        """
        remaining = set(self.nodes())
        best: List[int] = []
        while remaining:
            component = self._component_within(remaining)
            if len(component) > len(best):
                best = component
            remaining -= set(component)
        mapping = {old: new for new, old in enumerate(sorted(best))}
        sub = Topology()
        for old in sorted(best):
            sub.add_node(self._positions[old], self._labels[old])
        for link in self.links():
            if link.u in mapping and link.v in mapping:
                sub.add_link(mapping[link.u], mapping[link.v],
                             metric=link.metric, threshold=link.threshold,
                             delay=link.delay)
        return sub

    def _component_within(self, remaining: set) -> List[int]:
        start = next(iter(remaining))
        seen = {start}
        frontier = [start]
        order = [start]
        while frontier:
            nxt: List[int] = []
            for node in frontier:
                for nbr in self._adj[node]:
                    if nbr in remaining and nbr not in seen:
                        seen.add(nbr)
                        nxt.append(nbr)
                        order.append(nbr)
            frontier = nxt
        return order

    # ------------------------------------------------------------------
    # Array export (for scipy/numpy based routing)
    # ------------------------------------------------------------------
    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                   np.ndarray, np.ndarray]:
        """Return (us, vs, metrics, thresholds, delays) for every link.

        Each undirected link appears once; callers symmetrise as needed.
        """
        us, vs, metrics, thresholds, delays = [], [], [], [], []
        for link in self.links():
            us.append(link.u)
            vs.append(link.v)
            metrics.append(link.metric)
            thresholds.append(link.threshold)
            delays.append(link.delay)
        return (
            np.asarray(us, dtype=np.int32),
            np.asarray(vs, dtype=np.int32),
            np.asarray(metrics, dtype=np.int32),
            np.asarray(thresholds, dtype=np.int32),
            np.asarray(delays, dtype=np.float64),
        )

    def __repr__(self) -> str:
        return f"Topology(nodes={self.num_nodes}, links={self.num_links})"
