"""Topology map files — an mwatch-style text dump format.

The paper's topology came from the mcollect/mwatch monitor, which
dumped the Mbone as a text map of mrouters and tunnels with metrics
and thresholds.  This module defines an equivalent plain-text format
so generated maps can be saved, diffed, shipped with papers, and
reloaded:

    # repro-map 1
    node 0 label north-america/hub
    node 1 label north-america/usa/bb0 pos 0.25 0.5
    link 0 1 metric 2 threshold 64 delay 0.0123

Unknown trailing tokens on a line are rejected (the format is ours);
comment lines start with ``#``.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.topology.graph import Topology

HEADER = "# repro-map 1"


def dump_map(topology: Topology) -> str:
    """Serialise a topology to map-file text."""
    lines: List[str] = [HEADER]
    for node in topology.nodes():
        parts = [f"node {node}"]
        label = topology.label(node)
        if label is not None:
            parts.append(f"label {label}")
        position = topology.position(node)
        if position is not None:
            parts.append(f"pos {position[0]!r} {position[1]!r}")
        lines.append(" ".join(parts))
    for link in topology.links():
        lines.append(
            f"link {link.u} {link.v} metric {link.metric} "
            f"threshold {link.threshold} delay {link.delay!r}"
        )
    return "\n".join(lines) + "\n"


def save_map(topology: Topology, path: Union[str, Path]) -> None:
    """Write :func:`dump_map` output to ``path``."""
    Path(path).write_text(dump_map(topology))


def parse_map(text: str) -> Topology:
    """Parse map-file text back into a topology.

    Raises:
        ValueError: on malformed input (wrong header, out-of-order
            node ids, unknown fields, bad numbers).
    """
    lines = [line.strip() for line in text.splitlines()]
    content = [line for line in lines if line and
               not (line.startswith("#") and line != HEADER)]
    if not content or content[0] != HEADER:
        raise ValueError(f"missing map header {HEADER!r}")
    topo = Topology()
    for line in content[1:]:
        tokens = line.split()
        if tokens[0] == "node":
            _parse_node(topo, tokens)
        elif tokens[0] == "link":
            _parse_link(topo, tokens)
        else:
            raise ValueError(f"unknown map line: {line!r}")
    return topo


def load_map(path: Union[str, Path]) -> Topology:
    """Read and parse a map file."""
    return parse_map(Path(path).read_text())


def _parse_node(topo: Topology, tokens: List[str]) -> None:
    if len(tokens) < 2:
        raise ValueError(f"malformed node line: {' '.join(tokens)!r}")
    node_id = int(tokens[1])
    if node_id != topo.num_nodes:
        raise ValueError(
            f"node ids must be dense and ordered; expected "
            f"{topo.num_nodes}, got {node_id}"
        )
    label: Optional[str] = None
    position: Optional[Tuple[float, float]] = None
    index = 2
    while index < len(tokens):
        key = tokens[index]
        if key == "label":
            if index + 1 >= len(tokens):
                raise ValueError("label without value")
            label = tokens[index + 1]
            index += 2
        elif key == "pos":
            if index + 2 >= len(tokens):
                raise ValueError("pos needs two coordinates")
            position = (float(tokens[index + 1]),
                        float(tokens[index + 2]))
            index += 3
        else:
            raise ValueError(f"unknown node field {key!r}")
    topo.add_node(position=position, label=label)


def _parse_link(topo: Topology, tokens: List[str]) -> None:
    if len(tokens) < 3:
        raise ValueError(f"malformed link line: {' '.join(tokens)!r}")
    u, v = int(tokens[1]), int(tokens[2])
    metric, threshold, delay = 1, 1, 0.001
    index = 3
    while index < len(tokens):
        key = tokens[index]
        if index + 1 >= len(tokens):
            raise ValueError(f"link field {key!r} without value")
        value = tokens[index + 1]
        if key == "metric":
            metric = int(value)
        elif key == "threshold":
            threshold = int(value)
        elif key == "delay":
            delay = float(value)
        else:
            raise ValueError(f"unknown link field {key!r}")
        index += 2
    topo.add_link(u, v, metric=metric, threshold=threshold, delay=delay)
