"""ScopeSanitizer — TTL scope containment of every delivery.

The paper's whole allocation argument rests on scoping actually
confining traffic: "a session's scope limits which other sessions it
can clash with" (§2.1).  The simulation enforces scope in the routing
layer (:func:`repro.sim.adapters.scoped_receiver_map` consults the
:class:`~repro.routing.scoping.ScopeMap`); this checker cross-checks
the *outcome* — every packet the network model actually delivers must
land at a node the scope map says can hear the (source, ttl) pair.  A
receiver map that leaks across a threshold, or a TTL rewritten in
flight, shows up here as:

* **SAN211 scope-violation** — a packet was delivered at a node whose
  minimum required TTL from the source exceeds the packet's TTL.

Scenarios without TTL scoping semantics (full-mesh kernels) run with
``scope_map=None``, which disables the check.
"""

from __future__ import annotations

from typing import Optional

from repro.routing.scoping import ScopeMap


class ScopeSanitizer:
    """Checks delivered packets against a topology's scope map."""

    def __init__(self, context,
                 scope_map: Optional[ScopeMap] = None) -> None:
        self._context = context
        self.scope_map = scope_map
        self.deliveries_checked = 0

    def on_packet_delivered(self, receiver: int, packet) -> None:
        if self.scope_map is None:
            return
        self.deliveries_checked += 1
        if not self.scope_map.can_hear(receiver, packet.source,
                                       packet.ttl):
            need = int(self.scope_map.need[packet.source, receiver])
            self._context.record(
                "SAN211", "scope-violation",
                f"packet from node {packet.source} with ttl="
                f"{packet.ttl} delivered at node {receiver}, which "
                f"needs ttl >= {need} to be in scope",
            )
