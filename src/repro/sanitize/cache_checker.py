"""CacheSanitizer — SAP caches versus the announcers' ground truth.

Announce/listen is lossy by design, so a cache may legitimately *lag*
the announcer (missed re-announcements, missed deletions).  Two states
can never arise from loss alone, only from corruption of the cache or
of the supersede logic (:meth:`repro.sap.cache.SessionCache.observe`):

* **SAN231 cache-divergence** — a cached entry carries the *same*
  description version as the originator's live session but a
  different address.  Equal version implies an identical SDP payload,
  so the mapped address index must match; a mismatch means the cache
  (or the address mapping) was corrupted.
* **SAN232 cache-future-version** — a cached entry's version exceeds
  the originator's own current version.  Versions only ever increase
  at the originator (clash retreats bump them), so nobody can have
  heard a version the originator has not reached.

The check runs after convergence (``check()``), not per event —
matching how the experiments themselves validate end state (e.g.
``run_sap_in_the_loop`` counting residual clashing pairs).
"""

from __future__ import annotations

from typing import Iterable, List, Optional


class CacheSanitizer:
    """Compares tracked directories' caches against announcer state."""

    def __init__(self, context) -> None:
        self._context = context
        self._directories: List[object] = []
        self.entries_checked = 0

    def track(self, directory) -> None:
        if directory not in self._directories:
            self._directories.append(directory)

    def check(self, directories: Optional[Iterable] = None) -> int:
        """Cross-check every cache entry; returns entries checked."""
        dirs = (list(directories) if directories is not None
                else self._directories)
        by_node = {d.node: d for d in dirs}
        checked = 0
        for directory in dirs:
            for entry in directory.cache.entries():
                if entry.description is None:
                    continue
                owner = by_node.get(entry.message.origin)
                if owner is None:
                    continue
                own = self._matching_own(owner, entry)
                if own is None:
                    # Withdrawn at the owner; a lingering entry is a
                    # legal consequence of a lost DELETE.
                    continue
                checked += 1
                self._check_entry(directory, owner, entry, own)
        self.entries_checked += checked
        return checked

    @staticmethod
    def _matching_own(owner, entry):
        origin_key = entry.description.origin_key()
        for own in owner.own_sessions():
            if own.description.origin_key() == origin_key:
                return own
        return None

    def _check_entry(self, directory, owner, entry, own) -> None:
        cached_version = entry.description.version
        true_version = own.description.version
        if cached_version > true_version:
            self._context.record(
                "SAN232", "cache-future-version",
                f"node {directory.node} caches version "
                f"{cached_version} of node {owner.node}'s session "
                f"{own.description.session_id}, ahead of the "
                f"originator's version {true_version}",
            )
            return
        if (cached_version == true_version
                and entry.address_index is not None
                and entry.address_index != own.session.address):
            self._context.record(
                "SAN231", "cache-divergence",
                f"node {directory.node} caches address "
                f"{entry.address_index} for node {owner.node}'s "
                f"session {own.description.session_id} v"
                f"{cached_version}, but the originator holds address "
                f"{own.session.address} at the same version",
            )
