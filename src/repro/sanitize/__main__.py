"""Entry point for ``python -m repro.sanitize``."""

import sys

from repro.sanitize.cli import main

sys.exit(main())
