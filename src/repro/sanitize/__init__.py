"""Opt-in runtime sanitizers for the simulation stack.

An ASan/TSan-style instrumentation layer: a
:class:`~repro.sanitize.context.SanitizerContext` attaches shadow
state to the event kernel, the network model, the session directories
and the allocators, and records every broken invariant as a
:class:`~repro.sanitize.report.Violation`.  When no context is
attached the hook points cost one ``is not None`` check — sanitizers
off means zero measurable overhead.

Checkers:

* :class:`~repro.sanitize.address_checker.AddressSanitizer` —
  double-allocate, out-of-declared-bounds allocation, free of
  unallocated sessions, announce-after-withdrawal.
* :class:`~repro.sanitize.scope_checker.ScopeSanitizer` — packet
  delivered outside the session's TTL scope.
* :class:`~repro.sanitize.scheduler_checker.SchedulerSanitizer` —
  clock monotonicity, past scheduling, cancelled handles firing,
  re-entrant ``run()``.
* :class:`~repro.sanitize.cache_checker.CacheSanitizer` — SAP caches
  diverging from announcer ground truth after convergence.

Run scenarios from the command line::

    python -m repro.sanitize              # all scenarios
    python -m repro.sanitize kernel --format json
    python -m repro.lint src --sanitize   # merged with static lint
"""

from repro.sanitize.address_checker import AddressSanitizer
from repro.sanitize.cache_checker import CacheSanitizer
from repro.sanitize.context import SanitizerContext
from repro.sanitize.report import (
    VIOLATION_CODES,
    Violation,
    render_json,
    render_text,
)
from repro.sanitize.scenarios import (
    SCENARIO_NAMES,
    ScenarioResult,
    run_all_scenarios,
    run_scenario,
)
from repro.sanitize.scheduler_checker import SchedulerSanitizer
from repro.sanitize.scope_checker import ScopeSanitizer

__all__ = [
    "AddressSanitizer",
    "CacheSanitizer",
    "SanitizerContext",
    "SchedulerSanitizer",
    "ScopeSanitizer",
    "SCENARIO_NAMES",
    "ScenarioResult",
    "VIOLATION_CODES",
    "Violation",
    "render_json",
    "render_text",
    "run_all_scenarios",
    "run_scenario",
]
