"""Sanitizer violation model and reporters.

A :class:`Violation` is the runtime analogue of a lint
:class:`~repro.lint.engine.Finding`: instead of a source location it
carries the simulated time at which the invariant broke.  The bridge
:meth:`Violation.to_finding` maps violations into the lint report
model so ``repro lint --sanitize`` and ``python -m repro.sanitize
--format json`` emit exactly the same JSON schema as the static
linter (``{"count": N, "findings": [...]}``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.lint.engine import Finding
from repro.lint.report import render_json as _lint_render_json

#: Registry of (code, rule) pairs the checkers can emit, mirroring the
#: SIM1xx static-rule registry.  SAN20x: address shadow state; SAN21x:
#: scope; SAN22x: scheduler/clock; SAN23x: directory caches.
VIOLATION_CODES = {
    "SAN201": "double-allocate",
    "SAN202": "alloc-out-of-bounds",
    "SAN203": "free-of-unallocated",
    "SAN204": "use-after-expiry",
    "SAN211": "scope-violation",
    "SAN221": "clock-backwards",
    "SAN222": "past-schedule",
    "SAN223": "cancelled-handle-fired",
    "SAN224": "reentrant-run",
    "SAN231": "cache-divergence",
    "SAN232": "cache-future-version",
}


@dataclass(frozen=True)
class Violation:
    """One broken runtime invariant at one simulated instant."""

    code: str
    rule: str
    message: str
    time: float = 0.0

    def format(self) -> str:
        return (f"t={self.time:.4f}: {self.code} [{self.rule}] "
                f"{self.message}")

    def to_finding(self, path: str) -> Finding:
        """Map into the lint report model.

        Runtime violations have no source location; the convention is
        a pseudo-path like ``<sanitize:kernel>`` with line 0.
        """
        return Finding(
            path=path, line=0, col=0, code=self.code, rule=self.rule,
            message=f"t={self.time:.4f}: {self.message}",
        )


def render_text(violations: Sequence[Violation],
                scenario: str = "") -> str:
    """One line per violation plus a summary line (lint-style)."""
    lines: List[str] = [violation.format() for violation in violations]
    count = len(violations)
    label = f"sanitize[{scenario}]" if scenario else "sanitize"
    if count == 0:
        lines.append(f"{label}: clean (0 violations)")
    else:
        by_rule: dict = {}
        for violation in violations:
            by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
        breakdown = ", ".join(
            f"{rule}={n}" for rule, n in sorted(by_rule.items())
        )
        noun = "violation" if count == 1 else "violations"
        lines.append(f"{label}: {count} {noun} ({breakdown})")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation],
                scenario: str = "") -> str:
    """The lint JSON schema, with pseudo-paths for locations."""
    path = f"<sanitize:{scenario}>" if scenario else "<sanitize>"
    return _lint_render_json(
        [violation.to_finding(path) for violation in violations]
    )
