"""AddressSanitizer — shadow state over allocations and sessions.

The address space is the heap of this simulation: ``allocate`` is
malloc, a session withdrawal is free, and a stale announcement of a
withdrawn session is a use-after-free.  This checker keeps a shadow
map of live sessions per directory and checks four invariants:

* **SAN201 double-allocate** — an *informed*, non-forced allocation
  returned an address already present in the allocator's own visible
  set.  Cross-site clashes against invisible sessions are expected
  (the clash protocol exists to repair them, §3); returning an address
  the allocator could see in use is an algorithmic bug.
* **SAN202 alloc-out-of-bounds** — the address falls outside every
  range the allocator itself declares for the (ttl, visible) view via
  :meth:`~repro.core.allocator.Allocator.declared_ranges`; a
  partitioned allocator escaping its band defeats the entire IPRMA
  argument (§2.1).
* **SAN203 free-of-unallocated** — a directory withdrew (or moved) a
  session the shadow map does not hold: double delete or delete of a
  never-created session.
* **SAN204 use-after-expiry** — an ANNOUNCE for a withdrawn session
  was sent *by its originator*.  Third-party re-announcements are
  exempt: phase 3 of the clash protocol (proxy defence) legitimately
  re-announces other sites' cached sessions.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.sap.messages import SapMessage, SapMessageType

#: Shadow key for a locally created session.
SessionKey = Tuple[int, int]  # (node, sdp session id)


class AddressSanitizer:
    """Shadow allocation state fed by directory and allocator hooks."""

    def __init__(self, context) -> None:
        self._context = context
        self._live: Dict[SessionKey, object] = {}
        #: announcement key -> shadow key of the withdrawn session.
        self._withdrawn: Dict[Tuple[int, int], SessionKey] = {}

    # ------------------------------------------------------------------
    # Allocator hook (installed by SanitizerContext.watch_allocator)
    # ------------------------------------------------------------------
    def on_allocate(self, allocator, node, ttl, visible, result) -> None:
        where = "" if node is None else f" at node {node}"
        if (result.informed and not result.forced and len(visible)
                and bool(np.any(visible.addresses == result.address))):
            self._context.record(
                "SAN201", "double-allocate",
                f"{allocator.name}{where}: informed allocation "
                f"returned address {result.address} already visible "
                f"in use (ttl={ttl})",
            )
        ranges = allocator.declared_ranges(ttl, visible)
        if not any(lo <= result.address < hi for lo, hi in ranges):
            self._context.record(
                "SAN202", "alloc-out-of-bounds",
                f"{allocator.name}{where}: address {result.address} "
                f"outside declared ranges {ranges} (ttl={ttl})",
            )

    # ------------------------------------------------------------------
    # Directory hooks (dispatched by SanitizerContext)
    # ------------------------------------------------------------------
    def on_session_created(self, directory, own) -> None:
        key = (directory.node, own.description.session_id)
        self._live[key] = own

    def on_session_withdrawn(self, directory, own) -> None:
        key = (directory.node, own.description.session_id)
        if key not in self._live:
            self._context.record(
                "SAN203", "free-of-unallocated",
                f"node {directory.node} withdrew session "
                f"{own.description.session_id} that was never "
                f"allocated (or was already withdrawn)",
            )
        else:
            del self._live[key]
        self._withdrawn[own.message_key()] = key

    def on_session_moved(self, directory, own, old_address) -> None:
        key = (directory.node, own.description.session_id)
        if key not in self._live:
            self._context.record(
                "SAN203", "free-of-unallocated",
                f"node {directory.node} moved session "
                f"{own.description.session_id} (address "
                f"{old_address} -> {own.session.address}) that the "
                f"shadow state does not hold",
            )
            self._live[key] = own

    # ------------------------------------------------------------------
    # Network hook (dispatched by SanitizerContext.on_send)
    # ------------------------------------------------------------------
    def on_packet_sent(self, packet) -> None:
        payload = packet.payload
        if not isinstance(payload, (bytes, bytearray)):
            return
        try:
            message = SapMessage.decode(bytes(payload))
        except ValueError:
            # Sealed/authenticated or non-SAP payloads are opaque.
            return
        if message.msg_type is not SapMessageType.ANNOUNCE:
            return
        key = self._withdrawn.get(message.key())
        if key is not None and packet.source == message.origin:
            node, session_id = key
            self._context.record(
                "SAN204", "use-after-expiry",
                f"node {node} announced withdrawn session "
                f"{session_id} (origin re-announce after deletion)",
            )

    # ------------------------------------------------------------------
    @property
    def live_count(self) -> int:
        """Sessions currently held live in the shadow map."""
        return len(self._live)
