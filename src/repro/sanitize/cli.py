"""``python -m repro.sanitize`` — run sanitized scenarios.

Exit status 0 when every scenario is clean, 1 when any violation was
recorded, 2 on usage errors — matching ``python -m repro.lint``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint.registry import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    add_report_arguments,
    render_registry,
)
from repro.lint.report import render_github as lint_render_github
from repro.lint.report import render_json as lint_render_json
from repro.sanitize.report import render_text
from repro.sanitize.scenarios import (
    SCENARIO_NAMES,
    run_scenario,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.sanitize",
        description="shadow-state simulation sanitizer: run scenarios "
                    "under ASan-style runtime invariant checking",
    )
    parser.add_argument(
        "scenarios", nargs="*", default=["all"],
        help=f"scenarios to run: {', '.join(SCENARIO_NAMES)}, or "
             f"'all' (default)",
    )
    add_report_arguments(parser)
    parser.add_argument("--seed", type=int, default=1998,
                        help="scenario seed")
    parser.add_argument("--list-scenarios", action="store_true",
                        help="print the scenario registry and exit")
    return parser


def list_scenarios() -> str:
    from repro.sanitize import scenarios as module

    lines = []
    for line in (module.__doc__ or "").splitlines():
        stripped = line.strip()
        if stripped.startswith("* "):
            lines.append(stripped[2:])
        elif lines and stripped and not stripped.startswith("*"):
            lines[-1] += " " + stripped
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_registry())
        return EXIT_CLEAN
    if args.list_scenarios:
        print(list_scenarios())
        return EXIT_CLEAN
    names: List[str] = []
    for name in args.scenarios:
        if name == "all":
            names.extend(SCENARIO_NAMES)
        else:
            names.append(name)
    results = []
    for name in names:
        try:
            results.append(run_scenario(name, seed=args.seed))
        except ValueError as exc:
            print(f"repro.sanitize: {exc}", file=sys.stderr)
            return EXIT_USAGE
    if args.format in ("json", "github"):
        findings = [
            violation.to_finding(f"<sanitize:{result.name}>")
            for result in results
            for violation in result.violations
        ]
        if args.format == "json":
            print(lint_render_json(findings))
        else:
            output = lint_render_github(findings)
            if output:
                print(output)
    else:
        for result in results:
            print(result.summary)
            print(render_text(result.violations, result.name))
        total = sum(len(result.violations) for result in results)
        scenarios_run = len(results)
        if total == 0:
            print(f"sanitize: {scenarios_run} scenario(s) clean")
        else:
            print(f"sanitize: {total} violation(s) across "
                  f"{scenarios_run} scenario(s)")
    return (EXIT_CLEAN if all(result.clean for result in results)
            else EXIT_FINDINGS)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
