"""SanitizerContext — attach every checker to a running simulation.

One context owns one violation list and one instance of each checker.
Attachment is explicit and opt-in, mirroring how ASan instruments a
binary only when compiled in:

* :meth:`attach_scheduler` installs the
  :class:`~repro.sanitize.scheduler_checker.SchedulerSanitizer` as the
  scheduler's and clock's ``_monitor``;
* :meth:`attach_network` installs the context itself as the network
  model's ``_monitor`` (it fans ``on_send`` out to the address checker
  and ``on_deliver`` to the scope checker);
* :meth:`watch_directory` hooks a
  :class:`~repro.sap.directory.SessionDirectory`'s lifecycle events,
  wraps its allocator, seeds the shadow state with any pre-existing
  sessions, and registers the directory for the convergence-time cache
  check;
* :meth:`watch_allocator` wraps a bare allocator (for allocator-only
  experiments such as the fig. 12 steady-state churn).

When no context is attached, every hook point in the kernel is a
single ``is not None`` attribute check — the zero-cost-when-off
contract.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.routing.scoping import ScopeMap
from repro.sanitize.address_checker import AddressSanitizer
from repro.sanitize.cache_checker import CacheSanitizer
from repro.sanitize.report import (
    VIOLATION_CODES,
    Violation,
    render_json,
    render_text,
)
from repro.sanitize.scheduler_checker import SchedulerSanitizer
from repro.sanitize.scope_checker import ScopeSanitizer


class SanitizerContext:
    """Shared state and dispatch hub for all four checkers.

    Args:
        scope_map: topology scope map for the delivery-containment
            check; None disables ScopeSanitizer (scenarios without
            TTL scoping semantics).
        scenario: label used in reports and pseudo-paths.
    """

    def __init__(self, scope_map: Optional[ScopeMap] = None,
                 scenario: str = "") -> None:
        self.scenario = scenario
        self.violations: List[Violation] = []
        self.scheduler_sanitizer = SchedulerSanitizer(self)
        self.address_sanitizer = AddressSanitizer(self)
        self.scope_sanitizer = ScopeSanitizer(self, scope_map)
        self.cache_sanitizer = CacheSanitizer(self)
        self._scheduler = None

    # ------------------------------------------------------------------
    # Violation collection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._scheduler.now if self._scheduler is not None else 0.0

    def record(self, code: str, rule: str, message: str,
               time: Optional[float] = None) -> None:
        """Append one violation; checkers call this."""
        if VIOLATION_CODES.get(code) != rule:
            raise ValueError(f"unregistered violation {code}/{rule}")
        when = self.now if time is None else time
        self.violations.append(Violation(code, rule, message, time=when))

    @property
    def clean(self) -> bool:
        return not self.violations

    def render_text(self) -> str:
        return render_text(self.violations, self.scenario)

    def render_json(self) -> str:
        return render_json(self.violations, self.scenario)

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach_scheduler(self, scheduler):
        """Monitor a scheduler and its clock; returns the scheduler."""
        self._scheduler = scheduler
        scheduler._monitor = self.scheduler_sanitizer
        scheduler.clock._monitor = self.scheduler_sanitizer
        return scheduler

    def attach_network(self, network):
        """Monitor a network model's sends/deliveries; returns it."""
        network._monitor = self
        return network

    def watch_directory(self, directory):
        """Shadow a session directory end to end; returns it."""
        directory._sanitizer = self
        self.watch_allocator(directory.allocator, node=directory.node)
        for own in directory.own_sessions():
            self.address_sanitizer.on_session_created(directory, own)
        self.cache_sanitizer.track(directory)
        return directory

    def watch_allocator(self, allocator, node: Optional[int] = None):
        """Wrap ``allocator.allocate`` with shadow checks; returns it."""
        if getattr(allocator, "_sanitize_watched", False):
            return allocator
        inner = allocator.allocate

        def allocate(ttl, visible):
            result = inner(ttl, visible)
            self.address_sanitizer.on_allocate(allocator, node, ttl,
                                               visible, result)
            return result

        allocator.allocate = allocate
        allocator._sanitize_watched = True
        return allocator

    # ------------------------------------------------------------------
    # NetworkModel monitor interface
    # ------------------------------------------------------------------
    def on_send(self, packet) -> None:
        self.address_sanitizer.on_packet_sent(packet)

    def on_deliver(self, receiver: int, packet) -> None:
        self.scope_sanitizer.on_packet_delivered(receiver, packet)

    # ------------------------------------------------------------------
    # SessionDirectory sanitizer interface
    # ------------------------------------------------------------------
    def on_session_created(self, directory, own) -> None:
        self.address_sanitizer.on_session_created(directory, own)

    def on_session_withdrawn(self, directory, own) -> None:
        self.address_sanitizer.on_session_withdrawn(directory, own)

    def on_session_moved(self, directory, own, old_address) -> None:
        self.address_sanitizer.on_session_moved(directory, own,
                                                old_address)

    # ------------------------------------------------------------------
    # Convergence-time checks
    # ------------------------------------------------------------------
    def check_convergence(self,
                          directories: Optional[Iterable] = None) -> int:
        """Run the cache cross-check; returns entries checked."""
        return self.cache_sanitizer.check(directories)

    def __repr__(self) -> str:
        label = self.scenario or "unnamed"
        return (f"SanitizerContext({label!r}, "
                f"violations={len(self.violations)})")
