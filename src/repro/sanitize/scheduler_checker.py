"""SchedulerSanitizer — kernel invariants of the event machinery.

Installed as the ``_monitor`` of an
:class:`~repro.sim.events.EventScheduler` and its
:class:`~repro.sim.clock.SimClock`.  The kernel already *rejects* most
of these misuses with exceptions; the monitor hooks fire before those
raises, so a sanitized run records the violation even when the kernel
refuses the operation — exactly like ASan reporting a bad access the
MMU would also have trapped.

Invariants:

* **SAN221 clock-backwards** — the clock was asked to move to an
  earlier time.  Event timestamps must be non-decreasing or causality
  (and every trace comparison) breaks.
* **SAN222 past-schedule** — a callback was scheduled before the
  current simulated time, usually a negative-delay arithmetic slip.
* **SAN223 cancelled-handle-fired** — a cancelled
  :class:`~repro.sim.events.EventHandle` executed anyway; cancellation
  is the only teardown mechanism components have, so this is the
  simulation analogue of use-after-free.
* **SAN224 reentrant-run** — ``run()`` was entered from inside an
  event callback; the inner loop would drain events the outer loop
  believes are still pending.
"""

from __future__ import annotations


class SchedulerSanitizer:
    """Monitor for :class:`EventScheduler` / :class:`SimClock` hooks."""

    def __init__(self, context) -> None:
        self._context = context
        self._run_depth = 0

    # ------------------------------------------------------------------
    # SimClock hook
    # ------------------------------------------------------------------
    def on_clock_advance(self, current: float, target: float) -> None:
        if target < current:
            self._context.record(
                "SAN221", "clock-backwards",
                f"clock asked to move backwards from t={current} "
                f"to t={target}",
                time=current,
            )

    # ------------------------------------------------------------------
    # EventScheduler hooks
    # ------------------------------------------------------------------
    def on_past_schedule(self, when: float, now: float) -> None:
        self._context.record(
            "SAN222", "past-schedule",
            f"callback scheduled at t={when} before current time "
            f"t={now}",
            time=now,
        )

    def on_fire(self, handle) -> None:
        if handle.cancelled:
            self._context.record(
                "SAN223", "cancelled-handle-fired",
                f"cancelled event (scheduled for t={handle.when}) "
                f"fired anyway",
                time=handle.when,
            )

    def on_run_enter(self, now: float) -> None:
        if self._run_depth > 0:
            self._context.record(
                "SAN224", "reentrant-run",
                "run() entered re-entrantly from inside an event "
                "callback",
                time=now,
            )
        self._run_depth += 1

    def on_run_exit(self) -> None:
        self._run_depth = max(0, self._run_depth - 1)
