"""Named sanitized scenarios for ``python -m repro.sanitize``.

Each scenario builds a fresh :class:`SanitizerContext`, runs one of
the repo's existing harnesses under it, and returns the context plus a
one-line summary.  They are the runtime analogue of linting the tree:
a clean pass means every checked invariant held over a real execution.

* ``kernel`` — the determinism harness scenario (lossy jittered
  full-mesh, partition+heal, expiries) under the scheduler, address
  and cache sanitizers.  No scope map: a full mesh has no TTL
  scoping semantics.
* ``clash`` — the full-stack SAP-in-the-loop experiment (§4
  exponential back-off announcements, three-phase clash protocol) on
  a synthetic Mbone, under all four sanitizers.
* ``steady`` — the fig. 12 steady-state churn with the adaptive
  AIPR-1 allocator, allocator-shadowing only (no event kernel runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sanitize.context import SanitizerContext

#: Scenario registry order; ``all`` expands to this.
SCENARIO_NAMES = ("kernel", "clash", "steady")


@dataclass
class ScenarioResult:
    """One sanitized run: its context and a human summary line."""

    name: str
    context: SanitizerContext
    summary: str

    @property
    def violations(self):
        return self.context.violations

    @property
    def clean(self) -> bool:
        return self.context.clean


def _run_kernel(seed: int) -> ScenarioResult:
    from repro.lint.determinism import run_scenario as run_determinism

    context = SanitizerContext(scenario="kernel")
    trace = run_determinism(seed=seed, sanitizer=context)
    checked = context.check_convergence()
    summary = (f"kernel: trace={trace.count(chr(10))} lines, "
               f"cache entries cross-checked={checked}")
    return ScenarioResult("kernel", context, summary)


def _run_clash(seed: int) -> ScenarioResult:
    from repro.experiments.sap_in_the_loop import (
        SapLoopConfig,
        run_sap_in_the_loop,
    )
    from repro.routing.scoping import ScopeMap
    from repro.topology.mbone import MboneParams, generate_mbone

    topology = generate_mbone(MboneParams(total_nodes=60, seed=seed))
    scope_map = ScopeMap.from_topology(topology)
    context = SanitizerContext(scope_map=scope_map, scenario="clash")
    config = SapLoopConfig(
        num_directories=8, sessions_per_directory=3, space_size=64,
        loss=0.02, strategy="backoff", inter_arrival=5.0,
        settle_time=300.0, seed=seed,
    )
    result = run_sap_in_the_loop(topology, scope_map, config,
                                 sanitizer=context)
    summary = (f"clash: allocations={result.allocations}, "
               f"moves={result.address_changes}, residual clashing "
               f"pairs={result.residual_clashing_pairs}, deliveries "
               f"scope-checked="
               f"{context.scope_sanitizer.deliveries_checked}")
    return ScenarioResult("clash", context, summary)


def _run_steady(seed: int) -> ScenarioResult:
    from repro.core.adaptive import AdaptiveIprmaAllocator
    from repro.experiments.steady_state import (
        steady_state_clash_probability,
    )
    from repro.experiments.ttl_distributions import DS4
    from repro.routing.scoping import ScopeMap
    from repro.topology.mbone import MboneParams, generate_mbone

    topology = generate_mbone(MboneParams(total_nodes=60, seed=seed))
    scope_map = ScopeMap.from_topology(topology)
    context = SanitizerContext(scenario="steady")

    def factory(space_size, rng):
        return context.watch_allocator(
            AdaptiveIprmaAllocator.aipr1(space_size, rng)
        )

    probability = steady_state_clash_probability(
        scope_map, factory, space_size=96, n_sessions=40,
        distribution=DS4, trials=3, seed=seed,
    )
    summary = (f"steady: AIPR-1 clash probability={probability:.2f} "
               f"over 3 churn trials")
    return ScenarioResult("steady", context, summary)


_RUNNERS = {
    "kernel": _run_kernel,
    "clash": _run_clash,
    "steady": _run_steady,
}


def run_scenario(name: str, seed: int = 1998) -> ScenarioResult:
    """Run one named scenario under full sanitization."""
    runner = _RUNNERS.get(name)
    if runner is None:
        raise ValueError(
            f"unknown scenario {name!r}; choose from "
            f"{', '.join(SCENARIO_NAMES)} or 'all'"
        )
    return runner(seed)


def run_all_scenarios(seed: int = 1998) -> List[ScenarioResult]:
    """Run every registered scenario."""
    return [run_scenario(name, seed=seed) for name in SCENARIO_NAMES]
