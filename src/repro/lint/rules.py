"""The rule set: repo-specific determinism and simulation invariants.

Each rule is a small AST visitor over one module.  Rules are scoped:
most apply only to the simulation-critical subpackages (``sim``,
``core``, ``sap``, ``experiments``, ``routing``, ``topology``) where
nondeterminism silently corrupts results; a few (mutable defaults,
timestamp equality) apply everywhere.

Rules yield ``(line, col, message)`` tuples; the engine attaches file
paths and applies ``# simlint: disable=...`` suppressions.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

RawFinding = Tuple[int, int, str]

#: Subpackages of ``repro`` whose behaviour feeds simulation results.
#: ``sanitize`` is included: the runtime sanitizers observe simulations
#: in place, so nondeterminism there would corrupt sanitized traces.
#: ``modelcheck`` likewise: state fingerprints and replay must be
#: bit-identical across processes or restore() diverges.  ``fleet``
#: likewise: sharded sweeps must aggregate byte-identically whatever
#: the worker count, so its shard/job layer is held to the same
#: determinism contract (its two audited wall-clock reads live in
#: ``repro.fleet.wallclock`` and feed scheduling only).
SIM_PACKAGES = frozenset(
    {"sim", "core", "sap", "experiments", "routing", "topology",
     "sanitize", "modelcheck", "fleet", "scenario"}
)

#: Legacy module-global numpy RNG entry points (shared hidden state).
_LEGACY_NP_RANDOM = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "ranf", "sample", "choice", "shuffle", "permutation", "uniform",
    "normal", "exponential", "poisson", "binomial", "standard_normal",
})

#: Wall-clock callables, as dotted suffixes matched against call sites.
_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.monotonic", "time.perf_counter",
    "time.process_time", "time.time_ns", "time.monotonic_ns",
    "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
})

_WALL_CLOCK_IMPORTS = frozenset({
    "time", "monotonic", "perf_counter", "process_time", "time_ns",
    "monotonic_ns", "perf_counter_ns",
})

#: Names/suffixes treated as simulated timestamps by float-timestamp-eq.
_TIMESTAMP_NAMES = frozenset({"now", "when", "deadline"})
_TIMESTAMP_SUFFIXES = (
    "_time", "_heard", "_announced", "_at", "_deadline",
)

_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "defaultdict", "OrderedDict", "Counter",
    "deque",
})


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule:
    """One named, suppressible check.

    Attributes:
        name: stable kebab-case id used in suppression comments.
        code: short sortable code (``SIM1xx``).
        description: one-line human summary (``--list-rules``).
        scope: subpackages of ``repro`` the rule applies to, or None
            for everywhere.
    """

    name: str = ""
    code: str = ""
    description: str = ""
    scope: Optional[frozenset] = None

    def check(self, tree: ast.AST) -> Iterator[RawFinding]:
        raise NotImplementedError


class UnseededRngRule(Rule):
    name = "unseeded-rng"
    code = "SIM101"
    description = ("np.random.default_rng() without a seed, or legacy "
                   "module-global numpy RNG calls, in simulation code")
    scope = SIM_PACKAGES

    def check(self, tree: ast.AST) -> Iterator[RawFinding]:
        aliases = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and \
                    node.module == "numpy.random":
                for alias in node.names:
                    if alias.name == "default_rng":
                        aliases.add(alias.asname or alias.name)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted in ("np.random.default_rng",
                          "numpy.random.default_rng"):
                if not node.args and not node.keywords:
                    yield (node.lineno, node.col_offset,
                           "unseeded np.random.default_rng(); inject an "
                           "np.random.Generator or derive one from "
                           "RandomStreams (e.g. rng.derived_stream)")
            elif dotted is not None and dotted.startswith(
                    ("np.random.", "numpy.random.")):
                leaf = dotted.rsplit(".", 1)[1]
                if leaf in _LEGACY_NP_RANDOM:
                    yield (node.lineno, node.col_offset,
                           f"legacy module-global numpy RNG call "
                           f"{dotted}(); use an injected Generator "
                           f"or RandomStreams")
            elif isinstance(node.func, ast.Name) and \
                    node.func.id in aliases and \
                    not node.args and not node.keywords:
                yield (node.lineno, node.col_offset,
                       "unseeded default_rng(); inject an "
                       "np.random.Generator or derive one from "
                       "RandomStreams")


class BareRandomRule(Rule):
    name = "bare-random"
    code = "SIM102"
    description = ("the stdlib random module (process-global state) "
                   "imported in simulation code")
    scope = SIM_PACKAGES

    def check(self, tree: ast.AST) -> Iterator[RawFinding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or \
                            alias.name.startswith("random."):
                        yield (node.lineno, node.col_offset,
                               "stdlib random imported; simulation "
                               "code must draw from RandomStreams or "
                               "an injected np.random.Generator")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" or (
                        node.module or "").startswith("random."):
                    yield (node.lineno, node.col_offset,
                           "stdlib random imported; simulation code "
                           "must draw from RandomStreams or an "
                           "injected np.random.Generator")


class WallClockRule(Rule):
    name = "wall-clock"
    code = "SIM103"
    description = ("wall-clock reads (time.time, datetime.now, ...) in "
                   "simulation code; only SimClock time is admissible")
    scope = SIM_PACKAGES

    def check(self, tree: ast.AST) -> Iterator[RawFinding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted in _WALL_CLOCK_CALLS:
                    yield (node.lineno, node.col_offset,
                           f"wall-clock call {dotted}(); simulation "
                           f"code must read time from SimClock / "
                           f"scheduler.now")
            elif isinstance(node, ast.ImportFrom) and \
                    node.module == "time":
                for alias in node.names:
                    if alias.name in _WALL_CLOCK_IMPORTS:
                        yield (node.lineno, node.col_offset,
                               f"wall-clock import time.{alias.name}; "
                               f"simulation code must read time from "
                               f"SimClock / scheduler.now")


class SetIterationRule(Rule):
    name = "set-iteration"
    code = "SIM104"
    description = ("iteration over a set/frozenset expression; str "
                   "hash randomisation makes the order differ across "
                   "processes -- iterate sorted(...) instead")
    scope = SIM_PACKAGES

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset"))

    def check(self, tree: ast.AST) -> Iterator[RawFinding]:
        message = ("iterating a set; element order is not stable "
                   "across processes (PYTHONHASHSEED) -- iterate "
                   "sorted(...) so event/RNG order is reproducible")
        for node in ast.walk(tree):
            iters: List[ast.expr] = []
            if isinstance(node, ast.For):
                iters = [node.iter]
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                iters = [gen.iter for gen in node.generators]
            for it in iters:
                if self._is_set_expr(it):
                    yield (it.lineno, it.col_offset, message)


class TimestampEqRule(Rule):
    name = "float-timestamp-eq"
    code = "SIM105"
    description = ("== / != on simulated-timestamp floats; compare "
                   "with a tolerance or restructure")

    @staticmethod
    def _timestampish(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            name = node.id
        else:
            return None
        if name in _TIMESTAMP_NAMES or \
                name.endswith(_TIMESTAMP_SUFFIXES):
            return name
        return None

    def check(self, tree: ast.AST) -> Iterator[RawFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq))
                       for op in node.ops):
                continue
            operands = [node.left] + list(node.comparators)
            if any(isinstance(o, ast.Constant)
                   and (o.value is None or isinstance(o.value, str))
                   for o in operands):
                continue
            for operand in operands:
                name = self._timestampish(operand)
                if name is not None:
                    yield (node.lineno, node.col_offset,
                           f"float equality on simulated timestamp "
                           f"{name!r}; exact == on floats is fragile "
                           f"-- compare with a tolerance or use event "
                           f"ordering")
                    break


class MutableDefaultRule(Rule):
    name = "mutable-default"
    code = "SIM106"
    description = "mutable default argument (list/dict/set)"

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _MUTABLE_FACTORIES)

    def check(self, tree: ast.AST) -> Iterator[RawFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults)
            defaults += [d for d in node.args.kw_defaults
                         if d is not None]
            for default in defaults:
                if self._is_mutable(default):
                    yield (default.lineno, default.col_offset,
                           "mutable default argument; shared across "
                           "calls -- default to None and create inside")


class NegativeDelayRule(Rule):
    name = "negative-delay"
    code = "SIM107"
    description = "scheduling with a statically negative delay"

    def check(self, tree: ast.AST) -> Iterator[RawFinding]:
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("schedule", "schedule_at")
                    and node.args):
                continue
            first = node.args[0]
            if isinstance(first, ast.UnaryOp) and \
                    isinstance(first.op, ast.USub) and \
                    isinstance(first.operand, ast.Constant) and \
                    isinstance(first.operand.value, (int, float)):
                yield (node.lineno, node.col_offset,
                       f"scheduling with negative delay "
                       f"-{first.operand.value}; the scheduler "
                       f"rejects events in the past")


class DiscardedHandleRule(Rule):
    name = "discarded-handle"
    code = "SIM108"
    description = ("scheduler.schedule(...) result discarded; the "
                   "EventHandle is the only way to cancel")
    scope = SIM_PACKAGES

    def check(self, tree: ast.AST) -> Iterator[RawFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Expr):
                continue
            value = node.value
            if isinstance(value, ast.Call) and \
                    isinstance(value.func, ast.Attribute) and \
                    value.func.attr in ("schedule", "schedule_at"):
                yield (node.lineno, node.col_offset,
                       "EventHandle discarded; store it so the event "
                       "can be cancelled (retreat/stop paths), or "
                       "suppress if genuinely fire-and-forget")


class ModuleMutableStateRule(Rule):
    name = "module-mutable-state"
    code = "SIM109"
    description = ("module-level mutable containers in sim/core; "
                   "state shared across runs breaks replayability")
    scope = frozenset({"sim", "core"})

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _MUTABLE_FACTORIES)

    def check(self, tree: ast.AST) -> Iterator[RawFinding]:
        if not isinstance(tree, ast.Module):
            return
        for node in tree.body:
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and \
                    node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names or all(
                    n.startswith("__") and n.endswith("__")
                    for n in names):
                continue  # __all__ and friends are conventions
            if self._is_mutable(value):
                yield (node.lineno, node.col_offset,
                       f"module-level mutable state "
                       f"{', '.join(names)}; runs sharing a process "
                       f"would interfere -- move onto an instance")


class BuiltinHashRule(Rule):
    name = "builtin-hash"
    code = "SIM110"
    description = ("builtin hash() in simulation code; str hashes are "
                   "randomised per process -- use zlib.crc32")
    scope = SIM_PACKAGES

    def check(self, tree: ast.AST) -> Iterator[RawFinding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id == "hash":
                yield (node.lineno, node.col_offset,
                       "builtin hash(); randomised per process for "
                       "str/bytes, so derived seeds and orderings "
                       "differ across runs -- use zlib.crc32")


class TtlWideningRule(Rule):
    name = "ttl-widening"
    code = "SIM111"
    description = ("arithmetic that widens a TTL (ttl + k, ttl * k); "
                   "scope may only ever narrow as packets travel")
    scope = SIM_PACKAGES

    @staticmethod
    def _ttlish(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            name = node.id
        else:
            return None
        if name == "ttl" or name.endswith("_ttl"):
            return name
        return None

    def check(self, tree: ast.AST) -> Iterator[RawFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, (ast.Add, ast.Mult)):
                continue
            for ttl_side, other in ((node.left, node.right),
                                    (node.right, node.left)):
                name = self._ttlish(ttl_side)
                if name is None:
                    continue
                if not (isinstance(other, ast.Constant)
                        and isinstance(other.value, (int, float))
                        and not isinstance(other.value, bool)):
                    continue
                widens = (other.value > 0
                          if isinstance(node.op, ast.Add)
                          else other.value > 1)
                if widens:
                    yield (node.lineno, node.col_offset,
                           f"TTL-widening arithmetic on {name!r}; a "
                           f"TTL may only be decremented (routers "
                           f"narrow scope, nothing widens it) -- "
                           f"widening leaks traffic beyond the "
                           f"session's declared scope")
                break


class AddressTtlConfusionRule(Rule):
    name = "address-ttl-confusion"
    code = "SIM112"
    description = ("an address-named value passed as a ttl argument, "
                   "or vice versa, across a call boundary")
    scope = SIM_PACKAGES

    #: Functions whose first argument is an address-space index/IP.
    _ADDRESS_FUNCS = frozenset({"index_to_ip", "ip_to_index"})

    @staticmethod
    def _kind(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            name = node.id
        else:
            return None
        if name == "ttl" or name.endswith("_ttl"):
            return "ttl"
        if name in ("address", "address_index") or \
                name.endswith(("_address", "_address_index")):
            return "address"
        return None

    def check(self, tree: ast.AST) -> Iterator[RawFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                kind = self._kind(keyword.value)
                if kind == "address" and keyword.arg == "ttl":
                    yield (keyword.value.lineno,
                           keyword.value.col_offset,
                           "address-named value passed as ttl=; both "
                           "are plain ints, so this compiles and then "
                           "mis-scopes every packet")
                elif kind == "ttl" and keyword.arg in ("address",
                                                       "address_index"):
                    yield (keyword.value.lineno,
                           keyword.value.col_offset,
                           f"ttl-named value passed as "
                           f"{keyword.arg}=; both are plain ints, so "
                           f"this compiles and then corrupts the "
                           f"address view")
            func = node.func
            if isinstance(func, ast.Attribute):
                attr = func.attr
            elif isinstance(func, ast.Name):
                attr = func.id
            else:
                continue
            if attr in self._ADDRESS_FUNCS and node.args and \
                    self._kind(node.args[0]) == "ttl":
                yield (node.lineno, node.col_offset,
                       f"ttl-named value passed to {attr}(), which "
                       f"takes an address-space index")


class UninformedAllocateOverrideRule(Rule):
    name = "uninformed-allocate-override"
    code = "SIM113"
    description = ("Allocator subclass overrides allocate() without "
                   "consulting the visible set (_informed_pick or "
                   "delegation) or declaring informed=False")
    scope = SIM_PACKAGES

    def check(self, tree: ast.AST) -> Iterator[RawFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any((dotted_name(base) or "").endswith("Allocator")
                       for base in node.bases):
                continue
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and \
                        item.name == "allocate" and \
                        not self._consults_visible(item):
                    yield (item.lineno, item.col_offset,
                           f"{node.name}.allocate neither calls "
                           f"_informed_pick / delegates to another "
                           f"allocate nor marks its result "
                           f"informed=False; silently skipping the "
                           f"clash-avoidance check defeats informed "
                           f"allocation (paper section 2.1)")

    @staticmethod
    def _consults_visible(func: ast.FunctionDef) -> bool:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr in ("_informed_pick", "allocate"):
                return True
            callee = dotted_name(node.func) or ""
            if callee.endswith("AllocationResult"):
                for keyword in node.keywords:
                    if keyword.arg == "informed" and \
                            isinstance(keyword.value, ast.Constant) and \
                            keyword.value.value is False:
                        return True
        return False


class LoopCaptureRule(Rule):
    name = "loop-capture"
    code = "SIM114"
    description = ("lambda passed to schedule()/schedule_at() inside a "
                   "for loop captures the loop variable by reference")
    scope = SIM_PACKAGES

    def check(self, tree: ast.AST) -> Iterator[RawFinding]:
        for loop in ast.walk(tree):
            if not isinstance(loop, ast.For):
                continue
            names = set(self._target_names(loop.target))
            if not names:
                continue
            for stmt in loop.body:
                yield from self._check_body(stmt, names)

    def _check_body(self, stmt: ast.AST, names) -> Iterator[RawFinding]:
        for node in ast.walk(stmt):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("schedule", "schedule_at")):
                continue
            arguments = list(node.args)
            arguments += [keyword.value for keyword in node.keywords]
            for argument in arguments:
                if not isinstance(argument, ast.Lambda):
                    continue
                captured = self._free_loop_names(argument, names)
                if captured:
                    listing = ", ".join(sorted(captured))
                    yield (argument.lineno, argument.col_offset,
                           f"lambda captures loop variable(s) "
                           f"{listing} by reference; every scheduled "
                           f"event will see the final value when it "
                           f"fires -- bind as a default "
                           f"(lambda x=x: ...)")

    @classmethod
    def _target_names(cls, target: ast.AST) -> List[str]:
        if isinstance(target, ast.Name):
            return [target.id]
        if isinstance(target, (ast.Tuple, ast.List)):
            out: List[str] = []
            for element in target.elts:
                out.extend(cls._target_names(element))
            return out
        return []

    @staticmethod
    def _free_loop_names(lam: ast.Lambda, loop_names) -> set:
        params = {a.arg for a in (lam.args.posonlyargs + lam.args.args
                                  + lam.args.kwonlyargs)}
        if lam.args.vararg is not None:
            params.add(lam.args.vararg.arg)
        if lam.args.kwarg is not None:
            params.add(lam.args.kwarg.arg)
        captured = set()
        for node in ast.walk(lam.body):
            if isinstance(node, ast.Name) and \
                    isinstance(node.ctx, ast.Load) and \
                    node.id in loop_names and node.id not in params:
                captured.add(node.id)
        return captured


#: Every rule, in code order.  The registry is intentionally a tuple:
#: rule identity is part of the repo's public determinism contract.
ALL_RULES: Tuple[Rule, ...] = (
    UnseededRngRule(),
    BareRandomRule(),
    WallClockRule(),
    SetIterationRule(),
    TimestampEqRule(),
    MutableDefaultRule(),
    NegativeDelayRule(),
    DiscardedHandleRule(),
    ModuleMutableStateRule(),
    BuiltinHashRule(),
    TtlWideningRule(),
    AddressTtlConfusionRule(),
    UninformedAllocateOverrideRule(),
    LoopCaptureRule(),
)


def rules_by_name() -> dict:
    return {rule.name: rule for rule in ALL_RULES}


def get_rules(select: Optional[List[str]] = None,
              ignore: Optional[List[str]] = None) -> Tuple[Rule, ...]:
    """The active rule set after ``--select`` / ``--ignore`` filters.

    Raises:
        ValueError: if an unknown rule name is given.
    """
    known = rules_by_name()
    for name in (select or []) + (ignore or []):
        if name not in known:
            raise ValueError(
                f"unknown rule {name!r}; known: {sorted(known)}"
            )
    chosen = list(ALL_RULES)
    if select:
        chosen = [r for r in chosen if r.name in set(select)]
    if ignore:
        chosen = [r for r in chosen if r.name not in set(ignore)]
    return tuple(chosen)
