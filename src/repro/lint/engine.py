"""Linter engine: file walking, suppression parsing, rule driving.

Suppression syntax (comments, anywhere tokenize finds them):

* ``# simlint: disable=rule-a,rule-b`` — suppress those rules on that
  line (put it on the first line of a multi-line statement).
* ``# simlint: disable`` — suppress every rule on that line.
* ``# simlint: disable-file=rule-a`` — suppress a rule for the whole
  file (``disable-file`` alone suppresses everything; use sparingly).

Scoped rules (see :mod:`repro.lint.rules`) are applied according to the
module's subpackage under ``repro``; files whose package cannot be
determined (e.g. scratch files) get the full rule set.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.lint.rules import ALL_RULES, Rule

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*(disable-file|disable)"
    r"(?:\s*=\s*([A-Za-z0-9_\-, ]+))?"
)

#: Sentinel meaning "derive the package from the path".
_AUTO = "<auto>"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    rule: str
    message: str

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.code} [{self.rule}] {self.message}")

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class Suppressions:
    """Parsed ``# simlint:`` directives for one file."""

    by_line: Dict[int, Set[str]]
    file_wide: Set[str]

    def suppressed(self, line: int, rule_name: str) -> bool:
        if "*" in self.file_wide or rule_name in self.file_wide:
            return True
        names = self.by_line.get(line)
        if names is None:
            return False
        return "*" in names or rule_name in names


def parse_suppressions(text: str) -> Suppressions:
    """Extract suppression directives from source comments."""
    by_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(text).readline
        ))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        tokens = []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if not match:
            continue
        kind, arg = match.group(1), match.group(2)
        names = {"*"} if arg is None else {
            name.strip() for name in arg.split(",") if name.strip()
        }
        if kind == "disable-file":
            file_wide.update(names)
        else:
            by_line.setdefault(token.start[0], set()).update(names)
    return Suppressions(by_line=by_line, file_wide=file_wide)


def package_of(path: str) -> Optional[str]:
    """The first subpackage under ``repro`` a path belongs to.

    ``src/repro/sim/rng.py`` -> ``"sim"``; ``src/repro/cli.py`` ->
    ``""`` (package top level); paths not under a ``repro`` tree ->
    None (unknown — the engine then applies every rule).
    """
    parts = Path(path).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            remainder = parts[index + 1:]
            if len(remainder) >= 2:
                return remainder[0]
            return ""
    return None


def lint_source(text: str, path: str = "<string>",
                rules: Optional[Sequence[Rule]] = None,
                package: Optional[str] = _AUTO) -> List[Finding]:
    """Lint one source string; returns sorted findings.

    Args:
        text: Python source.
        path: reported in findings and used for package scoping.
        rules: rule set (default: the full registry).
        package: override the package used for rule scoping; the
            default derives it from ``path``.
    """
    if rules is None:
        rules = ALL_RULES
    if package == _AUTO:
        package = package_of(path)
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        return [Finding(
            path=path, line=exc.lineno or 1, col=exc.offset or 0,
            code="SIM000", rule="parse-error",
            message=f"could not parse: {exc.msg}",
        )]
    suppressions = parse_suppressions(text)
    findings: List[Finding] = []
    for rule in rules:
        if rule.scope is not None and package is not None \
                and package not in rule.scope:
            continue
        for line, col, message in rule.check(tree):
            if suppressions.suppressed(line, rule.name):
                continue
            findings.append(Finding(
                path=path, line=line, col=col, code=rule.code,
                rule=rule.name, message=message,
            ))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises:
        FileNotFoundError: if a named path does not exist.
    """
    out: List[str] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(str(p) for p in sorted(path.rglob("*.py")))
        elif path.is_file():
            out.append(str(path))
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return out


def lint_paths(paths: Iterable[str],
               rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Lint files and directory trees; returns sorted findings."""
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        text = Path(file_path).read_text(encoding="utf-8")
        findings.extend(lint_source(text, path=file_path, rules=rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings
