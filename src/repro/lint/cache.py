"""Incremental lint cache: skip files whose findings cannot change.

Static findings for a file are a pure function of (file content,
active rule set, the package the path scopes the file into).  The
cache therefore keys each entry by the file's content hash and stores
it under the file's path, and the whole cache is stamped with a
rule-set signature (:func:`repro.lint.registry.ruleset_signature`):

* editing a file invalidates just that file;
* editing, adding, renaming or re-scoping any rule invalidates the
  whole cache (the signature changes);
* moving a file invalidates it (the path is the entry key, and the
  path also determines rule scoping).

The cache lives in ``.repro-lint-cache.json`` next to wherever the
linter is run, is versioned (:data:`CACHE_FORMAT`), and is fail-open:
a missing, corrupt or stale-format cache simply means a full relint.
``--no-cache`` bypasses it entirely.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.lint.engine import Finding, iter_python_files, lint_source
from repro.lint.registry import CACHE_FILES, ruleset_signature
from repro.lint.rules import Rule

#: Bumped whenever the on-disk cache schema changes.
CACHE_FORMAT = 1

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_FILE = CACHE_FILES["lint"]


def _content_hash(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class LintCache:
    """Findings keyed by (path, content hash) under one rule-set."""

    def __init__(self, path: str, signature: str):
        self.path = Path(path)
        self.signature = signature
        self.entries: Dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict):
            return
        if raw.get("format") != CACHE_FORMAT:
            return
        if raw.get("ruleset") != self.signature:
            return  # rule set changed: every cached finding is stale
        entries = raw.get("files")
        if isinstance(entries, dict):
            self.entries = entries

    def lookup(self, path: str, text: str) -> Optional[List[Finding]]:
        entry = self.entries.get(path)
        if entry is None or entry.get("hash") != _content_hash(text):
            self.misses += 1
            return None
        self.hits += 1
        return [Finding(**raw) for raw in entry.get("findings", [])]

    def store(self, path: str, text: str,
              findings: Sequence[Finding]) -> None:
        self.entries[path] = {
            "hash": _content_hash(text),
            "findings": [finding.to_dict() for finding in findings],
        }

    def save(self) -> None:
        document = {
            "format": CACHE_FORMAT,
            "ruleset": self.signature,
            "files": {
                path: self.entries[path]
                for path in sorted(self.entries)
            },
        }
        try:
            self.path.write_text(
                json.dumps(document, indent=1, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except OSError:
            pass  # read-only checkout: caching is best-effort


def lint_paths_cached(paths: Sequence[str], rules: Sequence[Rule],
                      cache_file: str = DEFAULT_CACHE_FILE
                      ) -> List[Finding]:
    """Like :func:`repro.lint.engine.lint_paths`, reusing cached
    findings for unchanged files and updating the cache afterwards."""
    cache = LintCache(cache_file, ruleset_signature(tuple(rules)))
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        text = Path(file_path).read_text(encoding="utf-8")
        cached = cache.lookup(file_path, text)
        if cached is None:
            cached = lint_source(text, path=file_path, rules=rules)
            cache.store(file_path, text, cached)
        findings.extend(cached)
    cache.save()
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings
