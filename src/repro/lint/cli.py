"""``python -m repro.lint`` — lint the tree, or run the determinism
harness.

Exit status is 0 when clean, 1 when any unsuppressed finding (or a
trace divergence, with ``--determinism``) is reported, 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint.engine import lint_paths
from repro.lint.report import render_json, render_text
from repro.lint.rules import ALL_RULES, get_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="AST-based determinism & simulation-correctness "
                    "linter for the repro tree",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories (default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--select", nargs="+", metavar="RULE",
                        help="run only these rules")
    parser.add_argument("--ignore", nargs="+", metavar="RULE",
                        help="skip these rules")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule registry and exit")
    parser.add_argument("--determinism", action="store_true",
                        help="also run the run-twice determinism "
                             "harness")
    parser.add_argument("--sanitize", action="store_true",
                        help="also run the runtime sanitizer "
                             "scenarios (python -m repro.sanitize) "
                             "and merge violations into the findings")
    parser.add_argument("--seed", type=int, default=1998,
                        help="seed for --determinism / --sanitize")
    return parser


def list_rules() -> str:
    lines = []
    for rule in ALL_RULES:
        where = ("everywhere" if rule.scope is None
                 else "repro.{" + ",".join(sorted(rule.scope)) + "}")
        lines.append(f"{rule.code} {rule.name:<22s} [{where}]")
        lines.append(f"        {rule.description}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    try:
        rules = get_rules(select=args.select, ignore=args.ignore)
    except ValueError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2
    try:
        findings = lint_paths(args.paths, rules=rules)
    except FileNotFoundError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2
    if args.sanitize:
        from repro.sanitize.scenarios import run_all_scenarios

        findings = list(findings)
        for result in run_all_scenarios(seed=args.seed):
            findings.extend(
                violation.to_finding(f"<sanitize:{result.name}>")
                for violation in result.violations
            )
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    status = 0 if not findings else 1
    if args.determinism:
        from repro.lint.determinism import verify

        report = verify(seed=args.seed)
        print(report.format())
        if not report.identical:
            status = 1
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
