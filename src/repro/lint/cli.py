"""``python -m repro.lint`` — lint the tree, or run the determinism
harness.

Exit status follows the shared contract in
:mod:`repro.lint.registry`: 0 when clean, 1 when any unsuppressed
finding (or a trace divergence, with ``--determinism``) is reported,
2 on usage errors.

The static rule set is the full registry — SIM1xx determinism rules
plus the MC30x protocol-spec cross-checks — and ``--list-rules``
prints every check the repo's three analysis tools run, including the
runtime SAN2xx / MC31x codes that only ``repro.sanitize`` and
``repro.modelcheck`` can emit.

Findings for unchanged files are served from an incremental cache
(``.repro-lint-cache.json``; see :mod:`repro.lint.cache`) keyed by
file content hash and rule-set signature; ``--no-cache`` bypasses it.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint.registry import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    add_report_arguments,
    get_static_rules,
    render_registry,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="AST-based determinism & simulation-correctness "
                    "linter for the repro tree",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories (default: src)")
    add_report_arguments(parser)
    parser.add_argument("--select", nargs="+", metavar="RULE",
                        help="run only these rules")
    parser.add_argument("--ignore", nargs="+", metavar="RULE",
                        help="skip these rules")
    parser.add_argument("--no-cache", action="store_true",
                        help="relint every file, ignoring and not "
                             "updating the incremental cache")
    parser.add_argument("--cache-file",
                        default=None,
                        help="incremental cache location (default: "
                             ".repro-lint-cache.json)")
    parser.add_argument("--determinism", action="store_true",
                        help="also run the run-twice determinism "
                             "harness")
    parser.add_argument("--sanitize", action="store_true",
                        help="also run the runtime sanitizer "
                             "scenarios (python -m repro.sanitize) "
                             "and merge violations into the findings")
    parser.add_argument("--seed", type=int, default=1998,
                        help="seed for --determinism / --sanitize")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_registry())
        return EXIT_CLEAN
    try:
        rules = get_static_rules(select=args.select, ignore=args.ignore)
    except ValueError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return EXIT_USAGE
    try:
        if args.no_cache:
            from repro.lint.engine import lint_paths

            findings = lint_paths(args.paths, rules=rules)
        else:
            from repro.lint.cache import (
                DEFAULT_CACHE_FILE,
                lint_paths_cached,
            )

            findings = lint_paths_cached(
                args.paths, rules=rules,
                cache_file=args.cache_file or DEFAULT_CACHE_FILE,
            )
    except FileNotFoundError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.sanitize:
        from repro.sanitize.scenarios import run_all_scenarios

        findings = list(findings)
        for result in run_all_scenarios(seed=args.seed):
            findings.extend(
                violation.to_finding(f"<sanitize:{result.name}>")
                for violation in result.violations
            )
    if args.format == "json":
        from repro.lint.report import render_json

        print(render_json(findings))
    elif args.format == "github":
        from repro.lint.report import render_github

        output = render_github(findings)
        if output:
            print(output)
    else:
        from repro.lint.report import render_text

        print(render_text(findings))
    status = EXIT_CLEAN if not findings else EXIT_FINDINGS
    if args.determinism:
        from repro.lint.determinism import verify

        report = verify(seed=args.seed)
        print(report.format())
        if not report.identical:
            status = EXIT_FINDINGS
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
