"""Static analysis enforcing the repo's determinism contract.

The paper's results are reproducible only because every stochastic
draw flows through :class:`repro.sim.rng.RandomStreams` and the event
scheduler breaks timestamp ties by insertion order.  This subpackage
*enforces* those invariants:

* :mod:`repro.lint.rules` — the SIM1xx rule set (unseeded RNGs,
  wall-clock reads, set-iteration order, discarded event handles, ...).
* :mod:`repro.lint.registry` — the shared registry across all three
  analysis tools (SIM static rules, MC30x spec cross-checks, SAN2xx /
  MC31x runtime codes) plus the common exit-code contract.
* :mod:`repro.lint.engine` — AST pass, ``# simlint:`` suppressions.
* :mod:`repro.lint.cache` — incremental cache keyed by content hash
  and rule-set signature.
* :mod:`repro.lint.report` — text, JSON and GitHub-annotation
  reporters.
* :mod:`repro.lint.determinism` — run-twice runtime harness.
* ``python -m repro.lint [paths]`` — the CLI; exits non-zero on any
  unsuppressed finding.
"""

from repro.lint.engine import Finding, lint_paths, lint_source
from repro.lint.report import render_github, render_json, render_text
from repro.lint.rules import ALL_RULES, get_rules

__all__ = [
    "ALL_RULES",
    "Finding",
    "get_rules",
    "lint_paths",
    "lint_source",
    "render_github",
    "render_json",
    "render_text",
]
