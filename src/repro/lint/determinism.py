"""Runtime determinism harness: run one scenario twice, byte-compare.

Static rules (:mod:`repro.lint.rules`) catch *sources* of
nondeterminism; this harness checks the *outcome*: a small but complete
allocation + clash-protocol scenario — lossy jittered network, tiny
address space so clashes are guaranteed, a partition that heals midway,
session lifetimes expiring — is run twice with the same seed and the
two event traces must be byte-identical.  Any unseeded RNG, wall-clock
read, or unstable iteration order upstream shows up here as a trace
divergence, with the first differing line reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.address_space import MulticastAddressSpace
from repro.core.informed import InformedRandomAllocator
from repro.sap.announcer import FixedIntervalStrategy
from repro.sap.directory import SessionDirectory
from repro.sim.events import EventScheduler
from repro.sim.network import NetworkModel
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer, trace_directory


@dataclass(frozen=True)
class DeterminismReport:
    """Outcome of a run-twice comparison."""

    identical: bool
    seed: int
    events_run: int
    trace_lines: int
    first_divergence: Optional[str]

    def format(self) -> str:
        status = "IDENTICAL" if self.identical else "DIVERGED"
        lines = [
            f"determinism: {status} (seed={self.seed}, "
            f"events={self.events_run}, trace={self.trace_lines} lines)"
        ]
        if self.first_divergence:
            lines.append(self.first_divergence)
        return "\n".join(lines)


def run_scenario(seed: int = 1998, num_sites: int = 6,
                 sessions_per_site: int = 3, space_size: int = 12,
                 horizon: float = 240.0, sanitizer=None,
                 observer=None) -> str:
    """One full scenario; returns its complete event trace as text.

    The trace includes every announcement receipt, clash defence,
    retreat and third-party proxy defence, plus a counter footer, so
    two textually equal traces mean the runs were behaviourally
    identical.

    Args:
        sanitizer: optional
            :class:`repro.sanitize.SanitizerContext`; when given, the
            scheduler, network and every directory run under full
            shadow-state checking (the sanitizers observe, never
            steer, so the trace is unchanged).
        observer: optional :class:`repro.obs.ObsContext`; when given,
            the whole stack runs under profiling instrumentation.
            Like the sanitizers, observers observe and never steer:
            the trace must stay byte-identical with or without one.
    """
    streams = RandomStreams(seed)
    scheduler = EventScheduler()
    if sanitizer is not None:
        sanitizer.attach_scheduler(scheduler)
    if observer is not None:
        observer.attach_scheduler(scheduler)

    def receiver_map(source: int, ttl: int):
        # Full mesh with deterministic, asymmetric per-pair delays.
        return [(node, 0.01 + 0.003 * ((source + 2 * node) % 7))
                for node in range(num_sites) if node != source]

    network = NetworkModel(scheduler, receiver_map, streams=streams,
                           loss_rate=0.05, jitter=0.02)
    if sanitizer is not None:
        sanitizer.attach_network(network)
    if observer is not None:
        observer.attach_network(network)
    space = MulticastAddressSpace.abstract(space_size)
    tracer = Tracer(scheduler)

    directories: List[SessionDirectory] = []
    for node in range(num_sites):
        directory = SessionDirectory(
            node, scheduler, network,
            InformedRandomAllocator(space_size,
                                    streams.get(f"alloc.{node}")),
            space,
            strategy_factory=lambda: FixedIntervalStrategy(20.0),
            rng=streams.get(f"dir.{node}"),
        )
        trace_directory(tracer, directory)
        if sanitizer is not None:
            sanitizer.watch_directory(directory)
        if observer is not None:
            observer.watch_directory(directory)
        directories.append(directory)

    workload = streams.get("lint.workload")

    def make_creation(directory: SessionDirectory, name: str, ttl: int,
                      lifetime: Optional[float]):
        def create() -> None:
            tracer.emit("create", f"creating {name!r}",
                        node=directory.node, ttl=ttl)
            directory.create_session(name, ttl=ttl, lifetime=lifetime)
        return create

    index = 0
    for node, directory in enumerate(directories):
        for k in range(sessions_per_site):
            when = float(workload.uniform(0.0, horizon / 3.0))
            # Every third session expires mid-run, exercising the
            # expiry-handle and deletion paths.
            lifetime = 45.0 if index % 3 == 0 else None
            scheduler.schedule_at(  # simlint: disable=discarded-handle
                when,
                make_creation(directory, f"s{index}@{node}", 127,
                              lifetime),
            )
            index += 1

    # A partition that heals midway: both sides allocate from the same
    # tiny space while split, so the heal provokes the clash protocol
    # ("a network partition has been resolved recently", paper section 3).
    half = range(num_sites // 2)
    scheduler.schedule_at(  # simlint: disable=discarded-handle
        horizon / 4.0, lambda: network.partition(half)
    )
    scheduler.schedule_at(  # simlint: disable=discarded-handle
        horizon / 2.0, network.heal
    )

    scheduler.run(until=horizon, max_events=1_000_000)

    lines = [tracer.format_timeline()]
    lines.append("-- counters --")
    lines.append(f"events_run={scheduler.events_run}")
    lines.append(f"packets sent={network.packets_sent} "
                 f"delivered={network.packets_delivered} "
                 f"lost={network.packets_lost}")
    for directory in directories:
        handler = directory.clash_handler
        lines.append(
            f"n{directory.node}: rx={directory.announcements_received} "
            f"moves={directory.address_changes} "
            f"clashes={handler.clashes_seen if handler else 0} "
            f"defences={handler.defences_sent if handler else 0} "
            f"retreats={handler.retreats if handler else 0}"
        )
    return "\n".join(lines) + "\n"


def verify(seed: int = 1998, **scenario_kwargs) -> DeterminismReport:
    """Run the scenario twice with one seed; compare traces exactly."""
    first = run_scenario(seed=seed, **scenario_kwargs)
    second = run_scenario(seed=seed, **scenario_kwargs)
    events = first.count("\n")
    if first == second:
        return DeterminismReport(
            identical=True, seed=seed, events_run=events,
            trace_lines=events, first_divergence=None,
        )
    divergence = None
    for number, (a, b) in enumerate(
            zip(first.splitlines(), second.splitlines()), start=1):
        if a != b:
            divergence = (f"first divergence at trace line {number}:\n"
                          f"  run 1: {a}\n  run 2: {b}")
            break
    if divergence is None:
        divergence = "traces differ in length only"
    return DeterminismReport(
        identical=False, seed=seed, events_run=events,
        trace_lines=events, first_divergence=divergence,
    )
