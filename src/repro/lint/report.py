"""Finding reporters: human text, machine JSON, GitHub annotations."""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.lint.engine import Finding


def render_text(findings: Sequence[Finding]) -> str:
    """One line per finding plus a summary line."""
    lines: List[str] = [finding.format() for finding in findings]
    count = len(findings)
    if count == 0:
        lines.append("simlint: clean (0 findings)")
    else:
        by_rule: dict = {}
        for finding in findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        breakdown = ", ".join(
            f"{rule}={n}" for rule, n in sorted(by_rule.items())
        )
        noun = "finding" if count == 1 else "findings"
        lines.append(f"simlint: {count} {noun} ({breakdown})")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """A stable JSON document: ``{"count": N, "findings": [...]}``."""
    return json.dumps(
        {
            "count": len(findings),
            "findings": [finding.to_dict() for finding in findings],
        },
        indent=2,
        sort_keys=True,
    )


def render_github(findings: Sequence[Finding]) -> str:
    """GitHub Actions workflow annotations (``::error file=...``).

    Runtime findings carry pseudo-paths like ``<sanitize:kernel>``
    with no real source location; those become file-less annotations
    so the Actions UI still surfaces them on the run summary.
    """
    lines: List[str] = []
    for finding in findings:
        message = f"{finding.code} [{finding.rule}] {finding.message}"
        if finding.path.startswith("<"):
            lines.append(f"::error title={finding.code}::"
                         f"{finding.path}: {message}")
        else:
            lines.append(f"::error file={finding.path},"
                         f"line={max(finding.line, 1)},"
                         f"col={finding.col}::{message}")
    return "\n".join(lines)
