"""One registry for every check the repo's nine analysis tools run.

The static linter (SIM1xx), the runtime sanitizer (SAN2xx), the
model-check spec cross-checker (MC301–MC304), the model-check runtime
invariants (MC31x), the observability self-checks (OBS4xx), the
fleet execution diagnostics (FLT5xx), the whole-program flow
analyses (FLOW6xx), the unit & value-range abstract interpreter
(UNIT7xx), the escape/aliasing analysis (ALIAS8xx) and the scenario
engine's workload invariants (SCN9xx) each grew their own code
space; this module is the single
place that enumerates all of them, so

* ``--list-rules`` prints the same registry from ``repro.lint``,
  ``repro.sanitize``, ``repro.modelcheck``, ``repro.obs``,
  ``repro.fleet``, ``repro.flow``, ``repro.units``, ``repro.alias``
  and ``repro.scenario`` alike;
* the nine CLIs share one exit-code contract
  (:data:`EXIT_CLEAN` / :data:`EXIT_FINDINGS` / :data:`EXIT_USAGE`)
  and one reporting surface (:func:`add_report_arguments`);
* the static rule set the engine runs is assembled here (SIM rules
  plus the MC spec rules), so "lint the tree" always means the full
  static contract.  FLOW6xx, UNIT7xx and ALIAS8xx rules are listed
  here but run from :mod:`repro.flow.analysis` /
  :mod:`repro.units.analysis` / :mod:`repro.alias.analysis` — they
  need the whole program, not one file at a time;
* every per-tool on-disk cache filename lives in
  :data:`CACHE_FILES`, so tool code and ``.gitignore`` cannot drift.

Import direction: ``lint.rules`` and ``lint.engine`` stay free of
modelcheck/flow/units imports; this module sits above both and is
what the CLIs consume.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.lint.rules import ALL_RULES, Rule

#: Shared CLI exit-code contract for repro.lint / repro.sanitize /
#: repro.modelcheck / repro.obs / repro.fleet / repro.flow /
#: repro.units / repro.alias / repro.scenario: clean, findings
#: reported, usage error.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

#: Per-tool on-disk cache filenames.  The single source of truth —
#: each tool's ``DEFAULT_CACHE_FILE`` reads from here and
#: ``.gitignore`` lists exactly these names (asserted by the registry
#: tests), so the two can never drift.
CACHE_FILES = {
    "lint": ".repro-lint-cache.json",
    "flow": ".repro-flow-cache.json",
    "units": ".repro-units-cache.json",
    "alias": ".repro-alias-cache.json",
    "scenario": ".repro-scenario-cache.json",
}

#: Runtime model-check invariants (emitted by the explorer harness,
#: not by an AST rule), mirroring sanitize's VIOLATION_CODES shape.
MODELCHECK_RUNTIME_CODES = {
    "MC311": "established-displaced",
    "MC312": "stable-double-claim",
}

#: Observability self-check diagnostics (emitted by repro.obs at
#: runtime about the instrumentation itself, not the protocol).
OBS_RUNTIME_CODES = {
    "OBS401": "metric-name-collision",
    "OBS402": "unclosed-span",
    "OBS403": "exporter-ring-saturated",
    "OBS404": "handle-table-overflow",
}

#: OBS4xx codes that describe degraded telemetry rather than broken
#: instrumentation: the run's *protocol* output is still trustworthy,
#: so these never fail a scenario on their own.
OBS_ADVISORY_CODES = frozenset({"OBS403", "OBS404"})

#: Fleet execution diagnostics (emitted by repro.fleet about sweep
#: execution and checkpoints, not about the protocol under test).
FLEET_RUNTIME_CODES = {
    "FLT501": "shard-retries-exhausted",
    "FLT502": "shard-result-mismatch",
    "FLT503": "checkpoint-torn-write",
}

_RUNTIME_DESCRIPTIONS = {
    # SAN2xx — repro.sanitize shadow-state probes.
    "SAN201": "an address allocated while already allocated",
    "SAN202": "an allocation outside the address space bounds",
    "SAN203": "a free of an address that was never allocated",
    "SAN204": "a withdrawn/expired session used or re-announced",
    "SAN211": "a packet delivered beyond its TTL scope",
    "SAN221": "the simulated clock moved backwards",
    "SAN222": "an event scheduled in the simulated past",
    "SAN223": "a cancelled event handle fired anyway",
    "SAN224": "the scheduler re-entered run() while running",
    "SAN231": "directory caches diverged at loss-free quiescence",
    "SAN232": "a cache accepted a version older than it already had",
    # MC31x — repro.modelcheck explorer invariants.
    "MC311": "an established session displaced from its address by "
             "a newcomer (paper section 3 safety guarantee)",
    "MC312": "a loss-free trace quiesced with two directories "
             "claiming the same address",
    # OBS4xx — repro.obs instrumentation self-checks.
    "OBS401": "a metric name re-registered with a conflicting type "
              "or label-key set (would corrupt exposition)",
    "OBS402": "a span still open when its scenario ended (a protocol "
              "phase that began and never completed)",
    "OBS403": "the ring-buffer exporter overwrote records that were "
              "never drained (telemetry lost; drain more often or "
              "raise the ring capacity)",
    "OBS404": "the metric handle table grew past its configured "
              "capacity (attach-time registration is leaking into "
              "the hot path; pre-size the registry)",
    # FLT5xx — repro.fleet sweep-execution diagnostics.
    "FLT501": "a shard that failed on every attempt (retry budget "
              "exhausted; its cell is missing from the aggregate)",
    "FLT502": "duplicate ok rows for one shard with different "
              "payloads (the job is not a pure function of its "
              "shard stream)",
    "FLT503": "a torn trailing write found in a checkpoint on "
              "resume (truncated in place; affected shards re-run)",
}


@dataclass(frozen=True)
class RegistryEntry:
    """One check: static AST rule or runtime invariant probe."""

    code: str
    name: str
    kind: str  # "static" | "runtime"
    tool: str  # lint|sanitize|modelcheck|obs|fleet|flow|units|alias
               # |scenario
    description: str
    scope: Optional[frozenset] = None
    advisory: bool = False


def add_report_arguments(
        parser: argparse.ArgumentParser,
        formats: Sequence[str] = ("text", "json", "github"),
        default: str = "text") -> None:
    """The reporting flags every tool CLI shares.

    Each of the nine CLIs used to wire ``--format``/``--list-rules``
    by hand, slightly different ways; this is the one place the
    contract lives now.  Tools with an extra format (obs adds
    ``prom``) pass their own ``formats``.
    """
    parser.add_argument(
        "--format", choices=tuple(formats), default=default,
        help="output format (github emits Actions annotations)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the full cross-tool rule registry and exit",
    )


def static_rules() -> Tuple[Rule, ...]:
    """The full static rule set: SIM1xx plus the MC30x spec rules."""
    from repro.modelcheck.astcheck import MC_RULES

    return ALL_RULES + MC_RULES


def get_static_rules(select: Optional[List[str]] = None,
                     ignore: Optional[List[str]] = None
                     ) -> Tuple[Rule, ...]:
    """The active static set after ``--select``/``--ignore`` filters.

    Raises:
        ValueError: if an unknown rule name is given.
    """
    rules = static_rules()
    known = {rule.name for rule in rules}
    for name in (select or []) + (ignore or []):
        if name not in known:
            raise ValueError(
                f"unknown rule {name!r}; known: {sorted(known)}"
            )
    chosen = list(rules)
    if select:
        chosen = [r for r in chosen if r.name in set(select)]
    if ignore:
        chosen = [r for r in chosen if r.name not in set(ignore)]
    return tuple(chosen)


def all_entries() -> Tuple[RegistryEntry, ...]:
    """Every check across the nine tools, in code order."""
    from repro.alias.rules import ALIAS_RULES
    from repro.flow.rules import FLOW_RULES
    from repro.sanitize.report import VIOLATION_CODES
    from repro.scenario.rules import (
        SCENARIO_ADVISORY_CODES,
        SCENARIO_RULE_DESCRIPTIONS,
        SCENARIO_RUNTIME_CODES,
    )
    from repro.units.rules import UNIT_RULES

    entries = [
        RegistryEntry(
            code=rule.code, name=rule.name, kind="static",
            tool="modelcheck" if rule.code.startswith("MC") else "lint",
            description=rule.description, scope=rule.scope,
        )
        for rule in static_rules()
    ]
    for code, name in VIOLATION_CODES.items():
        entries.append(RegistryEntry(
            code=code, name=name, kind="runtime", tool="sanitize",
            description=_RUNTIME_DESCRIPTIONS.get(code, ""),
        ))
    for code, name in MODELCHECK_RUNTIME_CODES.items():
        entries.append(RegistryEntry(
            code=code, name=name, kind="runtime", tool="modelcheck",
            description=_RUNTIME_DESCRIPTIONS.get(code, ""),
        ))
    for code, name in OBS_RUNTIME_CODES.items():
        entries.append(RegistryEntry(
            code=code, name=name, kind="runtime", tool="obs",
            description=_RUNTIME_DESCRIPTIONS.get(code, ""),
            advisory=code in OBS_ADVISORY_CODES,
        ))
    for code, name in FLEET_RUNTIME_CODES.items():
        entries.append(RegistryEntry(
            code=code, name=name, kind="runtime", tool="fleet",
            description=_RUNTIME_DESCRIPTIONS.get(code, ""),
        ))
    for code, name, advisory, description in FLOW_RULES:
        entries.append(RegistryEntry(
            code=code, name=name, kind="static", tool="flow",
            description=description, advisory=advisory,
        ))
    for code, name, advisory, description in UNIT_RULES:
        entries.append(RegistryEntry(
            code=code, name=name, kind="static", tool="units",
            description=description, advisory=advisory,
        ))
    for code, name, advisory, description in ALIAS_RULES:
        entries.append(RegistryEntry(
            code=code, name=name, kind="static", tool="alias",
            description=description, advisory=advisory,
        ))
    for code, name in SCENARIO_RUNTIME_CODES.items():
        entries.append(RegistryEntry(
            code=code, name=name, kind="runtime", tool="scenario",
            description=SCENARIO_RULE_DESCRIPTIONS.get(code, ""),
            advisory=code in SCENARIO_ADVISORY_CODES,
        ))
    return tuple(sorted(entries, key=lambda entry: entry.code))


def render_registry() -> str:
    """``--list-rules`` text, shared by all nine CLIs."""
    lines = []
    for entry in all_entries():
        if entry.kind == "static":
            where = ("everywhere" if entry.scope is None
                     else "repro.{" + ",".join(sorted(entry.scope)) + "}")
            origin = f"static/{entry.tool} [{where}]"
        else:
            origin = f"runtime/{entry.tool}"
        if entry.advisory:
            origin += " (advisory)"
        lines.append(f"{entry.code} {entry.name:<26s} {origin}")
        lines.append(f"        {entry.description}")
    return "\n".join(lines)


def ruleset_signature(rules: Tuple[Rule, ...]) -> str:
    """A stable identity for a rule set, for cache keying.

    Any change to a rule's code, name, description or scope — or to
    the set itself — must invalidate cached findings.
    """
    import hashlib

    parts = [
        (rule.code, rule.name, rule.description,
         tuple(sorted(rule.scope)) if rule.scope is not None else None)
        for rule in rules
    ]
    digest = hashlib.sha256(repr(sorted(parts)).encode("utf-8"))
    return digest.hexdigest()[:16]
