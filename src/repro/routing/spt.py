"""Shortest-path trees over a :class:`~repro.topology.graph.Topology`.

DVMRP builds per-source delivery trees from reverse shortest paths over
tunnel metrics; with the symmetric link metrics used here (and in the
paper's mcollect-derived model) reverse and forward shortest paths
coincide, so we compute ordinary Dijkstra trees.

Two weightings matter:

* ``"metric"`` — DVMRP routing metric; determines tree *shape* and hence
  hop counts and TTL scoping.
* ``"delay"``  — propagation delay; determines packet timing in the
  request-response simulations of §3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.topology.graph import Topology

#: scipy.csgraph's "no predecessor" sentinel.
NO_PREDECESSOR = -9999

_WEIGHT_FIELDS = ("metric", "delay", "hops")


def topology_csr(topology: Topology, weight: str = "metric") -> csr_matrix:
    """Build a symmetric CSR adjacency matrix weighted by ``weight``.

    ``weight`` is one of ``"metric"``, ``"delay"`` or ``"hops"`` (every
    link costs 1).
    """
    if weight not in _WEIGHT_FIELDS:
        raise ValueError(f"unknown weight {weight!r}; use one of "
                         f"{_WEIGHT_FIELDS}")
    us, vs, metrics, __, delays = topology.edge_arrays()
    if weight == "metric":
        data = metrics.astype(np.float64)
    elif weight == "delay":
        data = delays
    else:
        data = np.ones(len(us), dtype=np.float64)
    n = topology.num_nodes
    rows = np.concatenate([us, vs])
    cols = np.concatenate([vs, us])
    vals = np.concatenate([data, data])
    return csr_matrix((vals, (rows, cols)), shape=(n, n))


@dataclass
class ShortestPathTree:
    """A single-source shortest-path tree.

    Attributes:
        source: the root node.
        distance: array of path costs from the root (inf if unreachable).
        predecessor: parent of each node on its shortest path
            (``NO_PREDECESSOR`` for the root and unreachable nodes).
    """

    source: int
    distance: np.ndarray
    predecessor: np.ndarray

    def reachable(self) -> np.ndarray:
        """Boolean mask of nodes reachable from the source."""
        return np.isfinite(self.distance)

    def path(self, node: int) -> list:
        """Node sequence from ``source`` to ``node`` (inclusive)."""
        if not np.isfinite(self.distance[node]):
            raise ValueError(f"node {node} unreachable from {self.source}")
        out = [node]
        while node != self.source:
            node = int(self.predecessor[node])
            out.append(node)
        out.reverse()
        return out

    def depth(self, node: int) -> int:
        """Hop count from the source to ``node``."""
        return len(self.path(node)) - 1


class ShortestPathForest:
    """Cached per-source shortest-path trees for one topology/weight."""

    def __init__(self, topology: Topology, weight: str = "metric") -> None:
        self.topology = topology
        self.weight = weight
        self._csr = topology_csr(topology, weight)
        self._trees: Dict[int, ShortestPathTree] = {}

    def tree(self, source: int) -> ShortestPathTree:
        """Shortest-path tree rooted at ``source`` (memoised)."""
        cached = self._trees.get(source)
        if cached is None:
            dist, pred = dijkstra(self._csr, indices=source,
                                  return_predecessors=True)
            cached = ShortestPathTree(source, dist, pred)
            self._trees[source] = cached
        return cached

    def distances_from(self, source: int) -> np.ndarray:
        """Path cost from ``source`` to every node."""
        return self.tree(source).distance

    def all_trees(self) -> "AllPairsTrees":
        """Dijkstra from every node at once (uses scipy's C core)."""
        dist, pred = dijkstra(self._csr, return_predecessors=True)
        return AllPairsTrees(distance=dist, predecessor=pred)


@dataclass
class AllPairsTrees:
    """All-pairs shortest-path result.

    Attributes:
        distance: ``[n, n]`` matrix of path costs; ``distance[s, v]``.
        predecessor: ``[n, n]``; ``predecessor[s, v]`` is v's parent on
            the tree rooted at s.
    """

    distance: np.ndarray
    predecessor: np.ndarray

    @property
    def num_nodes(self) -> int:
        return self.distance.shape[0]

    def hop_depths(self, max_rounds: int = 255) -> np.ndarray:
        """Hop count of every node in every source's tree.

        Returns an ``[n, n]`` int16 array; unreachable entries are -1.
        Computed by synchronous parent-pointer iteration: a node at hop
        depth *k* receives its final value in round *k*.
        """
        n = self.num_nodes
        pred = self.predecessor
        depth = np.full((n, n), -1, dtype=np.int32)
        np.fill_diagonal(depth, 0)
        valid = pred != NO_PREDECESSOR
        rows = np.arange(n)[:, None]
        safe_pred = np.where(valid, pred, 0)
        for __ in range(max_rounds):
            parent_depth = depth[rows, safe_pred]
            candidate = np.where(valid & (parent_depth >= 0),
                                 parent_depth + 1, -1)
            updated = np.maximum(depth, candidate.astype(np.int32))
            if np.array_equal(updated, depth):
                break
            depth = updated
        return depth.astype(np.int16)
