"""DVMRP prune/graft dynamics: membership-driven delivery trees.

DVMRP floods a source's packets down the truncated-broadcast tree;
routers whose subtree contains no group members send *prunes* upstream,
cutting themselves off; a new member *grafts* the branch back.  The
scoping analyses elsewhere treat every router as interested (session
*announcements* really are delivered everywhere in scope); this module
adds the membership dimension for data-plane questions — which routers
actually carry a group's traffic, and how much the tree shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set


from repro.routing.dvmrp import DvmrpRouter
from repro.topology.graph import Topology


class GroupMembership:
    """Which nodes have joined which groups."""

    def __init__(self) -> None:
        self._members: Dict[int, Set[int]] = {}

    def join(self, group: int, node: int) -> None:
        self._members.setdefault(group, set()).add(node)

    def leave(self, group: int, node: int) -> None:
        """Remove a member.  Idempotent; empty groups are dropped."""
        members = self._members.get(group)
        if members is None:
            return
        members.discard(node)
        if not members:
            del self._members[group]

    def members(self, group: int) -> Set[int]:
        return set(self._members.get(group, ()))

    def is_member(self, group: int, node: int) -> bool:
        return node in self._members.get(group, ())

    def groups(self) -> List[int]:
        return sorted(self._members)


@dataclass
class PrunedTree:
    """The delivery tree for one (source, group) after pruning.

    Attributes:
        source: tree root.
        group: group address.
        forwarding: nodes that carry traffic (on a path from the
            source to some member, member nodes included).
        pruned: nodes of the full truncated-broadcast tree that were
            cut because their subtree holds no members.
    """

    source: int
    group: int
    forwarding: Set[int]
    pruned: Set[int]

    @property
    def forwarding_count(self) -> int:
        return len(self.forwarding)


class PruningSimulation:
    """Computes pruned DVMRP delivery trees from membership state.

    Args:
        topology: the network.
        membership: group membership table (shared, mutable).
    """

    def __init__(self, topology: Topology,
                 membership: Optional[GroupMembership] = None) -> None:
        self.topology = topology
        self.membership = membership if membership is not None \
            else GroupMembership()
        self._router = DvmrpRouter(topology)

    def pruned_tree(self, source: int, group: int) -> PrunedTree:
        """The delivery tree after prunes for (source, group).

        A node forwards iff its subtree (in the source's broadcast
        tree) contains at least one member.  Runs one post-order pass
        over the tree: O(n).
        """
        children = self._router.delivery_children(source)
        members = self.membership.members(group)
        keeps: Dict[int, bool] = {}
        # Post-order via an explicit stack (the tree can be deep).
        stack = [(source, False)]
        while stack:
            node, processed = stack.pop()
            if not processed:
                stack.append((node, True))
                for child in children[node]:
                    stack.append((child, False))
            else:
                keep = node in members
                for child in children[node]:
                    keep = keep or keeps[child]
                keeps[node] = keep

        full_tree = set(keeps)
        forwarding = set()
        # The source always transmits; nodes stay on the tree iff
        # their own subtree needs the traffic.
        stack2 = [source]
        while stack2:
            node = stack2.pop()
            forwarding.add(node)
            for child in children[node]:
                if keeps[child]:
                    stack2.append(child)
        pruned = full_tree - forwarding
        return PrunedTree(source=source, group=group,
                          forwarding=forwarding, pruned=pruned)

    def traffic_bearing_links(self, source: int, group: int) -> int:
        """Number of links carrying the group's traffic."""
        tree = self.pruned_tree(source, group)
        children = self._router.delivery_children(source)
        count = 0
        for node in tree.forwarding:
            for child in children[node]:
                if child in tree.forwarding:
                    count += 1
        return count

    def savings(self, source: int, group: int) -> float:
        """Fraction of the broadcast tree pruned away.

        0.0 means everyone needed the traffic; 1.0 is impossible (the
        source itself always counts).
        """
        tree = self.pruned_tree(source, group)
        total = len(tree.forwarding) + len(tree.pruned)
        if total == 0:
            return 0.0
        return len(tree.pruned) / total
