"""Administrative scoping (paper §1, "Scoping Requirements").

"Administrative scoping is a relatively simple problem domain in that,
barring failures, two sites communicating within the scope zone will
be able to hear each other's messages, and no site outside the scope
zone can get any multicast packet into the scope zone if it uses an
address from the scope zone range."

We model RFC 2365-style zones: a zone is a set of nodes plus an
address range; zones of the same range never overlap, zones of
different ranges may nest.  Unlike TTL scoping, visibility inside a
zone is *symmetric* — which is exactly why "the simpler solutions work
well for administrative scope zone address allocation".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

import numpy as np

from repro.topology.graph import Topology


@dataclass(frozen=True)
class ScopeZone:
    """One administratively scoped zone.

    Attributes:
        name: human-readable zone name (e.g. "isi-campus").
        members: the node ids inside the zone boundary.
        range_lo: first address index of the zone's range.
        range_hi: one past the last address index.
    """

    name: str
    members: frozenset
    range_lo: int
    range_hi: int

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError(f"zone {self.name!r} has no members")
        if not 0 <= self.range_lo < self.range_hi:
            raise ValueError(
                f"zone {self.name!r} has bad range "
                f"[{self.range_lo}, {self.range_hi})"
            )

    def contains_node(self, node: int) -> bool:
        return node in self.members

    def contains_address(self, address: int) -> bool:
        return self.range_lo <= address < self.range_hi

    @property
    def range_size(self) -> int:
        return self.range_hi - self.range_lo


class AdminScopeMap:
    """The zone structure of a topology.

    Zones with the *same* address range must be node-disjoint (they
    are reuses of the range in topologically-separate places); zones
    with different ranges may nest or overlap freely (a campus zone
    inside an organisation zone).
    """

    def __init__(self, num_nodes: int,
                 zones: Iterable[ScopeZone] = ()) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.num_nodes = num_nodes
        self._zones: List[ScopeZone] = []
        for zone in zones:
            self.add_zone(zone)

    def add_zone(self, zone: ScopeZone) -> None:
        """Add a zone.

        Raises:
            ValueError: if a member is out of range, or the zone's
                address range collides with an overlapping zone that
                shares nodes (same range must mean disjoint members).
        """
        for node in zone.members:
            if not 0 <= node < self.num_nodes:
                raise ValueError(
                    f"zone {zone.name!r} member {node} outside topology"
                )
        for other in self._zones:
            ranges_overlap = (zone.range_lo < other.range_hi
                              and other.range_lo < zone.range_hi)
            if ranges_overlap and not (zone.range_lo == other.range_lo and
                                       zone.range_hi == other.range_hi):
                raise ValueError(
                    f"zones {zone.name!r} and {other.name!r} have "
                    f"partially overlapping address ranges"
                )
            if ranges_overlap and zone.members & other.members:
                raise ValueError(
                    f"zones {zone.name!r} and {other.name!r} share the "
                    f"range AND nodes — range reuse requires disjoint "
                    f"zones"
                )
        self._zones.append(zone)

    @property
    def zones(self) -> List[ScopeZone]:
        return list(self._zones)

    def zones_of(self, node: int) -> List[ScopeZone]:
        """Zones containing ``node``."""
        return [z for z in self._zones if z.contains_node(node)]

    def zone_for_address(self, node: int,
                         address: int) -> Optional[ScopeZone]:
        """The zone scoping ``address`` as seen from ``node``."""
        for zone in self._zones:
            if zone.contains_node(node) and zone.contains_address(address):
                return zone
        return None

    def reachable(self, source: int, address: int) -> np.ndarray:
        """Nodes that receive (source, address) traffic.

        RFC 2365 semantics: a zone boundary blocks scoped traffic in
        *both* directions.  A source inside a zone for the address's
        range reaches exactly the zone; a source outside every such
        zone reaches everything except those zones' interiors ("no
        site outside the scope zone can get any multicast packet into
        the scope zone").  Addresses outside every zone range flood
        everywhere (TTL permitting — admin scoping composes with, but
        is modelled independently of, TTL here).
        """
        mask = np.ones(self.num_nodes, dtype=bool)
        matching = [z for z in self._zones if z.contains_address(address)]
        for zone in matching:
            if zone.contains_node(source):
                inside = np.zeros(self.num_nodes, dtype=bool)
                inside[list(zone.members)] = True
                return inside
        for zone in matching:
            mask[list(zone.members)] = False
        return mask

    def visible_symmetric(self, a: int, b: int, address: int) -> bool:
        """Admin scoping's key property: a hears b iff b hears a."""
        return bool(self.reachable(a, address)[b]) == bool(
            self.reachable(b, address)[a]
        )


def zones_from_labels(topology: Topology, prefix_depth: int,
                      range_lo: int, range_hi: int) -> List[ScopeZone]:
    """Build same-range, disjoint zones from label prefixes.

    Groups nodes by the first ``prefix_depth`` components of their
    label (e.g. depth 2 on the synthetic Mbone groups by country) and
    gives each group the same reusable address range — the standard
    RFC 2365 local-scope pattern.
    """
    groups: Dict[str, Set[int]] = {}
    for node in topology.nodes():
        label = topology.label(node) or f"unlabelled/{node}"
        key = "/".join(label.split("/")[:prefix_depth])
        groups.setdefault(key, set()).add(node)
    return [
        ScopeZone(name=key, members=frozenset(nodes),
                  range_lo=range_lo, range_hi=range_hi)
        for key, nodes in sorted(groups.items())
    ]
