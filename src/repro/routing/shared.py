"""Shared multicast trees (CBT / sparse-mode PIM analogue).

In the request-response simulations of §3, packets travel either over
per-source shortest-path trees or over a single *shared* tree rooted at
a core.  The Doar-style generator's nearest-neighbour construction tree
"creates a tree similar to shared trees created by CBT and sparse-mode
PIM" (paper §3); this module wraps such a tree and answers the delay
queries the suppression simulation needs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.topology.graph import Topology


class SharedTree:
    """A delay-weighted tree over a subset of a topology's links.

    Args:
        num_nodes: number of nodes (ids ``0..num_nodes-1``).
        edges: iterable of ``(u, v, delay)`` tree edges.  Must form a
            spanning tree (``num_nodes - 1`` edges, connected).
        core: the tree's core/root node (CBT core, PIM RP).
    """

    def __init__(self, num_nodes: int,
                 edges: Iterable[Tuple[int, int, float]],
                 core: int = 0) -> None:
        self.num_nodes = num_nodes
        self.core = core
        self._adj: List[List[Tuple[int, float]]] = [
            [] for __ in range(num_nodes)
        ]
        count = 0
        for u, v, delay in edges:
            self._adj[u].append((v, float(delay)))
            self._adj[v].append((u, float(delay)))
            count += 1
        if count != num_nodes - 1:
            raise ValueError(
                f"a spanning tree over {num_nodes} nodes needs "
                f"{num_nodes - 1} edges, got {count}"
            )
        # Verify connectivity (and cache the core-rooted traversal).
        self._order, self._parent = self._traverse(core)
        if len(self._order) != num_nodes:
            raise ValueError("edges do not form a connected tree")

    @classmethod
    def from_topology(cls, topology: Topology,
                      edges: Sequence[Tuple[int, int]],
                      core: int = 0) -> "SharedTree":
        """Build from a topology and a list of its links to use."""
        tree_edges = []
        for u, v in edges:
            link = topology.link(u, v)
            tree_edges.append((u, v, link.delay))
        return cls(topology.num_nodes, tree_edges, core=core)

    def _traverse(self, root: int) -> Tuple[List[int], np.ndarray]:
        parent = np.full(self.num_nodes, -1, dtype=np.int64)
        order = [root]
        parent[root] = root
        head = 0
        while head < len(order):
            node = order[head]
            head += 1
            for nbr, __ in self._adj[node]:
                if parent[nbr] == -1:
                    parent[nbr] = node
                    order.append(nbr)
        parent[root] = -1
        return order, parent

    def delays_from(self, node: int) -> np.ndarray:
        """One-way tree-path delay from ``node`` to every node.

        On a shared tree every packet travels along the unique tree
        path, so this fully determines multicast timing.
        """
        delays = np.full(self.num_nodes, np.inf)
        delays[node] = 0.0
        stack = [node]
        seen = np.zeros(self.num_nodes, dtype=bool)
        seen[node] = True
        while stack:
            current = stack.pop()
            base = delays[current]
            for nbr, delay in self._adj[current]:
                if not seen[nbr]:
                    seen[nbr] = True
                    delays[nbr] = base + delay
                    stack.append(nbr)
        return delays

    def parent_of(self, node: int) -> Optional[int]:
        """Parent towards the core, or None for the core itself."""
        parent = int(self._parent[node])
        return None if parent < 0 else parent

    def depth_of(self, node: int) -> int:
        """Hop count from the core to ``node``."""
        depth = 0
        current = node
        while True:
            parent = self.parent_of(current)
            if parent is None:
                return depth
            current = parent
            depth += 1

    def __repr__(self) -> str:
        return f"SharedTree(nodes={self.num_nodes}, core={self.core})"
