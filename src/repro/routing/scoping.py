"""TTL scoping semantics.

A router forwarding a multicast packet over a link decrements the TTL
and then drops the packet if the result is below the link's configured
threshold (§1 of the paper).  Along a delivery-tree path from source
``s``, a packet sent with TTL ``t`` survives the ``k``-th hop crossing a
link with threshold ``theta`` iff ``t - k >= theta``.  The minimum TTL
that delivers a packet from ``s`` to ``v`` is therefore::

    need(s, v) = max over hops k on the tree path of (theta_k + k)

This module computes the full ``need`` matrix once per topology; every
scoping question in the allocation experiments then becomes a vectorised
comparison:

* which nodes hear a session announced from ``s`` with TTL ``t``:
  ``need[s] <= t``;
* which sessions are visible at a node ``b``:
  ``need[srcs, b] <= ttls``;
* whether two sessions' data scopes overlap:
  ``any(reach(a) & reach(b))``.

The asymmetry the paper describes (§1 "Scoping Requirements") arises
naturally: ``need`` is not symmetric when thresholds sit at different
hop distances from the two endpoints (fig. 9).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.routing.spt import NO_PREDECESSOR, ShortestPathForest
from repro.topology.graph import Topology

#: Sentinel for "no TTL can deliver" (disconnected); larger than any TTL.
UNREACHABLE_TTL = 10_000


class ScopeMap:
    """Minimum-required-TTL matrix plus cached reachability queries."""

    def __init__(self, need: np.ndarray) -> None:
        if need.ndim != 2 or need.shape[0] != need.shape[1]:
            raise ValueError(f"need must be square, got {need.shape}")
        self.need = need
        self._reach_cache: Dict[Tuple[int, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_topology(cls, topology: Topology,
                      weight: str = "metric") -> "ScopeMap":
        """Compute the min-required-TTL matrix for ``topology``.

        Delivery trees are shortest-path trees under ``weight`` (DVMRP
        metrics by default).
        """
        forest = ShortestPathForest(topology, weight)
        pairs = forest.all_trees()
        depth = pairs.hop_depths()
        n = topology.num_nodes
        thresholds = _threshold_matrix(topology)

        pred = pairs.predecessor
        valid = pred != NO_PREDECESSOR
        safe_pred = np.where(valid, pred, 0)
        cols = np.arange(n)[None, :].repeat(n, axis=0)
        # Threshold of the final link (parent -> node) on each tree path.
        link_thresh = thresholds[safe_pred, cols]

        need = np.full((n, n), UNREACHABLE_TTL, dtype=np.int32)
        np.fill_diagonal(need, 0)
        # Synchronous parent-pointer iteration, as in hop_depths: a node
        # at depth k is finalised in round k.
        hop_term = np.where(valid, link_thresh + depth, UNREACHABLE_TTL)
        rows = np.arange(n)[:, None]
        for __ in range(256):
            parent_need = need[rows, safe_pred]
            candidate = np.where(
                valid & (parent_need < UNREACHABLE_TTL),
                np.maximum(parent_need, hop_term),
                UNREACHABLE_TTL,
            )
            updated = np.minimum(need, candidate)
            np.fill_diagonal(updated, 0)
            if np.array_equal(updated, need):
                break
            need = updated
        return cls(need.astype(np.int16, copy=False)
                   if need.max() < 2 ** 15 else cls_need_int32(need))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.need.shape[0]

    def reachable(self, source: int, ttl: int) -> np.ndarray:
        """Boolean mask of nodes that hear (source, ttl) traffic."""
        key = (int(source), int(ttl))
        cached = self._reach_cache.get(key)
        if cached is None:
            cached = self.need[source] <= ttl
            cached.flags.writeable = False
            self._reach_cache[key] = cached
        return cached

    def can_hear(self, listener: int, source: int, ttl: int) -> bool:
        """True if ``listener`` receives (source, ttl) traffic."""
        return bool(self.need[source, listener] <= ttl)

    def visible_mask(self, at_node: int, sources: np.ndarray,
                     ttls: np.ndarray) -> np.ndarray:
        """Which of many (source, ttl) sessions are heard at ``at_node``.

        Args:
            at_node: listening node.
            sources: int array of session source nodes.
            ttls: int array of session TTLs (same length).

        Returns:
            Boolean array, one entry per session.
        """
        sources = np.asarray(sources, dtype=np.intp)
        ttls = np.asarray(ttls)
        return self.need[sources, at_node] <= ttls

    def scopes_overlap(self, src_a: int, ttl_a: int,
                       src_b: int, ttl_b: int) -> bool:
        """True if the data scopes of two sessions intersect anywhere.

        This is the clash condition: a receiver inside the intersection
        gets both sessions' traffic on the same group address.
        """
        reach_a = self.reachable(src_a, ttl_a)
        reach_b = self.reachable(src_b, ttl_b)
        return bool(np.any(reach_a & reach_b))

    def scope_size(self, source: int, ttl: int) -> int:
        """Number of nodes inside the (source, ttl) scope."""
        return int(self.reachable(source, ttl).sum())


def cls_need_int32(need: np.ndarray) -> np.ndarray:
    """Keep the need matrix as int32 when values exceed int16 range."""
    return need.astype(np.int32, copy=False)


def _threshold_matrix(topology: Topology) -> np.ndarray:
    """Dense [n, n] matrix of link TTL thresholds (0 where no link)."""
    n = topology.num_nodes
    thresholds = np.zeros((n, n), dtype=np.int16)
    for link in topology.links():
        thresholds[link.u, link.v] = link.threshold
        thresholds[link.v, link.u] = link.threshold
    return thresholds
