"""DVMRP-flavoured routing state.

The Mbone of the paper ran DVMRP: distance-vector routes over tunnel
metrics, reverse-path forwarding, and a routing-metric infinity of 32
(which is why the paper's partition rule in §2.4.1 bounds the highest
TTL band by "the DVMRP infinite routing metric of 32").

This module materialises the per-node routing state a DVMRP router
would hold — next hop and metric towards every source — and the
resulting per-source delivery trees (who forwards to whom), which are
exactly the trees the scoping and hop-count analyses consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.routing.spt import NO_PREDECESSOR, ShortestPathForest
from repro.topology.graph import DVMRP_INFINITY, Topology


@dataclass
class DvmrpRoutingTable:
    """One node's distance-vector state.

    Attributes:
        node: the owning router.
        next_hop: ``next_hop[s]`` is the RPF neighbour towards source
            ``s`` (-1 when unreachable or for the node itself).
        metric: ``metric[s]`` is the path metric towards ``s``
            (``DVMRP_INFINITY`` when unreachable).
    """

    node: int
    next_hop: np.ndarray
    metric: np.ndarray

    def rpf_neighbor(self, source: int) -> Optional[int]:
        """The neighbour from which packets of ``source`` are accepted."""
        hop = int(self.next_hop[source])
        return None if hop < 0 else hop

    def reaches(self, source: int) -> bool:
        return self.metric[source] < DVMRP_INFINITY


class DvmrpRouter:
    """Computes DVMRP routing tables and delivery trees for a topology.

    With symmetric metrics the reverse shortest paths DVMRP uses equal
    forward shortest paths, so tables are derived from a Dijkstra
    forest; paths whose total metric reaches ``DVMRP_INFINITY`` (32)
    are treated as unreachable, exactly as DVMRP's infinity does.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._forest = ShortestPathForest(topology, weight="metric")
        self._pairs = self._forest.all_trees()
        self._tables: Dict[int, DvmrpRoutingTable] = {}

    @property
    def num_nodes(self) -> int:
        return self.topology.num_nodes

    def table(self, node: int) -> DvmrpRoutingTable:
        """The distance-vector table held by ``node``."""
        cached = self._tables.get(node)
        if cached is not None:
            return cached
        n = self.num_nodes
        next_hop = np.full(n, -1, dtype=np.int64)
        metric = np.full(n, DVMRP_INFINITY, dtype=np.int64)
        for source in range(n):
            if source == node:
                metric[source] = 0
                continue
            cost = self._pairs.distance[source, node]
            if not np.isfinite(cost) or cost >= DVMRP_INFINITY:
                continue
            metric[source] = int(cost)
            # The RPF neighbour is node's parent on source's tree.
            pred = int(self._pairs.predecessor[source, node])
            if pred != NO_PREDECESSOR:
                next_hop[source] = pred
        cached = DvmrpRoutingTable(node, next_hop, metric)
        self._tables[node] = cached
        return cached

    def delivery_children(self, source: int) -> List[List[int]]:
        """Forwarding children of every node on ``source``'s tree.

        ``result[v]`` lists the neighbours to which ``v`` forwards a
        packet originated by ``source`` (the nodes whose RPF neighbour
        is ``v``), with DVMRP-infinity paths pruned.
        """
        n = self.num_nodes
        children: List[List[int]] = [[] for __ in range(n)]
        pred = self._pairs.predecessor[source]
        dist = self._pairs.distance[source]
        for v in range(n):
            if v == source:
                continue
            p = int(pred[v])
            if p == NO_PREDECESSOR:
                continue
            if not np.isfinite(dist[v]) or dist[v] >= DVMRP_INFINITY:
                continue
            children[p].append(v)
        return children

    def reachable_within_infinity(self, source: int) -> np.ndarray:
        """Mask of nodes whose metric from ``source`` is < 32."""
        dist = self._pairs.distance[source]
        return np.isfinite(dist) & (dist < DVMRP_INFINITY)
