"""Packet-level multicast forwarding (an mrouted work-alike).

Everything else in the repository reasons about scoping through the
precomputed min-required-TTL matrices of :mod:`repro.routing.scoping`.
This module implements the *mechanism* those matrices summarise: hop
by hop forwarding over the event scheduler, with per-hop TTL
decrement, threshold checks at boundary links, and reverse-path
delivery trees — i.e. what an mrouted daemon actually does to a
packet.

Its two jobs:

* cross-validate the vectorised scoping analysis against a faithful
  mechanism (see ``tests/test_routing_forwarding.py``: for random
  topologies, the set of routers a hop-by-hop packet reaches equals
  ``ScopeMap.reachable``);
* provide hop-accurate delivery timing for simulations that want real
  per-link latencies rather than end-to-end shortest-path delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.routing.dvmrp import DvmrpRouter
from repro.sim.events import EventScheduler
from repro.topology.graph import Topology

#: Callback invoked at each router that receives a forwarded packet:
#: (node, ForwardedPacket) -> None.
TapCallback = Callable[[int, "ForwardedPacket"], None]


@dataclass
class ForwardedPacket:
    """A multicast packet travelling hop by hop.

    Attributes:
        source: originating node.
        group: group address (opaque).
        ttl: *remaining* TTL at the current hop.
        payload: application payload.
        hops: hops traversed so far.
    """

    source: int
    group: int
    ttl: int
    payload: object = None
    hops: int = 0


@dataclass
class DeliveryRecord:
    """One router's reception of a packet."""

    node: int
    at_time: float
    remaining_ttl: int
    hops: int


class ForwardingEngine:
    """Hop-by-hop DVMRP-style forwarding over a topology.

    Packets follow the per-source reverse-path delivery tree computed
    by :class:`~repro.routing.dvmrp.DvmrpRouter`.  At each link the
    engine decrements the TTL and drops the packet if the result is
    below the link's threshold (the §1 semantics).

    Args:
        topology: the network.
        scheduler: event scheduler used for per-link delays.  If None,
            forwarding happens instantaneously (useful for pure
            reachability checks).
    """

    def __init__(self, topology: Topology,
                 scheduler: Optional[EventScheduler] = None) -> None:
        self.topology = topology
        self.scheduler = scheduler
        self.router = DvmrpRouter(topology)
        self._children_cache: Dict[int, List[List[int]]] = {}
        self.packets_forwarded = 0
        self.packets_dropped_ttl = 0

    def _children(self, source: int) -> List[List[int]]:
        cached = self._children_cache.get(source)
        if cached is None:
            cached = self.router.delivery_children(source)
            self._children_cache[source] = cached
        return cached

    # ------------------------------------------------------------------
    # Instantaneous reachability (mechanism-level ground truth)
    # ------------------------------------------------------------------
    def flood(self, source: int, ttl: int) -> List[DeliveryRecord]:
        """Deliver a packet everywhere it can go, instantaneously.

        Returns one record per router reached (the source itself is
        included with hops=0).
        """
        if not 0 <= ttl <= 255:
            raise ValueError(f"ttl {ttl} outside [0, 255]")
        children = self._children(source)
        records = [DeliveryRecord(source, 0.0, ttl, 0)]
        stack = [(source, ttl, 0, 0.0)]
        while stack:
            node, remaining, hops, elapsed = stack.pop()
            for child in children[node]:
                link = self.topology.link(node, child)
                new_ttl = remaining - 1
                if new_ttl < link.threshold:
                    self.packets_dropped_ttl += 1
                    continue
                self.packets_forwarded += 1
                arrival = elapsed + link.delay
                records.append(DeliveryRecord(child, arrival, new_ttl,
                                              hops + 1))
                stack.append((child, new_ttl, hops + 1, arrival))
        return records

    def reachable_set(self, source: int, ttl: int) -> Set[int]:
        """Routers that receive a (source, ttl) packet."""
        return {record.node for record in self.flood(source, ttl)}

    # ------------------------------------------------------------------
    # Scheduled forwarding (per-link latency on the event scheduler)
    # ------------------------------------------------------------------
    def send(self, packet: ForwardedPacket,
             tap: TapCallback) -> None:
        """Forward ``packet`` hop by hop with real per-link delays.

        ``tap`` is invoked (via the scheduler) at every router the
        packet reaches, including the source at time now.

        Raises:
            RuntimeError: if the engine was built without a scheduler.
        """
        if self.scheduler is None:
            raise RuntimeError("scheduled forwarding needs a scheduler")
        tap(packet.source, packet)
        self._forward_from(packet.source, packet, tap)

    def _forward_from(self, node: int, packet: ForwardedPacket,
                      tap: TapCallback) -> None:
        children = self._children(packet.source)
        for child in children[node]:
            link = self.topology.link(node, child)
            new_ttl = packet.ttl - 1
            if new_ttl < link.threshold:
                self.packets_dropped_ttl += 1
                continue
            self.packets_forwarded += 1
            hop_packet = ForwardedPacket(
                source=packet.source, group=packet.group, ttl=new_ttl,
                payload=packet.payload, hops=packet.hops + 1,
            )
            # Fire-and-forget is safe here: the engine has no teardown
            # path (nothing ever stops a packet mid-flight), and the
            # lambda binds the child/packet as defaults, so no state the
            # hop observes can change before it fires.  A stored handle
            # would have no caller to cancel it.
            self.scheduler.schedule(  # simlint: disable=discarded-handle
                link.delay,
                lambda c=child, p=hop_packet: self._deliver(c, p, tap),
            )

    def _deliver(self, node: int, packet: ForwardedPacket,
                 tap: TapCallback) -> None:
        tap(node, packet)
        self._forward_from(node, packet, tap)
