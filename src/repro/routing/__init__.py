"""Multicast routing substrate.

Implements the routing machinery the paper's experiments run on:

* DVMRP-style source-rooted shortest-path trees over tunnel metrics
  (:mod:`repro.routing.spt`, :mod:`repro.routing.dvmrp`),
* shared trees as built by CBT / sparse-mode PIM
  (:mod:`repro.routing.shared`),
* TTL scoping semantics — decrement, then drop below the configured
  threshold — exposed as vectorised "minimum required TTL" matrices
  (:mod:`repro.routing.scoping`).
"""

from repro.routing.admin_scoping import (
    AdminScopeMap,
    ScopeZone,
    zones_from_labels,
)
from repro.routing.dvmrp import DvmrpRouter, DvmrpRoutingTable
from repro.routing.forwarding import ForwardedPacket, ForwardingEngine
from repro.routing.pruning import GroupMembership, PruningSimulation
from repro.routing.scoping import ScopeMap
from repro.routing.shared import SharedTree
from repro.routing.spt import ShortestPathForest, ShortestPathTree

__all__ = [
    "AdminScopeMap",
    "DvmrpRouter",
    "DvmrpRoutingTable",
    "ForwardedPacket",
    "ForwardingEngine",
    "GroupMembership",
    "PruningSimulation",
    "ScopeMap",
    "ScopeZone",
    "SharedTree",
    "ShortestPathForest",
    "ShortestPathTree",
    "zones_from_labels",
]
