"""Command-line interface.

Exposes the library's main workflows without writing Python:

    python -m repro generate-map --nodes 400 --out mbone.map
    python -m repro map-stats mbone.map
    python -m repro hopcount --nodes 400 --ttls 15 47 63 127
    python -m repro fig5 --sizes 100 200 400 --trials 3
    python -m repro steady-state --algorithm aipr3 --spaces 100 200
    python -m repro request-response --sites 800 --d2 3.2 \
        --timer exponential
    python -m repro analyze birthday --space 10000 --allocations 118
    python -m repro analyze responders --sites 1600 --buckets 32
    python -m repro lint src --determinism
    python -m repro modelcheck smoke
    python -m repro obs --scenario steady --format json
    python -m repro fleet fig5 --jobs 4 --checkpoint .fleet
    python -m repro flow src --hotpaths-out flow-hotpaths.json
    python -m repro units src --strict
    python -m repro alias src --ledger-out alias-ledger.json
    python -m repro scenario fuzz --runs 100 --seed 0x19980902

Every simulation is deterministic for a given ``--seed``; the ``lint``
subcommand statically enforces the invariants that make that true, and
``modelcheck`` exhausts small protocol configurations against the
paper's safety claims.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


from repro.analysis.birthday import clash_probability
from repro.analysis.clash_model import allocations_before_half
from repro.analysis.response_bounds import (
    exponential_expected_responses,
    uniform_expected_responses,
)
from repro.experiments.algorithms import ALGORITHM_FACTORIES
from repro.experiments.allocation_run import fig5_run
from repro.experiments.reporting import format_table
from repro.experiments.request_response import (
    RequestResponseConfig,
    simulate_request_response,
)
from repro.experiments.steady_state import allocations_at_half_clash
from repro.experiments.ttl_distributions import (
    ALL_DISTRIBUTIONS,
    DS4,
)
from repro.routing.scoping import ScopeMap
from repro.topology.doar import DoarParams, generate_doar
from repro.topology.hopcount import hop_count_distribution, usage_table
from repro.topology.mapfile import load_map, save_map
from repro.topology.mbone import MboneParams, generate_mbone
from repro.topology.stats import format_summary, summarize

def _seed_value(text: str) -> int:
    """Seed argument: decimal or prefixed (0x/0o/0b) literal."""
    return int(text, 0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Handley SIGCOMM'98 multicast address allocation "
                    "reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate-map", help="generate a topology map")
    gen.add_argument("--kind", choices=("mbone", "doar"), default="mbone")
    gen.add_argument("--nodes", type=int, default=400)
    gen.add_argument("--seed", type=int, default=1998)
    gen.add_argument("--out", required=True)

    stats = sub.add_parser("map-stats", help="summarise a map file")
    stats.add_argument("map")

    hop = sub.add_parser("hopcount", help="fig. 10 hop-count table")
    hop.add_argument("--map")
    hop.add_argument("--nodes", type=int, default=400)
    hop.add_argument("--seed", type=int, default=1998)
    hop.add_argument("--ttls", type=int, nargs="+",
                     default=[15, 47, 63, 127])

    fig5 = sub.add_parser("fig5", help="allocations before first clash")
    fig5.add_argument("--map")
    fig5.add_argument("--nodes", type=int, default=400)
    fig5.add_argument("--seed", type=int, default=1998)
    fig5.add_argument("--sizes", type=int, nargs="+",
                      default=[100, 200, 400])
    fig5.add_argument("--trials", type=int, default=3)
    fig5.add_argument("--algorithms", nargs="+",
                      default=["random", "informed", "ipr3", "ipr7"],
                      choices=sorted(ALGORITHM_FACTORIES))
    fig5.add_argument("--jobs", type=int, default=1,
                      help="worker processes; >1 shards the grid "
                           "through repro.fleet (same rows, same "
                           "bytes)")

    steady = sub.add_parser("steady-state",
                            help="figs. 12/13 steady-state point")
    steady.add_argument("--map")
    steady.add_argument("--nodes", type=int, default=400)
    steady.add_argument("--seed", type=int, default=1998)
    steady.add_argument("--algorithm", default="aipr1",
                        choices=sorted(ALGORITHM_FACTORIES))
    steady.add_argument("--spaces", type=int, nargs="+",
                        default=[100, 200, 400])
    steady.add_argument("--trials", type=int, default=6)
    steady.add_argument("--same-site", action="store_true",
                        help="fig. 13's upper-bound replacement rule")
    steady.add_argument("--jobs", type=int, default=1,
                        help="worker processes; >1 shards the points "
                             "through repro.fleet")

    rr = sub.add_parser("request-response",
                        help="figs. 15-19 suppression simulation")
    rr.add_argument("--sites", type=int, default=800)
    rr.add_argument("--seed", type=int, default=1998)
    rr.add_argument("--d2", type=float, default=3.2)
    rr.add_argument("--d1", type=float, default=0.0)
    rr.add_argument("--timer", choices=("uniform", "exponential"),
                    default="exponential")
    rr.add_argument("--routing", choices=("spt", "shared"),
                    default="spt")
    rr.add_argument("--jitter", type=float, default=0.0)
    rr.add_argument("--trials", type=int, default=10)

    reproduce = sub.add_parser(
        "reproduce",
        help="compact end-to-end reproduction report (all anchors)",
    )
    reproduce.add_argument("--nodes", type=int, default=300)
    reproduce.add_argument("--seed", type=int, default=1998)
    reproduce.add_argument("--out", help="also write the report here")

    lint = sub.add_parser(
        "lint",
        help="determinism & simulation-correctness linter "
             "(python -m repro.lint)",
    )
    lint.add_argument("paths", nargs="*", default=["src"])
    lint.add_argument("--format", choices=("text", "json", "github"),
                      default="text")
    lint.add_argument("--select", nargs="+", metavar="RULE")
    lint.add_argument("--ignore", nargs="+", metavar="RULE")
    lint.add_argument("--list-rules", action="store_true")
    lint.add_argument("--no-cache", action="store_true",
                      help="bypass the incremental lint cache")
    lint.add_argument("--determinism", action="store_true")
    lint.add_argument("--sanitize", action="store_true",
                      help="also run the runtime sanitizer scenarios")
    lint.add_argument("--lint-seed", type=int, default=1998,
                      help="seed for --determinism / --sanitize")

    modelcheck = sub.add_parser(
        "modelcheck",
        help="bounded explicit-state model checker "
             "(python -m repro.modelcheck)",
    )
    modelcheck.add_argument("scenarios", nargs="*", default=["smoke"])
    modelcheck.add_argument("--format",
                            choices=("text", "json", "github"),
                            default="text")
    modelcheck.add_argument("--mutation")
    modelcheck.add_argument("--mc-seed", type=int, default=0,
                            help="world seed for the explorer")
    modelcheck.add_argument("--depth", type=int, default=None)
    modelcheck.add_argument("--keep-going", action="store_true")
    modelcheck.add_argument("--list-scenarios", action="store_true")
    modelcheck.add_argument("--list-rules", action="store_true")

    obs = sub.add_parser(
        "obs",
        help="observability: instrumented scenarios, metrics and "
             "benchmarks (python -m repro.obs)",
    )
    obs.add_argument("scenarios", nargs="*", default=[])
    obs.add_argument("--scenario", action="append", default=[],
                     metavar="NAME")
    obs.add_argument("--format",
                     choices=("text", "json", "prom", "github"),
                     default="text")
    obs.add_argument("--obs-seed", type=int, default=1998,
                     help="scenario seed")
    obs.add_argument("--bench", action="store_true",
                     help="collect the BENCH_obs baseline")
    obs.add_argument("--out", help="also write the report here")
    obs.add_argument("--list-scenarios", action="store_true")
    obs.add_argument("--list-rules", action="store_true")

    fleet = sub.add_parser(
        "fleet",
        help="parallel sweep execution with checkpoint/resume "
             "(python -m repro.fleet)",
    )
    fleet.add_argument("sweeps", nargs="*", default=[])
    fleet.add_argument("--sweep", action="append", default=[],
                       metavar="NAME")
    fleet.add_argument("--jobs", type=int, default=1)
    fleet.add_argument("--fleet-seed", type=int, default=1998,
                       help="master sweep seed")
    fleet.add_argument("--format",
                       choices=("text", "json", "github"),
                       default="text")
    fleet.add_argument("--checkpoint", metavar="DIR")
    fleet.add_argument("--resume", action="store_true")
    fleet.add_argument("--timeout", type=float)
    fleet.add_argument("--retries", type=int)
    fleet.add_argument("--backoff", type=float)
    fleet.add_argument("--nodes", type=int)
    fleet.add_argument("--trials", type=int)
    fleet.add_argument("--bench", action="store_true",
                       help="collect the BENCH_fleet baseline")
    fleet.add_argument("--out", help="also write the report here")
    fleet.add_argument("--list-sweeps", action="store_true")
    fleet.add_argument("--list-rules", action="store_true")

    flow = sub.add_parser(
        "flow",
        help="whole-program RNG-provenance, purity and hot-path "
             "analyses (python -m repro.flow)",
    )
    flow.add_argument("paths", nargs="*", default=["src"])
    flow.add_argument("--format", choices=("text", "json", "github"),
                      default="text")
    flow.add_argument("--select", action="append", metavar="RULE")
    flow.add_argument("--ignore", action="append", metavar="RULE")
    flow.add_argument("--strict", action="store_true",
                      help="advisory findings also fail the run")
    flow.add_argument("--hotpaths-out", metavar="FILE",
                      help="write the ranked flow-hotpaths.json")
    flow.add_argument("--no-cache", action="store_true",
                      help="bypass the whole-tree flow cache")
    flow.add_argument("--list-rules", action="store_true")

    units = sub.add_parser(
        "units",
        help="semantic-unit checking and value-range bounds proofs "
             "(python -m repro.units)",
    )
    units.add_argument("paths", nargs="*", default=["src"])
    units.add_argument("--format", choices=("text", "json", "github"),
                       default="text")
    units.add_argument("--select", action="append", metavar="RULE")
    units.add_argument("--ignore", action="append", metavar="RULE")
    units.add_argument("--strict", action="store_true",
                       help="advisory proof obligations also fail "
                            "the run")
    units.add_argument("--no-cache", action="store_true",
                       help="bypass the whole-tree units cache")
    units.add_argument("--list-rules", action="store_true")

    alias = sub.add_parser(
        "alias",
        help="interprocedural escape/aliasing analysis and per-class "
             "SoA migration verdicts (python -m repro.alias)",
    )
    alias.add_argument("paths", nargs="*", default=["src"])
    alias.add_argument("--format", choices=("text", "json", "github"),
                       default="text")
    alias.add_argument("--select", action="append", metavar="RULE")
    alias.add_argument("--ignore", action="append", metavar="RULE")
    alias.add_argument("--strict", action="store_true",
                       help="advisory SoA blockers also fail the run")
    alias.add_argument("--ledger-out", metavar="FILE",
                       help="write the per-class alias-ledger.json")
    alias.add_argument("--no-cache", action="store_true",
                       help="bypass the whole-tree alias cache")
    alias.add_argument("--list-rules", action="store_true")

    scenario = sub.add_parser(
        "scenario",
        help="declarative workload/adversary scenarios and the "
             "deterministic fuzzing loop (python -m repro.scenario)",
    )
    scenario.add_argument("verb", nargs="?",
                          choices=("run", "replay", "fuzz"),
                          default="fuzz")
    scenario.add_argument("--format",
                          choices=("text", "json", "github"),
                          default="text")
    scenario.add_argument("--spec", metavar="FILE")
    scenario.add_argument("--artifact", metavar="FILE")
    scenario.add_argument("--seed", type=_seed_value, default=None,
                          help="campaign/run seed (decimal or 0x hex)")
    scenario.add_argument("--runs", type=int, default=None)
    scenario.add_argument("--max-events", type=int, default=None)
    scenario.add_argument("--jobs", type=int, default=1)
    scenario.add_argument("--corpus-out", metavar="DIR")
    scenario.add_argument("--no-shrink", action="store_true")
    scenario.add_argument("--trace", action="store_true")
    scenario.add_argument("--out", help="also write the report here")
    scenario.add_argument("--no-cache", action="store_true",
                          help="bypass the scenario run cache")
    scenario.add_argument("--list-rules", action="store_true")

    analyze = sub.add_parser("analyze", help="closed-form models")
    analyze_sub = analyze.add_subparsers(dest="model", required=True)
    birthday = analyze_sub.add_parser("birthday")
    birthday.add_argument("--space", type=int, default=10_000)
    birthday.add_argument("--allocations", type=int, default=118)
    eq1 = analyze_sub.add_parser("eq1")
    eq1.add_argument("--space", type=int, default=10_000)
    eq1.add_argument("--i-fraction", type=float, default=0.001)
    resp = analyze_sub.add_parser("responders")
    resp.add_argument("--sites", type=int, default=1600)
    resp.add_argument("--buckets", type=int, default=32)

    return parser


def _load_topology(args) -> "object":
    if getattr(args, "map", None):
        return load_map(args.map)
    return generate_mbone(MboneParams(total_nodes=args.nodes,
                                      seed=args.seed))


def cmd_generate_map(args) -> int:
    if args.kind == "mbone":
        topology = generate_mbone(MboneParams(total_nodes=args.nodes,
                                              seed=args.seed))
    else:
        topology = generate_doar(DoarParams(num_nodes=args.nodes,
                                            seed=args.seed)).topology
    save_map(topology, args.out)
    print(f"wrote {topology} to {args.out}")
    return 0


def cmd_map_stats(args) -> int:
    topology = load_map(args.map)
    print(format_summary(summarize(topology)))
    return 0


def cmd_hopcount(args) -> int:
    topology = _load_topology(args)
    stats = hop_count_distribution(topology, ttls=args.ttls)
    rows = [(r["ttl"], r["typical_hop_count"], r["max_hop_count"],
             r["example_usage"]) for r in usage_table(stats)]
    print(format_table(["ttl", "typical hops", "max hops", "usage"],
                       rows))
    return 0


def cmd_fig5(args) -> int:
    if args.jobs > 1:
        rows = _fig5_rows_fleet(args)
    else:
        topology = _load_topology(args)
        scope_map = ScopeMap.from_topology(topology)
        algorithms = {name: ALGORITHM_FACTORIES[name]
                      for name in args.algorithms}
        rows = fig5_run(scope_map, algorithms, args.sizes,
                        ALL_DISTRIBUTIONS, trials=args.trials,
                        seed=args.seed)
    print(format_table(
        ["algorithm", "dist", "space", "allocations"],
        [(r.algorithm, r.distribution, r.space_size,
          round(r.mean_allocations, 1)) for r in rows],
    ))
    return 0


def _fig5_rows_fleet(args) -> list:
    """The fig. 5 grid sharded across worker processes.

    Cells derive their trial streams from the cell coordinates, so
    these rows are byte-identical to the serial ``fig5_run`` path.
    """
    from repro.experiments.allocation_run import Fig5Row
    from repro.fleet.runner import run_sweep
    from repro.fleet.sweeps import fig5_sweep

    spec = fig5_sweep(
        seed=args.seed, nodes=args.nodes, sizes=args.sizes,
        algorithms=args.algorithms,
        distributions=[d.name for d in ALL_DISTRIBUTIONS],
        trials=args.trials, max_allocations=None,
        map_path=getattr(args, "map", None),
    )
    result = run_sweep(spec, jobs=args.jobs)
    if not result.complete:
        for issue in result.issues:
            print(f"repro fig5: {issue.format()}", file=sys.stderr)
        raise SystemExit(1)
    return [
        Fig5Row(
            algorithm=row["algorithm"],
            distribution=row["distribution"],
            space_size=row["space_size"],
            mean_allocations=row["mean_allocations"],
            trials=row["trials"],
        )
        for row in result.aggregate()["rows"]
    ]


def cmd_steady_state(args) -> int:
    if args.jobs > 1:
        rows = _steady_rows_fleet(args)
    else:
        topology = _load_topology(args)
        scope_map = ScopeMap.from_topology(topology)
        factory = ALGORITHM_FACTORIES[args.algorithm]
        rows = []
        for space in args.spaces:
            value = allocations_at_half_clash(
                scope_map, factory, space, DS4, trials=args.trials,
                seed=args.seed, same_site_replacement=args.same_site,
            )
            rows.append((args.algorithm, space, value))
    print(format_table(["algorithm", "space", "allocations@0.5"], rows))
    return 0


def _steady_rows_fleet(args) -> list:
    """The steady-state points sharded across worker processes.

    The cells keep the legacy ``seed ^ crc32(algorithm)`` derivation,
    so the table matches the serial path byte for byte.
    """
    from repro.fleet.runner import run_sweep
    from repro.fleet.sweeps import steady_sweep

    spec = steady_sweep(
        seed=args.seed, nodes=args.nodes,
        sizes=args.spaces, algorithms=(args.algorithm,),
        distribution=DS4.name, trials=args.trials,
        same_site=args.same_site, derive_seed=False,
        map_path=getattr(args, "map", None),
    )
    result = run_sweep(spec, jobs=args.jobs)
    if not result.complete:
        for issue in result.issues:
            print(f"repro steady-state: {issue.format()}",
                  file=sys.stderr)
        raise SystemExit(1)
    return [
        (row["algorithm"], row["space_size"],
         row["allocations_at_half"])
        for row in result.aggregate()["rows"]
    ]


def cmd_request_response(args) -> int:
    doar = generate_doar(DoarParams(num_nodes=args.sites,
                                    seed=args.seed))
    config = RequestResponseConfig(
        d2=args.d2, d1=args.d1, timer=args.timer, routing=args.routing,
        jitter=args.jitter, trials=args.trials, seed=args.seed,
    )
    result = simulate_request_response(doar, config)
    print(format_table(
        ["sites", "timer", "D2 (s)", "mean responses",
         "mean first delay (s)", "max first delay (s)"],
        [(result.num_sites, args.timer, args.d2,
          round(result.mean_responses, 2),
          round(result.mean_first_delay, 3),
          round(result.max_first_delay, 3))],
    ))
    return 0


def cmd_lint(args) -> int:
    from repro.lint.cli import main as lint_main

    argv: List[str] = list(args.paths)
    argv += ["--format", args.format, "--seed", str(args.lint_seed)]
    if args.select:
        argv += ["--select", *args.select]
    if args.ignore:
        argv += ["--ignore", *args.ignore]
    if args.list_rules:
        argv.append("--list-rules")
    if args.no_cache:
        argv.append("--no-cache")
    if args.determinism:
        argv.append("--determinism")
    if args.sanitize:
        argv.append("--sanitize")
    return lint_main(argv)


def cmd_modelcheck(args) -> int:
    from repro.modelcheck.cli import main as modelcheck_main

    argv: List[str] = list(args.scenarios)
    argv += ["--format", args.format, "--seed", str(args.mc_seed)]
    if args.mutation:
        argv += ["--mutation", args.mutation]
    if args.depth is not None:
        argv += ["--depth", str(args.depth)]
    if args.keep_going:
        argv.append("--keep-going")
    if args.list_scenarios:
        argv.append("--list-scenarios")
    if args.list_rules:
        argv.append("--list-rules")
    return modelcheck_main(argv)


def cmd_obs(args) -> int:
    from repro.obs.cli import main as obs_main

    argv: List[str] = list(args.scenarios)
    for name in args.scenario:
        argv += ["--scenario", name]
    argv += ["--format", args.format, "--seed", str(args.obs_seed)]
    if args.bench:
        argv.append("--bench")
    if args.out:
        argv += ["--out", args.out]
    if args.list_scenarios:
        argv.append("--list-scenarios")
    if args.list_rules:
        argv.append("--list-rules")
    return obs_main(argv)


def cmd_fleet(args) -> int:
    from repro.fleet.cli import main as fleet_main

    argv: List[str] = list(args.sweeps)
    for name in args.sweep:
        argv += ["--sweep", name]
    argv += ["--format", args.format, "--seed", str(args.fleet_seed),
             "--jobs", str(args.jobs)]
    if args.checkpoint:
        argv += ["--checkpoint", args.checkpoint]
    if args.resume:
        argv.append("--resume")
    if args.timeout is not None:
        argv += ["--timeout", str(args.timeout)]
    if args.retries is not None:
        argv += ["--retries", str(args.retries)]
    if args.backoff is not None:
        argv += ["--backoff", str(args.backoff)]
    if args.nodes is not None:
        argv += ["--nodes", str(args.nodes)]
    if args.trials is not None:
        argv += ["--trials", str(args.trials)]
    if args.bench:
        argv.append("--bench")
    if args.out:
        argv += ["--out", args.out]
    if args.list_sweeps:
        argv.append("--list-sweeps")
    if args.list_rules:
        argv.append("--list-rules")
    return fleet_main(argv)


def cmd_flow(args) -> int:
    from repro.flow.cli import main as flow_main

    argv: List[str] = list(args.paths)
    argv += ["--format", args.format]
    for name in args.select or []:
        argv += ["--select", name]
    for name in args.ignore or []:
        argv += ["--ignore", name]
    if args.strict:
        argv.append("--strict")
    if args.hotpaths_out:
        argv += ["--hotpaths-out", args.hotpaths_out]
    if args.no_cache:
        argv.append("--no-cache")
    if args.list_rules:
        argv.append("--list-rules")
    return flow_main(argv)


def cmd_units(args) -> int:
    from repro.units.cli import main as units_main

    argv: List[str] = list(args.paths)
    argv += ["--format", args.format]
    for name in args.select or []:
        argv += ["--select", name]
    for name in args.ignore or []:
        argv += ["--ignore", name]
    if args.strict:
        argv.append("--strict")
    if args.no_cache:
        argv.append("--no-cache")
    if args.list_rules:
        argv.append("--list-rules")
    return units_main(argv)


def cmd_alias(args) -> int:
    from repro.alias.cli import main as alias_main

    argv: List[str] = list(args.paths)
    argv += ["--format", args.format]
    for name in args.select or []:
        argv += ["--select", name]
    for name in args.ignore or []:
        argv += ["--ignore", name]
    if args.strict:
        argv.append("--strict")
    if args.ledger_out:
        argv += ["--ledger-out", args.ledger_out]
    if args.no_cache:
        argv.append("--no-cache")
    if args.list_rules:
        argv.append("--list-rules")
    return alias_main(argv)


def cmd_scenario(args) -> int:
    from repro.scenario.cli import main as scenario_main

    argv: List[str] = [args.verb, "--format", args.format]
    if args.seed is not None:
        argv += ["--seed", str(args.seed)]
    if args.runs is not None:
        argv += ["--runs", str(args.runs)]
    if args.max_events is not None:
        argv += ["--max-events", str(args.max_events)]
    if args.spec:
        argv += ["--spec", args.spec]
    if args.artifact:
        argv += ["--artifact", args.artifact]
    if args.jobs != 1:
        argv += ["--jobs", str(args.jobs)]
    if args.corpus_out:
        argv += ["--corpus-out", args.corpus_out]
    if args.no_shrink:
        argv.append("--no-shrink")
    if args.trace:
        argv.append("--trace")
    if args.out:
        argv += ["--out", args.out]
    if args.no_cache:
        argv.append("--no-cache")
    if args.list_rules:
        argv.append("--list-rules")
    return scenario_main(argv)


def cmd_analyze(args) -> int:
    if args.model == "birthday":
        p = clash_probability(args.space, args.allocations)
        print(f"P(clash | space={args.space}, "
              f"allocations={args.allocations}) = {p:.4f}")
    elif args.model == "eq1":
        m = allocations_before_half(args.space, args.i_fraction)
        print(f"allocations at clash-prob 0.5 "
              f"(space={args.space}, i={args.i_fraction}m) = {m}")
    else:
        uniform = uniform_expected_responses(args.sites, args.buckets)
        exponential = exponential_expected_responses(args.sites,
                                                     args.buckets)
        print(f"expected responders (n={args.sites}, d={args.buckets}): "
              f"uniform={uniform:.2f} exponential={exponential:.3f}")
    return 0


def cmd_reproduce(args) -> int:
    """A compact reproduction: the paper's analytic anchors plus quick
    topology-backed checks, in one report."""
    from repro.analysis.birthday import allocations_for_clash_probability
    from repro.analysis.announcement import (
        ExponentialBackoffSchedule,
        paper_two_term_delay,
    )
    from repro.analysis.clash_model import iprma_concurrent_sessions
    from repro.analysis.response_bounds import (
        exponential_expected_responses,
    )
    from repro.topology.hopcount import hop_count_distribution

    lines = ["repro — compact reproduction report", ""]

    def add(label, paper, measured):
        lines.append(f"{label:<46s} paper: {paper:<12s} "
                     f"measured: {measured}")

    add("fig. 4 allocations at p=0.5 (space 10,000)", "~118",
        str(allocations_for_clash_probability(10_000, 0.5)))
    add("sec. 2.3 mean announcement delay", "~12 s",
        f"{paper_two_term_delay():.2f} s")
    add("sec. 2.3 concurrent sessions (65,536/8)", "16,496",
        f"{iprma_concurrent_sessions():,}")
    add("sec. 2.3 back-off discovery delay", "~0.3 s",
        f"{ExponentialBackoffSchedule().mean_discovery_delay():.2f} s")
    add("fig. 18 exponential responder limit", "1.442695",
        f"{exponential_expected_responses(100_000, 40):.4f}")

    topology = generate_mbone(MboneParams(total_nodes=args.nodes,
                                          seed=args.seed))
    scope_map = ScopeMap.from_topology(topology)
    stats = hop_count_distribution(topology, scope_map=scope_map)
    add("fig. 10 typical hops at TTL 127", "10.6",
        f"{stats[127].mean_hops:.1f}")
    add("fig. 10 typical hops at TTL 15", "3.1",
        f"{stats[15].mean_hops:.1f}")

    rows = fig5_run(
        scope_map,
        {"R": ALGORITHM_FACTORIES["random"],
         "IPR 7-band": ALGORITHM_FACTORIES["ipr7"]},
        [200], ALL_DISTRIBUTIONS[-1:], trials=3, seed=args.seed,
    )
    means = {r.algorithm: r.mean_allocations for r in rows}
    add("fig. 5 IPR-7 advantage over R (space 200, ds4)", ">>1x",
        f"{means['IPR 7-band'] / max(1.0, means['R']):.1f}x")

    doar = generate_doar(DoarParams(num_nodes=min(400, args.nodes),
                                    seed=args.seed))
    result = simulate_request_response(
        doar, RequestResponseConfig(d2=3.2, timer="exponential",
                                    trials=6, seed=args.seed),
    )
    add("fig. 19 exponential responses at D2=3.2 s", "~2",
        f"{result.mean_responses:.1f}")

    report = "\n".join(lines) + "\n"
    print(report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
    return 0


COMMANDS = {
    "generate-map": cmd_generate_map,
    "reproduce": cmd_reproduce,
    "map-stats": cmd_map_stats,
    "hopcount": cmd_hopcount,
    "fig5": cmd_fig5,
    "steady-state": cmd_steady_state,
    "request-response": cmd_request_response,
    "analyze": cmd_analyze,
    "lint": cmd_lint,
    "modelcheck": cmd_modelcheck,
    "obs": cmd_obs,
    "fleet": cmd_fleet,
    "flow": cmd_flow,
    "units": cmd_units,
    "alias": cmd_alias,
    "scenario": cmd_scenario,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
