"""Whole-program call-graph and dataflow analyses (FLOW6xx).

Three passes over one shared call graph of ``src/``:

* :mod:`repro.flow.provenance` — FLOW601–604, RNG provenance: every
  draw on a fleet-job or experiment path must trace to a keyed
  ``derived_stream``, the shard stream, or a seeded generator.
* :mod:`repro.flow.purity` — FLOW611–615, purity proofs for fleet
  jobs: no global mutation, no wall clock, no I/O outside the
  checkpoint API, no writes through captured state.
* :mod:`repro.flow.hotpath` — FLOW621–624, per-event complexity on
  the simulator's hot paths, ranked into ``flow-hotpaths.json``.

Run as ``python -m repro.flow`` or ``repro flow``; shares the
six-tool registry and exit-code contract in :mod:`repro.lint.registry`.
"""

from repro.flow.analysis import (  # noqa: F401
    FlowReport,
    analyze_paths,
    analyze_sources,
)
from repro.flow.graph import CallGraph, build_graph  # noqa: F401
from repro.flow.rules import (  # noqa: F401
    ADVISORY_RULES,
    FLOW_RULES,
    FLOW_RULE_NAMES,
)
