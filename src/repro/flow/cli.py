"""``python -m repro.flow`` — the whole-program analysis CLI.

Same contract as the other five tools: exit 0 clean, 1 findings,
2 usage error; ``--list-rules`` prints the shared registry;
``--format github`` emits Actions annotations.  Flow-specific flags:
``--strict`` promotes advisory FLOW615/62x findings to errors, and
``--hotpaths-out`` writes the ranked ``flow-hotpaths.json`` work
list for the array-backed-core refactor.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.flow.analysis import (
    _filter_rules,
    analyze_paths,
    validate_rule_names,
)
from repro.flow.cache import DEFAULT_CACHE_FILE
from repro.flow.report import render_github, render_json, render_text
from repro.lint.registry import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    add_report_arguments,
    render_registry,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-flow",
        description=("whole-program call-graph and dataflow analyses: "
                     "RNG provenance (FLOW60x), fleet-job purity "
                     "(FLOW61x), hot-path complexity (FLOW62x)"),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    add_report_arguments(parser)
    parser.add_argument(
        "--select", action="append", metavar="RULE",
        help="only report these rule names (repeatable)",
    )
    parser.add_argument(
        "--ignore", action="append", metavar="RULE",
        help="skip these rule names (repeatable)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="advisory findings (FLOW615, FLOW62x) also fail the run",
    )
    parser.add_argument(
        "--hotpaths-out", metavar="FILE",
        help="write the ranked hot-path report (flow-hotpaths.json)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="always re-analyze, ignoring the whole-tree cache",
    )
    parser.add_argument(
        "--cache-file", default=DEFAULT_CACHE_FILE,
        help=f"cache location (default: {DEFAULT_CACHE_FILE})",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_registry())
        return EXIT_CLEAN

    try:
        validate_rule_names(args.select, args.ignore)
        report = analyze_paths(
            args.paths,
            use_cache=not args.no_cache,
            cache_file=args.cache_file,
        )
    except (ValueError, FileNotFoundError) as exc:
        print(f"repro-flow: error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    report.findings = _filter_rules(report.findings, args.select,
                                    args.ignore)
    report.advisory = _filter_rules(report.advisory, args.select,
                                    args.ignore)

    if args.hotpaths_out:
        Path(args.hotpaths_out).write_text(
            json.dumps(report.hotpaths, indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )

    if args.format == "json":
        print(render_json(report))
    elif args.format == "github":
        output = render_github(report, strict=args.strict)
        if output:
            print(output)
    else:
        print(render_text(report, strict=args.strict))

    if report.exit_findings(strict=args.strict):
        return EXIT_FINDINGS
    return EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
