"""Whole-program call graph over the ``repro`` tree.

The builder indexes every function the AST can see — module-level
functions, methods, nested closures, lambdas bound to names, functions
wrapped in ``functools.partial`` — and resolves call expressions to
their targets using, in order of preference:

* local bindings (``f = helper`` / ``f = partial(helper, 3)``);
* imports (``from repro.sim.rng import derived_stream``;
  ``import repro.sim.rng as rng`` / attribute chains through it);
* the defining module's own globals;
* the receiver's class for ``self.m(...)`` / ``cls.m(...)`` — plus
  every subclass override, class-hierarchy-analysis style, so a call
  through ``Allocator.allocate`` reaches every algorithm;
* parameter/attribute type annotations and ``x = ClassName(...)``
  constructor assignments for ``obj.m(...)``;
* module-level ``str -> callable`` registries: a call through
  ``REGISTRY[key](...)`` (or through a function whose return value is
  a registry lookup) edges to *every* registered callable, which is
  how the fleet job table and ``ALGORITHM_FACTORIES`` stay inside the
  analysed graph.

Function-valued arguments (``schedule(delay, self._fire)``) become
*callback* edges from the caller to the referenced function: anything
a caller hands out can run on its behalf, so reachability treats it
as called.

Soundness caveats (documented, tested in
``tests/test_flow_graph.py``): calls through values produced by
arbitrary expressions (``getattr(obj, name)()``, callables stored in
instance attributes the indexer cannot type, monkey-patched names)
are *not* resolved; they surface as unresolved call sites that the
purity analysis reports (FLOW615) rather than silently ignores.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import iter_python_files

#: Module attribute chains treated as ``functools.partial``.
_PARTIAL_NAMES = {"partial", "functools.partial"}

#: Builtins that never need resolution (calls to them are pure value
#: plumbing or raise; I/O-shaped builtins like ``open``/``print`` are
#: deliberately absent — the purity analysis wants to see those).
BENIGN_BUILTINS = frozenset({
    "abs", "all", "any", "bool", "bytes", "callable", "chr", "dict",
    "divmod", "enumerate", "filter", "float", "format", "frozenset",
    "getattr", "hasattr", "hex", "int", "isinstance", "issubclass",
    "iter", "len", "list", "map", "max", "min", "next", "object",
    "oct", "ord", "pow", "range", "repr", "reversed", "round", "set",
    "slice", "sorted", "str", "sum", "super", "tuple", "type", "vars",
    "zip", "ArithmeticError", "AssertionError", "AttributeError",
    "Exception", "IndexError", "KeyError", "KeyboardInterrupt",
    "LookupError", "NotImplementedError", "OSError", "OverflowError",
    "RuntimeError", "StopIteration", "TypeError", "ValueError",
    "ZeroDivisionError", "FileNotFoundError", "delattr", "setattr",
    "staticmethod", "classmethod", "property", "hash", "id", "print",
    "open", "input", "exec", "eval", "compile", "globals", "locals",
    "memoryview", "bytearray", "complex",
})


def dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute/name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_name_of(path: str) -> str:
    """Dotted module name, anchored at the last ``repro`` component.

    ``src/repro/sim/rng.py`` -> ``repro.sim.rng``; paths without a
    ``repro`` anchor use the bare stem (scratch/test fixtures).
    """
    parts = Path(path).parts
    anchor = None
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            anchor = index
            break
    tail = parts[anchor:] if anchor is not None else parts[-1:]
    names = [Path(part).stem if part.endswith(".py") else part
             for part in tail]
    if names and names[-1] == "__init__":
        names = names[:-1]
    return ".".join(names)


@dataclass
class FunctionInfo:
    """One analysable function, method, closure or named lambda."""

    qualname: str
    module: str
    name: str
    path: str
    line: int
    node: ast.AST  # FunctionDef | AsyncFunctionDef | Lambda
    class_qualname: Optional[str] = None
    params: List[str] = field(default_factory=list)
    #: params whose default is the literal ``None`` (optional-inject
    #: idiom: ``rng: Generator = None``).
    none_default_params: Set[str] = field(default_factory=set)
    annotations: Dict[str, str] = field(default_factory=dict)
    decorators: List[str] = field(default_factory=list)
    #: names read from an enclosing *function* scope (closure capture).
    free_names: Set[str] = field(default_factory=set)
    #: qualnames a call to this function may return (when the return
    #: expression is a function reference or a registry lookup).
    returns_callables: Set[str] = field(default_factory=set)

    def body(self) -> Sequence[ast.stmt]:
        if isinstance(self.node, ast.Lambda):
            return [ast.Expr(self.node.body)]
        return self.node.body


@dataclass
class ClassInfo:
    """A class: methods, bases, and what its attributes hold."""

    qualname: str
    module: str
    name: str
    path: str
    line: int
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)
    #: instance attribute -> class qualname (from ``self.x = Cls(...)``
    #: and annotated ``__init__`` parameters stored onto ``self``).
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: instance attribute -> function qualnames (callables stored on
    #: self, e.g. ``self.timer_factory = factory``).
    attr_callables: Dict[str, Set[str]] = field(default_factory=dict)


@dataclass(frozen=True)
class CallSite:
    """One call expression, resolved as far as the graph can."""

    caller: str
    path: str
    line: int
    col: int
    callee_text: str
    targets: Tuple[str, ...]
    #: "direct" | "callback" | "registry" | "constructor"
    kind: str = "direct"
    #: Alias-relevant edge metadata: the resolved class of a method
    #: call's receiver (``cache.observe(...)`` -> the SessionCache
    #: qualname), so aliasing clients can attribute the edge to the
    #: class whose internal state it may touch.
    receiver_class: Optional[str] = None
    #: Dotted text of each positional argument ("" for non-chains):
    #: which caller access paths flow into the callee.
    arg_texts: Tuple[str, ...] = ()

    @property
    def resolved(self) -> bool:
        return bool(self.targets)


@dataclass
class ModuleInfo:
    """Per-file symbol tables feeding the whole-program graph."""

    path: str
    name: str
    tree: ast.Module
    #: local alias -> dotted target ("np" -> "numpy",
    #: "derived_stream" -> "repro.sim.rng.derived_stream").
    imports: Dict[str, str] = field(default_factory=dict)
    #: module-global name -> function qualnames it is bound to.
    global_callables: Dict[str, Set[str]] = field(default_factory=dict)
    #: module-global dict registries: name -> callable qualnames.
    registries: Dict[str, Set[str]] = field(default_factory=dict)


class CallGraph:
    """The indexed program: functions, classes, and resolved edges."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: bare class name -> qualnames (for base-class linking).
        self.class_by_name: Dict[str, List[str]] = {}
        #: class qualname -> direct subclass qualnames.
        self.subclasses: Dict[str, List[str]] = {}
        #: caller qualname -> call sites.
        self.calls: Dict[str, List[CallSite]] = {}
        #: fleet job name -> function qualname (register("x")(fn)).
        self.fleet_jobs: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def callees(self, qualname: str) -> List[CallSite]:
        return self.calls.get(qualname, [])

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def method_targets(self, class_qualname: str,
                       method: str) -> List[str]:
        """The method on a class, its ancestors, and every override.

        Class-hierarchy analysis: a call through a base-class receiver
        may dispatch to any subclass override, so all of them are
        returned (the defining class's own implementation first).
        """
        targets: List[str] = []
        seen: Set[str] = set()

        def own_or_inherited(cq: str) -> Optional[str]:
            walked: Set[str] = set()
            while cq and cq not in walked:
                walked.add(cq)
                info = self.classes.get(cq)
                if info is None:
                    return None
                if method in info.methods:
                    return info.methods[method]
                next_cq = None
                for base in info.bases:
                    for candidate in self.class_by_name.get(base, []):
                        next_cq = candidate
                        break
                    if next_cq:
                        break
                cq = next_cq or ""
            return None

        base_target = own_or_inherited(class_qualname)
        if base_target:
            targets.append(base_target)
            seen.add(base_target)
        stack = list(self.subclasses.get(class_qualname, []))
        while stack:
            sub = stack.pop()
            info = self.classes.get(sub)
            if info is None:
                continue
            override = info.methods.get(method)
            if override and override not in seen:
                targets.append(override)
                seen.add(override)
            stack.extend(self.subclasses.get(sub, []))
        return targets

    def reachable(self, roots: Iterable[str],
                  include_callbacks: bool = True
                  ) -> Dict[str, int]:
        """Functions reachable from ``roots`` with their least depth."""
        depth: Dict[str, int] = {}
        frontier: List[str] = []
        for root in roots:
            if root in self.functions and root not in depth:
                depth[root] = 0
                frontier.append(root)
        while frontier:
            current = frontier.pop(0)
            for site in self.callees(current):
                if site.kind == "callback" and not include_callbacks:
                    continue
                for target in site.targets:
                    if target not in self.functions:
                        continue
                    if target not in depth:
                        depth[target] = depth[current] + 1
                        frontier.append(target)
        return depth


# ---------------------------------------------------------------------
# Indexing pass
# ---------------------------------------------------------------------
class _Indexer(ast.NodeVisitor):
    """First pass over one module: functions, classes, bindings."""

    def __init__(self, graph: CallGraph, module: ModuleInfo) -> None:
        self.graph = graph
        self.module = module
        self._scope: List[str] = []       # qualname components
        self._scope_kinds: List[str] = []  # "class" | "func"
        self._class_stack: List[ClassInfo] = []
        self._func_stack: List[FunctionInfo] = []

    # -- helpers -------------------------------------------------------
    def _qual(self, name: str) -> str:
        inner = ".".join(self._scope + [name])
        return f"{self.module.name}.{inner}" if inner else self.module.name

    def _register_function(self, node, name: str) -> FunctionInfo:
        qualname = self._qual(name)
        info = FunctionInfo(
            qualname=qualname, module=self.module.name, name=name,
            path=self.module.path, line=node.lineno, node=node,
            class_qualname=(self._class_stack[-1].qualname
                            if self._scope_kinds
                            and self._scope_kinds[-1] == "class"
                            else None),
        )
        if not isinstance(node, ast.Lambda):
            args = node.args
            ordered = (list(args.posonlyargs) + list(args.args)
                       + list(args.kwonlyargs))
            info.params = [arg.arg for arg in ordered]
            for arg in ordered:
                if arg.annotation is not None:
                    text = dotted(arg.annotation)
                    if text is None and isinstance(
                            arg.annotation, ast.Constant):
                        text = str(arg.annotation.value)
                    if text:
                        info.annotations[arg.arg] = text
            pos = list(args.posonlyargs) + list(args.args)
            defaults = list(args.defaults)
            for arg, default in zip(pos[len(pos) - len(defaults):],
                                    defaults):
                if isinstance(default, ast.Constant) \
                        and default.value is None:
                    info.none_default_params.add(arg.arg)
            for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                if isinstance(default, ast.Constant) \
                        and default.value is None:
                    info.none_default_params.add(arg.arg)
            info.decorators = [d for d in
                               (dotted(dec) if not isinstance(
                                   dec, ast.Call)
                                else dotted(dec.func)
                                for dec in node.decorator_list)
                               if d]
        else:
            info.params = [arg.arg for arg in node.args.args]
        self.graph.functions[qualname] = info
        return info

    # -- visitors ------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(
                ".")[0]
            self.module.imports[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        for alias in node.names:
            local = alias.asname or alias.name
            self.module.imports[local] = f"{node.module}.{alias.name}"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = self._qual(node.name)
        info = ClassInfo(
            qualname=qualname, module=self.module.name,
            name=node.name, path=self.module.path, line=node.lineno,
            bases=[b for b in (dotted(base) for base in node.bases)
                   if b],
        )
        self.graph.classes[qualname] = info
        self.graph.class_by_name.setdefault(node.name, []).append(
            qualname)
        self._class_stack.append(info)
        self._scope.append(node.name)
        self._scope_kinds.append("class")
        self.generic_visit(node)
        self._scope_kinds.pop()
        self._scope.pop()
        self._class_stack.pop()

    def _visit_function(self, node, name: str) -> None:
        info = self._register_function(node, name)
        if self._class_stack and info.class_qualname:
            self._class_stack[-1].methods[name] = info.qualname
        self._handle_register_decorators(node, info)
        self._scope.append(name)
        self._scope_kinds.append("func")
        self._func_stack.append(info)
        self.generic_visit(node)
        self._func_stack.pop()
        self._scope_kinds.pop()
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node) -> None:
        self._visit_function(node, node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # Lambdas are indexed when bound (Assign/dict literal); bare
        # inline lambdas (sort keys etc.) stay anonymous.
        self.generic_visit(node)

    def _handle_register_decorators(self, node,
                                    info: FunctionInfo) -> None:
        for dec in getattr(node, "decorator_list", []):
            if not isinstance(dec, ast.Call):
                continue
            name = dotted(dec.func)
            if name is None:
                continue
            resolved = self.module.imports.get(name.split(".")[0])
            is_fleet = (
                name in ("register", "jobs.register")
                or (resolved or "").startswith("repro.fleet.jobs")
            )
            if is_fleet and dec.args and isinstance(
                    dec.args[0], ast.Constant):
                self.graph.fleet_jobs[str(dec.args[0].value)] = \
                    info.qualname

    def visit_Assign(self, node: ast.Assign) -> None:
        self._index_binding(node.targets, node.value)
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        # register("name")(fn) statement form.
        call = node.value
        if (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Call)):
            inner = call.func
            name = dotted(inner.func)
            if name is not None:
                resolved = self.module.imports.get(
                    name.split(".")[0], "")
                if (name.endswith("register")
                        or resolved.startswith("repro.fleet.jobs")):
                    if inner.args and isinstance(inner.args[0],
                                                 ast.Constant) \
                            and call.args:
                        target = self._callable_ref(call.args[0])
                        if target:
                            self.graph.fleet_jobs[
                                str(inner.args[0].value)] = target
        self.generic_visit(node)

    def _callable_ref(self, node: ast.AST) -> Optional[str]:
        """qualname when ``node`` statically references a function."""
        text = dotted(node)
        if text is None:
            return None
        head = text.split(".")[0]
        if head in self.module.imports:
            resolved = self.module.imports[head]
            candidate = resolved + text[len(head):]
            return candidate
        candidate = f"{self.module.name}.{text}"
        return candidate

    def _index_binding(self, targets: Sequence[ast.expr],
                       value: ast.expr) -> None:
        if self._func_stack or self._class_stack:
            return  # only module-level bindings feed the global table
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            return
        bound: Set[str] = set()
        if isinstance(value, ast.Lambda):
            for name in names:
                info = self._register_function(value, name)
                bound.add(info.qualname)
        else:
            ref = self._resolve_value_ref(value)
            if ref:
                bound.add(ref)
        if isinstance(value, ast.Dict):
            registry: Set[str] = set()
            for item in value.values:
                if isinstance(item, ast.Lambda):
                    anon = self._register_function(
                        item, f"<lambda:{item.lineno}>")
                    registry.add(anon.qualname)
                else:
                    ref = self._resolve_value_ref(item)
                    if ref:
                        registry.add(ref)
            if registry:
                for name in names:
                    self.module.registries[name] = registry
        if bound:
            for name in names:
                self.module.global_callables.setdefault(
                    name, set()).update(bound)

    def _resolve_value_ref(self, value: ast.expr) -> Optional[str]:
        if isinstance(value, ast.Call):
            name = dotted(value.func) or ""
            resolved = self.module.imports.get(name.split(".")[0], "")
            if name in _PARTIAL_NAMES or resolved == "functools" \
                    or resolved == "functools.partial":
                if value.args:
                    return self._callable_ref(value.args[0])
            return None
        return self._callable_ref(value) if dotted(value) else None


# ---------------------------------------------------------------------
# Resolution pass
# ---------------------------------------------------------------------
class _LocalScope:
    """Per-function bindings: var -> types / callables."""

    def __init__(self) -> None:
        self.var_types: Dict[str, str] = {}        # -> class qualname
        self.var_callables: Dict[str, Set[str]] = {}


class _Resolver:
    """Second pass: turn call expressions into graph edges."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph

    # -- name plumbing -------------------------------------------------
    def _import_target(self, module: ModuleInfo,
                       text: str) -> Optional[str]:
        head = text.split(".")[0]
        if head not in module.imports:
            return None
        return module.imports[head] + text[len(head):]

    def _lookup_function(self, qualname: str) -> Optional[str]:
        if qualname in self.graph.functions:
            return qualname
        return None

    def _lookup_class(self, module: ModuleInfo,
                      text: str) -> Optional[str]:
        for candidate in (f"{module.name}.{text}",
                          self._import_target(module, text) or ""):
            if candidate in self.graph.classes:
                return candidate
        # Bare name unique across the program (fixture-friendly).
        matches = self.graph.class_by_name.get(text, [])
        if len(matches) == 1:
            return matches[0]
        return None

    def _registry_values(self, module: ModuleInfo,
                         text: str) -> Optional[Set[str]]:
        if text in module.registries:
            return module.registries[text]
        target = self._import_target(module, text)
        if target is None:
            return None
        mod_name, _, bare = target.rpartition(".")
        source = self.graph.modules.get(mod_name)
        if source and bare in source.registries:
            return source.registries[bare]
        return None

    def _function_ref(self, module: ModuleInfo, func: FunctionInfo,
                      scope: _LocalScope,
                      node: ast.expr) -> Set[str]:
        """Function qualnames an expression may reference (no call)."""
        out: Set[str] = set()
        text = dotted(node)
        if text is None:
            if isinstance(node, ast.Call):
                # partial(f, ...) / registry lookups as arguments
                name = dotted(node.func) or ""
                resolved = module.imports.get(name.split(".")[0], "")
                if name in _PARTIAL_NAMES \
                        or resolved.startswith("functools"):
                    if node.args:
                        out |= self._function_ref(
                            module, func, scope, node.args[0])
                return out
            if isinstance(node, ast.Subscript):
                base = dotted(node.value)
                if base:
                    values = self._registry_values(module, base)
                    if values:
                        out |= values
            return out
        parts = text.split(".")
        if parts[0] == "self" and func.class_qualname and \
                len(parts) == 2:
            out.update(self.graph.method_targets(
                func.class_qualname, parts[1]))
            return out
        if len(parts) == 1:
            name = parts[0]
            if name in scope.var_callables:
                return set(scope.var_callables[name])
            if name in func.params or name in BENIGN_BUILTINS:
                return out
            nested = self._lookup_function(
                f"{func.qualname}.{name}")
            if nested:
                out.add(nested)
                return out
            candidate = self._lookup_function(
                f"{module.name}.{name}")
            if candidate:
                out.add(candidate)
                return out
            imported = self._import_target(module, name)
            if imported and self._lookup_function(imported):
                out.add(imported)
                return out
            if name in module.global_callables:
                return set(module.global_callables[name])
            return out
        # dotted: module attr or method reference
        imported = self._import_target(module, text)
        if imported and self._lookup_function(imported):
            out.add(imported)
            return out
        candidate = self._lookup_function(f"{module.name}.{text}")
        if candidate:
            out.add(candidate)
            return out
        # self.attr where attr holds callables
        if parts[0] == "self" and func.class_qualname:
            info = self.graph.classes.get(func.class_qualname)
            if info and len(parts) == 2 and \
                    parts[1] in info.attr_callables:
                return set(info.attr_callables[parts[1]])
        return out

    # -- main resolution ----------------------------------------------
    def resolve_module(self, module: ModuleInfo) -> None:
        for func in list(self.graph.functions.values()):
            if func.module != module.name:
                continue
            self._resolve_function(module, func)

    def _locals_of(self, module: ModuleInfo,
                   func: FunctionInfo) -> _LocalScope:
        scope = _LocalScope()
        for param, annotation in func.annotations.items():
            cls = self._lookup_class(module, annotation)
            if cls:
                scope.var_types[param] = cls
        for stmt in ast.walk(_body_only(func)):
            if not isinstance(stmt, ast.Assign):
                continue
            names = [t.id for t in stmt.targets
                     if isinstance(t, ast.Name)]
            if not names:
                continue
            value = stmt.value
            if isinstance(value, ast.Call):
                callee = dotted(value.func)
                if callee:
                    cls = self._lookup_class(module, callee)
                    if cls:
                        for name in names:
                            scope.var_types[name] = cls
                        continue
                    # f = registry_fn(key): functions that return
                    # callables propagate their return set.
                    for target in self._function_ref(
                            module, func, scope, value.func):
                        target_info = self.graph.functions.get(target)
                        if target_info and \
                                target_info.returns_callables:
                            for name in names:
                                scope.var_callables.setdefault(
                                    name, set()).update(
                                    target_info.returns_callables)
            refs = self._function_ref(module, func, scope, value)
            if refs:
                for name in names:
                    scope.var_callables.setdefault(
                        name, set()).update(refs)
        return scope

    def _resolve_function(self, module: ModuleInfo,
                          func: FunctionInfo) -> None:
        scope = self._locals_of(module, func)
        sites: List[CallSite] = []
        for node in _walk_own_body(func):
            if not isinstance(node, ast.Call):
                continue
            sites.extend(self._resolve_call(module, func, scope, node))
        self.graph.calls[func.qualname] = sites

    def _receiver_class(self, module: ModuleInfo, func: FunctionInfo,
                        scope: _LocalScope,
                        parts: List[str]) -> Optional[str]:
        """Class qualname of ``a.b`` receiver chains (depth <= 2)."""
        if not parts:
            return None
        head = parts[0]
        if head == "self" and func.class_qualname:
            if len(parts) == 1:
                return func.class_qualname
            info = self.graph.classes.get(func.class_qualname)
            if info and parts[1] in info.attr_types:
                if len(parts) == 2:
                    return info.attr_types[parts[1]]
            return None
        if len(parts) == 1:
            return scope.var_types.get(head)
        return None

    def _resolve_call(self, module: ModuleInfo, func: FunctionInfo,
                      scope: _LocalScope,
                      node: ast.Call) -> List[CallSite]:
        sites: List[CallSite] = []
        text = dotted(node.func) or ""
        targets: Set[str] = set()
        kind = "direct"
        receiver_cls: Optional[str] = None

        if text:
            parts = text.split(".")
            if len(parts) >= 2:
                receiver_cls = self._receiver_class(
                    module, func, scope, parts[:-1])
            direct = self._function_ref(module, func, scope, node.func)
            if direct:
                targets |= direct
            if not targets:
                cls = self._lookup_class(module, text)
                if cls:
                    init = self.graph.method_targets(cls, "__init__")
                    targets |= set(init[:1])
                    targets |= set(self.graph.method_targets(
                        cls, "__post_init__")[:1])
                    kind = "constructor"
            if not targets and len(parts) >= 2 and receiver_cls:
                targets |= set(self.graph.method_targets(
                    receiver_cls, parts[-1]))
        else:
            # super().method(...): dispatch into the base classes.
            if (isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Call)
                    and dotted(node.func.value.func) == "super"
                    and func.class_qualname):
                info = self.graph.classes.get(func.class_qualname)
                stack = list(info.bases) if info else []
                seen_bases: Set[str] = set()
                while stack:
                    bare = stack.pop().split(".")[-1]
                    if bare in seen_bases:
                        continue
                    seen_bases.add(bare)
                    for candidate in self.graph.class_by_name.get(
                            bare, []):
                        target = f"{candidate}.{node.func.attr}"
                        if target in self.graph.functions:
                            targets.add(target)
                        else:
                            base_info = self.graph.classes.get(
                                candidate)
                            if base_info:
                                stack.extend(base_info.bases)
                if targets:
                    text = f"super().{node.func.attr}"
            # Call through a computed expression.
            if isinstance(node.func, ast.Subscript):
                base = dotted(node.func.value)
                if base:
                    values = self._registry_values(module, base)
                    if values:
                        targets |= values
                        kind = "registry"
            elif isinstance(node.func, ast.Call):
                # register("x")(fn) / factory(...)(...)
                inner_refs = self._function_ref(
                    module, func, scope, node.func.func)
                for ref in inner_refs:
                    info = self.graph.functions.get(ref)
                    if info and info.returns_callables:
                        targets |= info.returns_callables
                        kind = "registry"

        real_targets = tuple(sorted(
            t for t in targets if t in self.graph.functions
        ))
        sites.append(CallSite(
            caller=func.qualname, path=func.path, line=node.lineno,
            col=node.col_offset, callee_text=text or "<expr>",
            targets=real_targets, kind=kind,
            receiver_class=receiver_cls,
            arg_texts=tuple(dotted(arg) or "" for arg in node.args),
        ))
        # Function-valued arguments become callback edges.
        callback_targets: Set[str] = set()
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            callback_targets |= self._function_ref(
                module, func, scope, arg)
        callback_targets -= set(real_targets)
        callback_targets = {t for t in callback_targets
                            if t in self.graph.functions}
        if callback_targets:
            sites.append(CallSite(
                caller=func.qualname, path=func.path,
                line=node.lineno, col=node.col_offset,
                callee_text=f"{text or '<expr>'}(<callback>)",
                targets=tuple(sorted(callback_targets)),
                kind="callback",
            ))
        return sites


# ---------------------------------------------------------------------
# Free variables, return-callables, attribute types
# ---------------------------------------------------------------------
def _body_only(func: FunctionInfo) -> ast.AST:
    wrapper = ast.Module(body=list(func.body()), type_ignores=[])
    return wrapper


def _walk_own_body(func: FunctionInfo):
    """Walk a function's statements, *excluding* nested functions'
    bodies (each nested function is its own graph node) but including
    the nested ``def`` headers (decorators, defaults).  Yields in
    source order, so dataflow clients see an assignment before any
    later use of the bound name."""
    stack: List[ast.AST] = list(reversed(func.body()))
    while stack:
        node = stack.pop()
        yield node
        children: List[ast.AST] = []
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef, ast.Lambda)):
                # still walk decorators/defaults of the nested def
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    children.extend(child.decorator_list)
                    children.extend(d for d in child.args.defaults
                                    if d)
                continue
            children.append(child)
        stack.extend(reversed(children))


def _collect_free_names(graph: CallGraph) -> None:
    """Mark names each nested function reads from enclosing scopes."""
    for func in graph.functions.values():
        enclosing = _enclosing_function(graph, func)
        if enclosing is None:
            continue
        local: Set[str] = set(func.params)
        loaded: Set[str] = set()
        for node in _walk_own_body(func):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Store):
                    local.add(node.id)
                elif isinstance(node.ctx, ast.Load):
                    loaded.add(node.id)
        module = graph.modules.get(func.module)
        module_names: Set[str] = set()
        if module:
            module_names |= set(module.imports)
            module_names |= set(module.global_callables)
            module_names |= set(module.registries)
            for other in graph.functions.values():
                if other.module == func.module and \
                        "." not in other.qualname[len(other.module)
                                                  + 1:]:
                    module_names.add(other.name)
            for cls in graph.classes.values():
                if cls.module == func.module:
                    module_names.add(cls.name)
        enclosing_locals = _assigned_names(enclosing)
        func.free_names = {
            name for name in loaded - local - module_names
            if name not in BENIGN_BUILTINS
            and name in enclosing_locals
        }


def _assigned_names(func: FunctionInfo) -> Set[str]:
    names: Set[str] = set(func.params)
    for node in _walk_own_body(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx,
                                                     ast.Store):
            names.add(node.id)
    return names


def _enclosing_function(graph: CallGraph,
                        func: FunctionInfo) -> Optional[FunctionInfo]:
    prefix = func.qualname.rsplit(".", 1)[0]
    candidate = graph.functions.get(prefix)
    if candidate is not None and candidate is not func:
        return candidate
    return None


def _collect_return_callables(graph: CallGraph) -> None:
    resolver = _Resolver(graph)
    for func in graph.functions.values():
        module = graph.modules.get(func.module)
        if module is None:
            continue
        scope = _LocalScope()
        for node in _walk_own_body(func):
            value = None
            if isinstance(node, ast.Return) and node.value is not None:
                value = node.value
            elif isinstance(func.node, ast.Lambda):
                value = func.node.body
            if value is None:
                continue
            refs = resolver._function_ref(module, func, scope, value)
            if refs:
                func.returns_callables |= refs
            elif isinstance(value, ast.Subscript):
                base = dotted(value.value)
                if base:
                    values = resolver._registry_values(module, base)
                    if values:
                        func.returns_callables |= values


def _collect_attr_types(graph: CallGraph) -> None:
    resolver = _Resolver(graph)
    for cls in graph.classes.values():
        module = graph.modules.get(cls.module)
        if module is None:
            continue
        for method_qual in cls.methods.values():
            func = graph.functions.get(method_qual)
            if func is None:
                continue
            scope = _LocalScope()
            for param, annotation in func.annotations.items():
                resolved = resolver._lookup_class(module, annotation)
                if resolved:
                    scope.var_types[param] = resolved
            for node in _walk_own_body(func):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    attr = target.attr
                    value = node.value
                    if isinstance(value, ast.Call):
                        callee = dotted(value.func)
                        if callee:
                            resolved = resolver._lookup_class(
                                module, callee)
                            if resolved:
                                cls.attr_types.setdefault(
                                    attr, resolved)
                                continue
                    text = dotted(value)
                    if text and text in scope.var_types:
                        cls.attr_types.setdefault(
                            attr, scope.var_types[text])
                        continue
                    refs = resolver._function_ref(
                        module, func, scope, value)
                    if refs:
                        cls.attr_callables.setdefault(
                            attr, set()).update(refs)


# ---------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------
def build_graph(paths: Sequence[str]) -> CallGraph:
    """Parse every ``.py`` under ``paths`` and resolve the call graph.

    Raises:
        FileNotFoundError: if a named path does not exist.
    """
    sources: List[Tuple[str, str]] = []
    for file_path in iter_python_files(paths):
        text = Path(file_path).read_text(encoding="utf-8")
        sources.append((file_path, text))
    return build_graph_from_sources(sources)


def build_graph_from_sources(
        sources: Sequence[Tuple[str, str]]) -> CallGraph:
    """Build from ``(path, source)`` pairs (tests inject fixtures)."""
    graph = CallGraph()
    for file_path, text in sources:
        try:
            tree = ast.parse(text)
        except SyntaxError:
            continue
        module = ModuleInfo(path=file_path,
                            name=module_name_of(file_path), tree=tree)
        if module.name in graph.modules:
            continue
        graph.modules[module.name] = module
        _Indexer(graph, module).visit(tree)
    # Link subclasses after every class is known.
    for cls in graph.classes.values():
        for base in cls.bases:
            bare = base.split(".")[-1]
            for candidate in graph.class_by_name.get(bare, []):
                graph.subclasses.setdefault(candidate, []).append(
                    cls.qualname)
    _collect_return_callables(graph)
    _collect_attr_types(graph)
    _collect_free_names(graph)
    resolver = _Resolver(graph)
    for module in graph.modules.values():
        resolver.resolve_module(module)
    return graph


def function_scope(graph: CallGraph,
                   func: FunctionInfo) -> _LocalScope:
    """Local variable types/callables for analyses layered on top."""
    module = graph.modules.get(func.module)
    if module is None:
        return _LocalScope()
    return _Resolver(graph)._locals_of(module, func)


#: Last built graph, keyed by tree digest (one-entry memo).
_SHARED_GRAPH: Optional[Tuple[str, CallGraph]] = None


def shared_graph(sources: Sequence[Tuple[str, str]]) -> CallGraph:
    """Build-or-reuse one :class:`CallGraph` per identical tree.

    The flow and units analyses need the same whole-program graph;
    when both run in one process (tests, combined gates) the second
    request costs a digest pass instead of a full re-parse.  Both
    clients treat the graph as read-only, so sharing is safe.
    """
    global _SHARED_GRAPH
    from repro.flow.cache import tree_digest

    digest = tree_digest(sources)
    if _SHARED_GRAPH is not None and _SHARED_GRAPH[0] == digest:
        return _SHARED_GRAPH[1]
    graph = build_graph_from_sources(sources)
    _SHARED_GRAPH = (digest, graph)
    return graph
