"""Orchestrator: build the graph once, run all three analyses.

``analyze_paths`` is the programmatic entry the CLI and the tier-1
test share.  It applies ``# simlint: disable=<rule>`` suppressions
(same syntax and parser as the linter; whole-program findings are
suppressed at the line they are *reported* on), splits hard findings
from advisory ones, and serves byte-identical reports from the
whole-tree cache when nothing changed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.flow.cache import (
    DEFAULT_CACHE_FILE,
    FlowCache,
    tree_digest,
)
from repro.flow.graph import build_graph_from_sources
from repro.flow.hotpath import analyze_hotpaths, render_hotpaths
from repro.flow.provenance import analyze_provenance
from repro.flow.purity import analyze_purity
from repro.flow.rules import FLOW_RULE_NAMES
from repro.lint.engine import (
    Finding,
    iter_python_files,
    parse_suppressions,
)


@dataclass
class FlowReport:
    """Everything one run produces."""

    findings: List[Finding]            # hard, unsuppressed
    advisory: List[Finding]            # report-only, unsuppressed
    hotpaths: Dict[str, Any]           # flow-hotpaths.json payload
    suppressed: int = 0
    stats: Dict[str, int] = field(default_factory=dict)
    from_cache: bool = False

    def exit_findings(self, strict: bool = False) -> List[Finding]:
        if strict:
            return self.findings + self.advisory
        return self.findings

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": len(self.findings),
            "findings": [f.to_dict() for f in self.findings],
            "advisory_count": len(self.advisory),
            "advisory": [f.to_dict() for f in self.advisory],
            "suppressed": self.suppressed,
            "stats": self.stats,
            "hotpaths": self.hotpaths,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FlowReport":
        return cls(
            findings=[Finding(**f) for f in raw.get("findings", [])],
            advisory=[Finding(**f) for f in raw.get("advisory", [])],
            hotpaths=raw.get("hotpaths", {}),
            suppressed=int(raw.get("suppressed", 0)),
            stats=dict(raw.get("stats", {})),
            from_cache=True,
        )


def _filter_rules(findings: Sequence[Finding],
                  select: Optional[List[str]],
                  ignore: Optional[List[str]]) -> List[Finding]:
    out = list(findings)
    if select:
        chosen = set(select)
        out = [f for f in out if f.rule in chosen]
    if ignore:
        dropped = set(ignore)
        out = [f for f in out if f.rule not in dropped]
    return out


def validate_rule_names(select: Optional[List[str]],
                        ignore: Optional[List[str]]) -> None:
    """Raises ValueError on a name not in the FLOW rule table."""
    known = set(FLOW_RULE_NAMES)
    for name in (select or []) + (ignore or []):
        if name not in known:
            raise ValueError(
                f"unknown rule {name!r}; known: "
                f"{sorted(known)}"
            )


def analyze_sources(sources: Sequence[Tuple[str, str]]) -> FlowReport:
    """Run the three analyses over ``(path, text)`` pairs."""
    graph = build_graph_from_sources(sources)
    provenance = analyze_provenance(graph)
    purity = analyze_purity(graph)
    hot = analyze_hotpaths(graph)

    hard = list(provenance.findings) + list(purity.findings)
    advisory: List[Finding] = list(hot.findings)
    for items in purity.unresolved.values():
        advisory.extend(items)

    # Apply # simlint: disable suppressions at the reported line.
    suppressions = {path: parse_suppressions(text)
                    for path, text in sources}
    suppressed = 0

    def keep(finding: Finding) -> bool:
        nonlocal suppressed
        marks = suppressions.get(finding.path)
        if marks is not None and marks.suppressed(finding.line,
                                                  finding.rule):
            suppressed += 1
            return False
        return True

    hard = [f for f in hard if keep(f)]
    advisory = [f for f in advisory if keep(f)]
    hard.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    advisory.sort(key=lambda f: (f.path, f.line, f.col, f.code))

    # Advisory hot sites mirror the suppression filter.
    kept_lines = {(f.path, f.line, f.code) for f in advisory}
    hot.sites = [s for s in hot.sites
                 if (s.path, s.line, s.code) in kept_lines]

    return FlowReport(
        findings=hard,
        advisory=advisory,
        hotpaths=render_hotpaths(hot),
        suppressed=suppressed,
        stats={
            "modules": len(graph.modules),
            "functions": len(graph.functions),
            "classes": len(graph.classes),
            "fleet_jobs": len(graph.fleet_jobs),
            "draw_sites": len(provenance.draw_sites),
            "hot_roots": len(hot.roots),
            "hot_sites_total": int(
                hot and len(hot.sites) or 0),
        },
    )


def analyze_paths(paths: Sequence[str],
                  use_cache: bool = True,
                  cache_file: str = DEFAULT_CACHE_FILE
                  ) -> FlowReport:
    """Analyze every ``.py`` under ``paths``.

    Raises:
        FileNotFoundError: if a named path does not exist.
    """
    sources: List[Tuple[str, str]] = []
    for file_path in iter_python_files(paths):
        text = Path(file_path).read_text(encoding="utf-8")
        sources.append((file_path, text))

    cache = FlowCache(cache_file) if use_cache else None
    digest = tree_digest(sources)
    if cache is not None:
        cached = cache.lookup(digest)
        if cached is not None:
            return FlowReport.from_dict(cached)

    report = analyze_sources(sources)
    if cache is not None:
        cache.store(digest, report.to_dict())
    return report
