"""FLOW621–624: per-event complexity on the simulator's hot paths.

The ROADMAP's top item — "Array-backed core: simulate millions of
sessions" — needs to know exactly which per-event work is O(n) before
anyone rewrites ``repro.core``.  This pass walks every function
reachable from the event-handler roots (scheduler step, allocator
``allocate``/``release``, cache ``observe``, world ``visible_at``)
and flags work whose cost scales with live-session count *per event*:

* **FLOW621 hot-linear-scan** — a loop or comprehension on a hot
  path: O(n) per event, O(n²) per simulated second once n sessions
  each generate events.
* **FLOW622 hot-collection-rebuild** — list/dict/set/ndarray
  construction from existing data per event (the ``VisibleSet``
  rebuild pattern).
* **FLOW623 hot-object-churn** — fresh object construction per event;
  allocation pressure the array-backed core eliminates.
* **FLOW624 hot-sort** — sorting per event; O(n log n) that should be
  an incremental structure.

All four are *advisory*: they rank real costs rather than assert
absolutes, so they never fail the build unless ``--strict`` is given.
The ranked output (``flow-hotpaths.json``) is the work list for the
array-backed-core refactor.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.flow.graph import (
    CallGraph,
    FunctionInfo,
    dotted,
    _walk_own_body,
)
from repro.lint.engine import Finding

#: Event-handler entry points, matched by qualname suffix.
HOT_ROOT_SUFFIXES = (
    "EventScheduler.step",
    "EventScheduler.schedule_at",
    "SessionCache.observe",
    "SessionCache.expire",
    "AllocationWorld.visible_at",
    "NetworkModel.send",
    "NetworkModel.deliver",
)

#: Allocator protocol methods — every override is a hot root.
_ALLOCATOR_CLASS = "repro.core.allocator.Allocator"
_ALLOCATOR_METHODS = ("allocate", "release")

_REBUILD_CALLS = frozenset({
    "list", "dict", "set", "tuple", "frozenset",
    "np.array", "np.asarray", "np.unique", "np.concatenate",
    "np.stack", "np.vstack", "np.hstack", "np.setdiff1d",
    "np.union1d", "np.intersect1d", "np.full", "np.zeros",
    "np.ones", "np.arange", "np.fromiter",
})

_SORT_CALLS = frozenset({"sorted", "np.sort", "np.argsort",
                         "np.lexsort"})


@dataclass
class HotSite:
    """One flagged site, scored for the ranked report."""

    code: str
    rule: str
    path: str
    line: int
    col: int
    function: str
    root: str
    depth: int
    loop_depth: int
    detail: str
    score: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rank": 0,  # filled at render time
            "code": self.code,
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "function": self.function,
            "root": self.root,
            "call_depth": self.depth,
            "loop_depth": self.loop_depth,
            "detail": self.detail,
            "score": round(self.score, 2),
        }


@dataclass
class HotpathResult:
    findings: List[Finding]
    sites: List[HotSite] = field(default_factory=list)
    roots: List[str] = field(default_factory=list)


def hot_roots(graph: CallGraph) -> Dict[str, str]:
    """qualname -> short root label."""
    roots: Dict[str, str] = {}
    for qualname in graph.functions:
        for suffix in HOT_ROOT_SUFFIXES:
            if qualname.endswith(suffix):
                roots[qualname] = suffix
    for method in _ALLOCATOR_METHODS:
        for target in graph.method_targets(_ALLOCATOR_CLASS, method):
            cls = target.rsplit(".", 2)[-2]
            roots[target] = f"{cls}.{method}"
    return roots


_BASE_WEIGHT = {"FLOW621": 3.0, "FLOW622": 2.0,
                "FLOW623": 1.0, "FLOW624": 3.0}


def _score(code: str, depth: int, loop_depth: int) -> float:
    proximity = max(1.0, 5.0 - depth)
    return _BASE_WEIGHT[code] * (1.0 + loop_depth) * proximity


def _loop_depths(func: FunctionInfo) -> Dict[int, int]:
    """id(node) -> enclosing-loop count, own body only."""
    depths: Dict[int, int] = {}

    def visit(node: ast.AST, depth: int) -> None:
        depths[id(node)] = depth
        bump = depth
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            bump = depth + 1
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef, ast.Lambda)):
                continue
            visit(child, bump)

    for stmt in func.body():
        visit(stmt, 0)
    return depths


def _iter_text(node: ast.expr) -> str:
    text = dotted(node)
    if text:
        return text
    try:
        return ast.unparse(node)[:60]
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"


def analyze_hotpaths(graph: CallGraph) -> HotpathResult:
    """Run FLOW621–624 over everything reachable from the hot roots."""
    roots = hot_roots(graph)
    depth_of = graph.reachable(list(roots), include_callbacks=True)

    # Attribute each function to its nearest root for the report.
    root_of: Dict[str, str] = {}
    for root, label in roots.items():
        for reached, depth in graph.reachable([root]).items():
            best = depth_of.get(reached, depth)
            if reached not in root_of or depth <= best:
                root_of[reached] = label

    sites: List[HotSite] = []
    for qualname in sorted(depth_of):
        func = graph.functions.get(qualname)
        if func is None:
            continue
        depth = depth_of[qualname]
        label = root_of.get(qualname, "?")
        loops = _loop_depths(func)
        module = graph.modules.get(func.module)
        imports = module.imports if module else {}

        def norm(text: str) -> str:
            head = text.split(".")[0]
            if imports.get(head) == "numpy":
                return "np" + text[len(head):]
            return text

        for node in _walk_own_body(func):
            loop_depth = loops.get(id(node), 0)
            if isinstance(node, (ast.For, ast.While)):
                iterable = (_iter_text(node.iter)
                            if isinstance(node, ast.For) else
                            "while-loop")
                sites.append(HotSite(
                    code="FLOW621", rule="hot-linear-scan",
                    path=func.path, line=node.lineno,
                    col=node.col_offset, function=qualname,
                    root=label, depth=depth,
                    loop_depth=max(0, loop_depth - 1),
                    detail=f"loop over {iterable}",
                    score=_score("FLOW621", depth,
                                 max(0, loop_depth - 1)),
                ))
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iterable = _iter_text(node.generators[0].iter)
                sites.append(HotSite(
                    code="FLOW621", rule="hot-linear-scan",
                    path=func.path, line=node.lineno,
                    col=node.col_offset, function=qualname,
                    root=label, depth=depth, loop_depth=loop_depth,
                    detail=f"comprehension over {iterable}",
                    score=_score("FLOW621", depth, loop_depth),
                ))
            if not isinstance(node, ast.Call):
                continue
            text = norm(dotted(node.func) or "")
            terminal = text.split(".")[-1]
            if text in _SORT_CALLS or terminal == "sort":
                sites.append(HotSite(
                    code="FLOW624", rule="hot-sort",
                    path=func.path, line=node.lineno,
                    col=node.col_offset, function=qualname,
                    root=label, depth=depth, loop_depth=loop_depth,
                    detail=f"{text}() per event",
                    score=_score("FLOW624", depth, loop_depth),
                ))
            elif (text in _REBUILD_CALLS and
                  (node.args or node.keywords)):
                sites.append(HotSite(
                    code="FLOW622", rule="hot-collection-rebuild",
                    path=func.path, line=node.lineno,
                    col=node.col_offset, function=qualname,
                    root=label, depth=depth, loop_depth=loop_depth,
                    detail=f"{text}(...) rebuilt per event",
                    score=_score("FLOW622", depth, loop_depth),
                ))

        # Object churn: constructor edges out of this function.
        for site in graph.callees(qualname):
            if site.kind != "constructor":
                continue
            name = site.callee_text.split(".")[-1]
            if name.endswith(("Error", "Exception", "Warning")):
                continue
            loop_depth = 0
            sites.append(HotSite(
                code="FLOW623", rule="hot-object-churn",
                path=func.path, line=site.line, col=site.col,
                function=qualname, root=label, depth=depth,
                loop_depth=loop_depth,
                detail=f"constructs {name} per event",
                score=_score("FLOW623", depth, loop_depth),
            ))

    sites.sort(key=lambda s: (-s.score, s.path, s.line, s.code))
    findings = [
        Finding(path=s.path, line=s.line, col=s.col, code=s.code,
                rule=s.rule,
                message=(f"{s.detail} in {s.function} "
                         f"(hot root {s.root}, call depth "
                         f"{s.depth})"))
        for s in sites
    ]
    return HotpathResult(findings=findings, sites=sites,
                         roots=sorted(roots))


def render_hotpaths(result: HotpathResult,
                    limit: Optional[int] = 40) -> Dict[str, Any]:
    """The ``flow-hotpaths.json`` payload: ranked, capped, explicit
    about what was dropped."""
    ranked = result.sites[:limit] if limit else list(result.sites)
    payload = {
        "roots": result.roots,
        "total_sites": len(result.sites),
        "listed_sites": len(ranked),
        "dropped_sites": len(result.sites) - len(ranked),
        "sites": [],
    }
    for rank, site in enumerate(ranked, start=1):
        entry = site.to_dict()
        entry["rank"] = rank
        payload["sites"].append(entry)
    return payload
