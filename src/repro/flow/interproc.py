"""Shared two-pass interprocedural re-reporting machinery.

Two analyses on the flow call graph re-interpret functions with facts
their call sites supplied — the units abstract interpreter (caller
argument values rerooted onto callee parameters) and the alias pass
(callers that mutate a container a callee leaked).  Both used to grow
their own ``callee -> param -> [(fact, caller, path, line)]`` tables
and their own ``[reached via ...]`` label formatting; this module is
the one copy.

The contract both passes follow:

* **pass A** interprets every function in isolation and records, per
  resolved call edge, the facts the caller established
  (:meth:`CallIndex.record`);
* **pass B** walks the recorded callees, joins the per-parameter
  facts across all call sites (:meth:`CallIndex.join_params`), and
  re-interprets the callee with the enriched environment, tagging any
  new finding with the :func:`via_label` of the call site that
  supplied the first useful fact — so a whole-program finding names
  the concrete path that justifies it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional


def via_label(caller: str, path: str, line: int) -> str:
    """The ``[reached via ...]`` tag appended to interprocedural
    findings: the call site whose facts made the finding reportable."""
    return f"[reached via {caller} at {path}:{line}]"


@dataclass(frozen=True)
class CallEntry:
    """One fact one call site established about one callee slot."""

    value: Any
    caller: str
    path: str
    line: int

    @property
    def via(self) -> str:
        return via_label(self.caller, self.path, self.line)


class CallIndex:
    """``callee -> slot -> [CallEntry]`` across the whole program.

    A *slot* is whatever the client pass keys facts by: a parameter
    name for the units interpreter, the ``RETURN_SLOT`` sentinel for
    the alias pass (facts about what callers do with the returned
    value).
    """

    #: Slot name for facts about a callee's returned value.
    RETURN_SLOT = "<return>"

    def __init__(self) -> None:
        self._by_callee: Dict[str, Dict[str, List[CallEntry]]] = {}

    def record(self, callee: str, slot: str, value: Any,
               caller: str, path: str, line: int) -> None:
        self._by_callee.setdefault(callee, {}).setdefault(
            slot, []).append(CallEntry(value, caller, path, line))

    def callees(self) -> List[str]:
        """Every callee with recorded facts, in stable sorted order."""
        return sorted(self._by_callee)

    def entries(self, callee: str,
                slot: Optional[str] = None) -> List[CallEntry]:
        slots = self._by_callee.get(callee, {})
        if slot is not None:
            return list(slots.get(slot, []))
        out: List[CallEntry] = []
        for name in slots:
            out.extend(slots[name])
        return out

    def slots(self, callee: str) -> Dict[str, List[CallEntry]]:
        return {slot: list(entries) for slot, entries
                in self._by_callee.get(callee, {}).items()}

    def join_params(
            self, callee: str,
            join: Callable[[Any, Any], Any],
            adjust: Optional[Callable[[str, Any], Any]] = None,
            keep: Optional[Callable[[str, Any], bool]] = None,
    ) -> tuple:
        """Join each slot's facts across every recorded call site.

        ``join`` folds two facts into one (the lattice join);
        ``adjust`` may refine the joined fact per slot (e.g. backfill
        a declared unit); ``keep`` decides whether the joined fact is
        informative enough to re-interpret with.  Returns
        ``(facts, via)`` where ``facts`` maps the kept slots to their
        joined values and ``via`` is the label of the call site behind
        the first kept slot (empty when nothing was kept).
        """
        facts: Dict[str, Any] = {}
        via = ""
        for slot, entries in self._by_callee.get(callee, {}).items():
            value = entries[0].value
            for entry in entries[1:]:
                value = join(value, entry.value)
            if adjust is not None:
                value = adjust(slot, value)
                if value is None:
                    continue
            if keep is not None and not keep(slot, value):
                continue
            facts[slot] = value
            if not via:
                via = entries[0].via
        return facts, via
