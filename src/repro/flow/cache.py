"""Whole-tree incremental cache for the flow analyses.

The lint cache (:mod:`repro.lint.cache`) is per-file because SIM1xx
findings are a pure function of one file.  FLOW6xx findings are not:
a finding at a line can be created or destroyed by an edit files away
(a new call edge, a renamed stream key).  The unit of purity here is
the *whole tree*, so the cache keys one entry by a digest over every
``(path, content-hash)`` pair plus the FLOW rule-table signature:

* any edit anywhere under the analyzed paths is a miss (full re-run);
* an untouched tree — the common case in watch loops and CI re-runs,
  where ``scripts/check.sh`` runs the pass right after the linter —
  is a hit and costs one hash pass instead of a graph build.

Same contract as the lint cache otherwise: versioned format,
fail-open on missing/corrupt/stale files, best-effort writes.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.flow.rules import FLOW_RULES
from repro.lint.registry import CACHE_FILES

#: Bumped whenever the on-disk schema or the analyses change shape.
CACHE_FORMAT = 1

DEFAULT_CACHE_FILE = CACHE_FILES["flow"]


def rules_signature() -> str:
    """Identity of the FLOW rule table (and analysis version)."""
    payload = repr((CACHE_FORMAT, FLOW_RULES))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def tree_digest(sources: Sequence[Tuple[str, str]]) -> str:
    """One digest over every (path, content) pair, order-independent."""
    hasher = hashlib.sha256()
    for path, text in sorted(sources):
        hasher.update(path.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(hashlib.sha256(
            text.encode("utf-8")).digest())
    return hasher.hexdigest()


class FlowCache:
    """One cached report per (tree digest, rule-table signature)."""

    def __init__(self, path: str,
                 signature: Optional[str] = None) -> None:
        self.path = Path(path)
        self.signature = signature or rules_signature()
        self.hit = False

    def lookup(self, digest: str) -> Optional[Dict[str, Any]]:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(raw, dict):
            return None
        if raw.get("format") != CACHE_FORMAT:
            return None
        if raw.get("ruleset") != self.signature:
            return None
        if raw.get("tree") != digest:
            return None
        report = raw.get("report")
        if isinstance(report, dict):
            self.hit = True
            return report
        return None

    def store(self, digest: str, report: Dict[str, Any]) -> None:
        document = {
            "format": CACHE_FORMAT,
            "ruleset": self.signature,
            "tree": digest,
            "report": report,
        }
        try:
            self.path.write_text(
                json.dumps(document, indent=1, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except OSError:
            pass  # read-only checkout: caching is best-effort
