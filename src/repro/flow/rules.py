"""The FLOW6xx rule table.

Kept free of imports so :mod:`repro.lint.registry` can list these
codes without pulling in the analysis engine (the registry is imported
by every CLI, including ones that never run the flow pass).

Unlike the per-file SIM1xx rules, FLOW6xx rules are *whole-program*:
a finding at a line is justified by call paths that start files away,
so they run from :mod:`repro.flow.analysis`, not from the lint engine.

``advisory`` rules rank real, acceptable-for-now costs (the hot-path
report feeding the array-backed-core refactor; the FLOW615 soundness
boundary).  They are reported but do not fail the build unless
``--strict``.
"""

from __future__ import annotations

from typing import Tuple

#: (code, name, advisory, description)
FLOW_RULES: Tuple[Tuple[str, str, bool, str], ...] = (
    ("FLOW601", "untraced-rng-draw", False,
     "a random draw reachable from a fleet job or experiment entry "
     "point that does not trace to derived_stream(...), the shard "
     "stream, or a seeded generator"),
    ("FLOW602", "stream-key-collision", False,
     "two distinct call sites constant-fold to the same stream key: "
     "the components draw correlated values"),
    ("FLOW603", "tainted-stream-key", False,
     "a stream key folded from non-spec-pure values (wall clock, "
     "pid, environment, id(), hash()) — not replayable"),
    ("FLOW604", "ambient-stream-in-job", False,
     "a fleet-job path falls back to a bare constant-key stream, so "
     "every shard draws the same sequence there"),
    ("FLOW611", "job-mutates-global", False,
     "a function reachable from a fleet job assigns a global, a "
     "class attribute, or a module-level container"),
    ("FLOW612", "job-reads-wallclock", False,
     "a function reachable from a fleet job reads (or sleeps on) the "
     "wall clock; payloads must not depend on when the shard ran"),
    ("FLOW613", "job-does-io", False,
     "a function reachable from a fleet job does filesystem, "
     "process or network I/O outside the runner's checkpoint API"),
    ("FLOW614", "job-captures-mutable", False,
     "a closure on a fleet-job path writes through a captured "
     "enclosing variable; state leaks between in-process shards"),
    ("FLOW615", "job-unresolved-call", True,
     "a reachable call the graph cannot resolve; purity past this "
     "edge is assumed, not proved (the documented soundness "
     "boundary)"),
    ("FLOW621", "hot-linear-scan", True,
     "a loop or comprehension on an event-handler hot path: O(n) "
     "work per event"),
    ("FLOW622", "hot-collection-rebuild", True,
     "a list/dict/set/ndarray rebuilt from existing data per event "
     "(the VisibleSet pattern the array-backed core must replace)"),
    ("FLOW623", "hot-object-churn", True,
     "object construction per event; allocation pressure on the hot "
     "path"),
    ("FLOW624", "hot-sort", True,
     "a sort per event; O(n log n) that should be an incremental "
     "structure"),
)

#: Rule names whose findings are advisory (report-only by default).
ADVISORY_RULES = frozenset(
    name for _, name, advisory, _ in FLOW_RULES if advisory
)

FLOW_RULE_NAMES = tuple(name for _, name, _, _ in FLOW_RULES)
