"""Renderers for flow reports: text, JSON, GitHub annotations.

Hard findings render exactly like the linter's (same ``Finding``
shape, same ``::error`` annotations).  Advisory findings are extra:
text gets a separate ranked section, JSON gets ``advisory`` plus the
``hotpaths`` payload, GitHub gets ``::notice`` lines so the Actions
UI surfaces them without failing the check.
"""

from __future__ import annotations

import json
from typing import List

from repro.flow.analysis import FlowReport
from repro.lint.report import render_github as _github_errors


def render_text(report: FlowReport, strict: bool = False) -> str:
    lines: List[str] = [f.format() for f in report.findings]
    hot = report.hotpaths
    count = len(report.findings)
    if count == 0:
        lines.append("repro-flow: clean (0 findings)")
    else:
        noun = "finding" if count == 1 else "findings"
        lines.append(f"repro-flow: {count} {noun}")
    if report.advisory:
        label = "errors under --strict" if strict else "report-only"
        lines.append(f"advisory ({len(report.advisory)} sites, "
                     f"{label}):")
        ranked = hot.get("sites", [])[:10]
        for site in ranked:
            lines.append(
                f"  #{site['rank']:>2} {site['path']}:{site['line']} "
                f"{site['code']} {site['detail']} "
                f"[root {site['root']}, score {site['score']}]"
            )
        shown = len(ranked)
        if not ranked:
            # No hot sites (e.g. only FLOW615): show the findings.
            for finding in report.advisory[:10]:
                lines.append("  " + finding.format())
            shown = min(10, len(report.advisory))
        rest = len(report.advisory) - shown
        if rest > 0:
            lines.append(f"  ... and {rest} more "
                         f"(--format json for all)")
    if report.suppressed:
        lines.append(f"suppressed: {report.suppressed}")
    if report.stats:
        lines.append(
            "graph: {modules} modules, {functions} functions, "
            "{fleet_jobs} fleet jobs, {draw_sites} draw sites, "
            "{hot_roots} hot roots".format(**{
                key: report.stats.get(key, 0)
                for key in ("modules", "functions", "fleet_jobs",
                            "draw_sites", "hot_roots")
            })
        )
    if report.from_cache:
        lines.append("(cached: tree unchanged)")
    return "\n".join(lines)


def render_json(report: FlowReport) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


def render_github(report: FlowReport, strict: bool = False) -> str:
    lines: List[str] = []
    hard = _github_errors(report.findings)
    if hard:
        lines.append(hard)
    for finding in report.advisory:
        message = f"{finding.code} [{finding.rule}] {finding.message}"
        directive = "error" if strict else "notice"
        lines.append(f"::{directive} file={finding.path},"
                     f"line={max(finding.line, 1)},"
                     f"col={finding.col}::{message}")
    return "\n".join(lines)
