"""FLOW611–615: purity proofs for fleet-registry jobs.

The fleet's serial==parallel==resumed invariant (BENCH_fleet, the
run-twice drills) holds only if a job's payload is a pure function of
``(params, rng, attempt)``.  The dynamic harness *tests* that for the
inputs it happens to run; this pass *proves* the obvious failure modes
absent for every function reachable from every registered job:

* **FLOW611 job-mutates-global** — assignment through a ``global``
  declaration, to a class attribute, or into a module-level container:
  cross-shard state that makes results order-dependent.
* **FLOW612 job-reads-wallclock** — ``time.time``/``monotonic``/
  ``perf_counter``/``sleep``, ``datetime.now`` …: payloads must not
  depend on when the shard ran (sleeping is tolerated only in the
  fault drills, with a justified suppression).
* **FLOW613 job-does-io** — ``open``, ``os.*`` process/file calls,
  ``socket``, ``subprocess`` …: all shard I/O belongs to the runner's
  checkpoint API, not the job body.
* **FLOW614 job-captures-mutable** — a closure on the job's call graph
  writes through a free variable: enclosing state survives the call
  and leaks between shards run in-process.
* **FLOW615 job-unresolved-call** — the soundness escape hatch: a
  reachable call the graph cannot resolve (first-class function
  values, ``getattr`` dispatch).  Purity past that edge is assumed,
  not proved, so the sites are reported — advisory by default.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.flow.graph import (
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    dotted,
    _walk_own_body,
)
from repro.lint.engine import Finding

#: Wall-clock reads (and blocking waits, which smuggle in wall time).
WALLCLOCK_CALLS = (
    "time.time", "time.time_ns", "time.monotonic",
    "time.monotonic_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.sleep", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.date.today",
)

#: Filesystem / process / network effects.  The fleet checkpoint API
#: (repro.fleet.checkpoint) is the sanctioned exception and lives on
#: the runner side, so any of these inside a job body is a finding.
IO_CALL_PREFIXES = (
    "os.remove", "os.unlink", "os.makedirs", "os.mkdir", "os.rmdir",
    "os.rename", "os.replace", "os.kill", "os.system", "os.popen",
    "os.getpid", "os.urandom", "os.environ", "os.putenv",
    "shutil.", "socket.", "subprocess.", "urllib.", "http.",
    "requests.",
)

#: Methods that mutate their receiver in place.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "remove",
    "discard", "pop", "popitem", "clear", "setdefault",
})

#: Pure-enough call prefixes the FLOW615 escape hatch need not report.
_BENIGN_UNRESOLVED = (
    "np.", "numpy.", "math.", "json.dumps", "json.loads", "len",
    "int", "float", "str", "bool", "round", "abs", "min", "max",
    "sum", "sorted", "range", "enumerate", "zip", "isinstance",
    "list", "dict", "set", "tuple", "frozenset", "print", "repr",
    "format", "hasattr", "iter", "next", "divmod", "cls", "super",
    "del",
)

#: Method terminals that read/transform without observable effects
#: (dict/str lookups, numpy array math, rng draws — the latter are
#: the provenance analysis's responsibility, not purity's).
_BENIGN_TERMINALS = frozenset({
    "get", "items", "keys", "values", "copy", "astype", "tolist",
    "mean", "std", "reshape", "flatten", "argmin", "argmax", "take",
    "searchsorted", "cumsum", "nonzero", "any", "all", "join",
    "split", "strip", "startswith", "endswith", "format", "encode",
    "decode", "lower", "upper", "replace", "index", "count", "sample",
    "random", "integers", "choice", "shuffle", "permutation",
    "normal", "uniform", "exponential", "poisson", "binomial",
    "geometric", "standard_normal",
})


@dataclass
class PurityResult:
    findings: List[Finding]
    #: advisory FLOW615 sites, job -> unresolved call descriptions
    unresolved: Dict[str, List[Finding]] = field(default_factory=dict)


def _module_globals(module: ModuleInfo) -> Set[str]:
    """Names bound at module top level (the shared mutable surface)."""
    names: Set[str] = set()
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
    return names


def _local_names(func: FunctionInfo) -> Set[str]:
    out = set(func.params)
    for node in _walk_own_body(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        out.add(leaf.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                out.add(node.target.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            for leaf in ast.walk(node.target):
                if isinstance(leaf, ast.Name):
                    out.add(leaf.id)
        elif isinstance(node, ast.With):
            for item in node.items:
                if item.optional_vars is not None:
                    for leaf in ast.walk(item.optional_vars):
                        if isinstance(leaf, ast.Name):
                            out.add(leaf.id)
    return out


def _resolve_text(module: Optional[ModuleInfo], text: str) -> str:
    if module is None or not text:
        return text
    head = text.split(".")[0]
    if head in module.imports:
        return module.imports[head] + text[len(head):]
    return text


def _check_function(graph: CallGraph, func: FunctionInfo,
                    job_labels: str) -> Tuple[List[Finding],
                                              List[Finding]]:
    """(hard findings, advisory FLOW615 findings) for one function."""
    findings: List[Finding] = []
    advisory: List[Finding] = []
    module = graph.modules.get(func.module)
    globals_here = _module_globals(module) if module else set()
    locals_here = _local_names(func)
    declared_global: Set[str] = set()

    for node in _walk_own_body(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)

    for node in _walk_own_body(func):
        # -- FLOW611: stores escaping the call frame ------------------
        store_targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            store_targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            store_targets = [node.target]
        for target in store_targets:
            base = target
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if not isinstance(base, ast.Name):
                continue
            name = base.id
            if isinstance(target, ast.Name):
                if name in declared_global:
                    findings.append(Finding(
                        path=func.path, line=node.lineno,
                        col=node.col_offset, code="FLOW611",
                        rule="job-mutates-global",
                        message=(f"{func.qualname} assigns global "
                                 f"{name!r} on a path from "
                                 f"{job_labels}"),
                    ))
                continue
            if name in ("self", "cls"):
                if name == "cls" or "classmethod" in func.decorators:
                    findings.append(Finding(
                        path=func.path, line=node.lineno,
                        col=node.col_offset, code="FLOW611",
                        rule="job-mutates-global",
                        message=(f"{func.qualname} mutates class "
                                 f"attribute through {name!r} on a "
                                 f"path from {job_labels}"),
                    ))
                continue
            if name in locals_here:
                continue
            if name in globals_here or name in declared_global:
                findings.append(Finding(
                    path=func.path, line=node.lineno,
                    col=node.col_offset, code="FLOW611",
                    rule="job-mutates-global",
                    message=(f"{func.qualname} writes into "
                             f"module-level {name!r} on a path from "
                             f"{job_labels}"),
                ))
            elif graph.class_by_name.get(name):
                findings.append(Finding(
                    path=func.path, line=node.lineno,
                    col=node.col_offset, code="FLOW611",
                    rule="job-mutates-global",
                    message=(f"{func.qualname} mutates class "
                             f"attribute {name}.… on a path from "
                             f"{job_labels}"),
                ))

        if not isinstance(node, ast.Call):
            continue
        text = dotted(node.func) or ""
        resolved = _resolve_text(module, text)

        # -- FLOW611: in-place mutation of module-level containers ----
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATING_METHODS):
            recv = node.func.value
            recv_base = recv
            while isinstance(recv_base, (ast.Subscript,
                                         ast.Attribute)):
                recv_base = recv_base.value
            if isinstance(recv_base, ast.Name) and (
                    recv_base.id in globals_here
                    and recv_base.id not in locals_here):
                findings.append(Finding(
                    path=func.path, line=node.lineno,
                    col=node.col_offset, code="FLOW611",
                    rule="job-mutates-global",
                    message=(f"{func.qualname} calls mutating "
                             f".{node.func.attr}() on module-level "
                             f"{recv_base.id!r} on a path from "
                             f"{job_labels}"),
                ))

        # -- FLOW612: wall clock --------------------------------------
        if resolved in WALLCLOCK_CALLS or text in WALLCLOCK_CALLS:
            findings.append(Finding(
                path=func.path, line=node.lineno, col=node.col_offset,
                code="FLOW612", rule="job-reads-wallclock",
                message=(f"{func.qualname} calls {text}() on a path "
                         f"from {job_labels}; payloads must not "
                         f"depend on wall time"),
            ))

        # -- FLOW613: I/O ---------------------------------------------
        if text == "open" and "open" not in locals_here:
            findings.append(Finding(
                path=func.path, line=node.lineno, col=node.col_offset,
                code="FLOW613", rule="job-does-io",
                message=(f"{func.qualname} opens a file on a path "
                         f"from {job_labels}; shard I/O belongs to "
                         f"the runner's checkpoint API"),
            ))
        else:
            for prefix in IO_CALL_PREFIXES:
                hit = (resolved.startswith(prefix)
                       or resolved == prefix.rstrip("."))
                if hit:
                    findings.append(Finding(
                        path=func.path, line=node.lineno,
                        col=node.col_offset, code="FLOW613",
                        rule="job-does-io",
                        message=(f"{func.qualname} calls {text}() on "
                                 f"a path from {job_labels}; shard "
                                 f"I/O belongs to the runner's "
                                 f"checkpoint API"),
                    ))
                    break

        # -- FLOW614: writes through captured names -------------------
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATING_METHODS
                and isinstance(node.func.value, ast.Name)):
            name = node.func.value.id
            if name in func.free_names and name not in locals_here:
                findings.append(Finding(
                    path=func.path, line=node.lineno,
                    col=node.col_offset, code="FLOW614",
                    rule="job-captures-mutable",
                    message=(f"{func.qualname} mutates captured "
                             f"enclosing variable {name!r} on a path "
                             f"from {job_labels}; closure state "
                             f"leaks between shards"),
                ))

    # FLOW614 (store form): x[...] = / x += through a free name.
    for node in _walk_own_body(func):
        targets: Iterable[ast.expr] = ()
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = (node.target,)
        for target in targets:
            if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name):
                name = target.value.id
                if name in func.free_names \
                        and name not in locals_here:
                    findings.append(Finding(
                        path=func.path, line=node.lineno,
                        col=node.col_offset, code="FLOW614",
                        rule="job-captures-mutable",
                        message=(f"{func.qualname} writes into "
                                 f"captured enclosing variable "
                                 f"{name!r} on a path from "
                                 f"{job_labels}"),
                    ))

    # FLOW615: unresolved reachable calls (advisory escape hatch).
    for site in graph.callees(func.qualname):
        if site.targets or site.kind in ("callback", "constructor"):
            continue
        text = site.callee_text
        terminal = text.split(".")[-1]
        if text.startswith(tuple(_BENIGN_UNRESOLVED)) \
                or text in _BENIGN_UNRESOLVED \
                or terminal in _BENIGN_UNRESOLVED \
                or terminal in _BENIGN_TERMINALS:
            continue
        # Exception constructors raise; they do not do I/O.
        if terminal[:1].isupper() and terminal.endswith(
                ("Error", "Exception", "Warning", "Interrupt")):
            continue
        # Mutating a container bound to a (non-parameter) local stays
        # inside the call frame — pure for our purposes.
        head = text.split(".")[0]
        if terminal in _MUTATING_METHODS and head in locals_here \
                and head not in func.params:
            continue
        # Bare CamelCase calls are (unindexed) constructors — their
        # __init__ side effects are covered when the class is known.
        if terminal[:1].isupper() and "_" not in terminal:
            continue
        resolved = _resolve_text(module, text)
        if resolved.startswith(("numpy.", "math.", "collections.",
                                "itertools.", "dataclasses.",
                                "typing.", "heapq.", "bisect.")):
            continue
        advisory.append(Finding(
            path=func.path, line=site.line, col=site.col,
            code="FLOW615", rule="job-unresolved-call",
            message=(f"{func.qualname} calls {text}() which the "
                     f"call graph cannot resolve; purity past this "
                     f"edge is assumed, not proved"),
        ))
    return findings, advisory


def analyze_purity(graph: CallGraph) -> PurityResult:
    """Prove (or refute) purity for every registered fleet job."""
    findings: List[Finding] = []
    unresolved: Dict[str, List[Finding]] = {}
    seen: Dict[Tuple[str, int, int, str], Finding] = {}

    job_of_func: Dict[str, Set[str]] = {}
    for job_name, qualname in sorted(graph.fleet_jobs.items()):
        for reached in graph.reachable([qualname]):
            job_of_func.setdefault(reached, set()).add(job_name)

    for qualname, jobs in sorted(job_of_func.items()):
        func = graph.functions.get(qualname)
        if func is None:
            continue
        labels = "fleet-job:" + ",".join(sorted(jobs)[:3])
        hard, advisory = _check_function(graph, func, labels)
        for finding in hard:
            key = (finding.path, finding.line, finding.col,
                   finding.code)
            if key not in seen:
                seen[key] = finding
                findings.append(finding)
        if advisory:
            bucket = unresolved.setdefault(sorted(jobs)[0], [])
            bucket.extend(advisory)

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return PurityResult(findings=findings, unresolved=unresolved)
