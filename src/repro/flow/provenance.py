"""FLOW601–604: interprocedural RNG provenance.

Every random draw that can run on behalf of a registered fleet job or
an experiment entry point must trace back to a deterministic source:
the shard stream handed to the job, a ``derived_stream(...)`` /
``RandomStreams.get(...)`` with a replayable key, or a seeded
``np.random.default_rng(seed)``.  The analysis:

* classifies, per function, the *origin* of every generator a draw
  method (``integers``/``random``/``choice``/...) is invoked on —
  local ``derived_stream`` calls, the ``rng if rng is not None else
  derived_stream(K)`` fallback idiom (on ``self`` attributes or
  locals), or an injected parameter;
* propagates origins along call edges, tracking *per call site*
  whether the rng argument was actually supplied — an omitted
  optional ``rng`` selects the fallback branch, a supplied one
  selects the caller's origins;
* constant-folds stream keys (f-strings fold around their holes) so
  two distinct call sites that collapse to the same fully-constant
  ``(key, seed)`` are reported as a collision — two components
  sharing a stream draw *correlated* values, which is exactly the
  silent-correlation failure the fleet's serial==parallel proof
  assumes away.

Rules:

* **FLOW601 untraced-rng-draw** — a draw reachable from an entry
  point whose generator cannot be traced to any deterministic source.
* **FLOW602 stream-key-collision** — two distinct call sites fold to
  the same fully-constant stream key (and seed).
* **FLOW603 tainted-stream-key** — a stream key built from
  non-spec-pure values (wall clock, PIDs, environment, ``id()``,
  ``hash()``): replayable neither across runs nor across hosts.
* **FLOW604 ambient-stream-in-job** — on some call path from a fleet
  job, a component falls back to its bare constant-key stream (the
  rng was never threaded through), so every shard draws the *same*
  sequence there instead of its own decorrelated one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.flow.graph import (
    CallGraph,
    CallSite,
    FunctionInfo,
    dotted,
    function_scope,
)
from repro.lint.engine import Finding

#: np.random.Generator methods that consume randomness.
DRAW_METHODS = frozenset({
    "random", "integers", "choice", "shuffle", "permutation",
    "permuted", "normal", "standard_normal", "exponential", "uniform",
    "poisson", "binomial", "geometric", "gamma", "beta", "bytes",
    "lognormal", "triangular", "laplace", "multinomial", "standard_t",
    "chisquare", "dirichlet", "multivariate_normal",
})

#: Receiver names that look generator-shaped even when untyped.
_RNG_NAME_HINTS = ("rng", "stream", "random", "gen")

#: Dotted call prefixes whose values are not pure functions of the
#: spec: folding them into a stream key breaks replayability.
_TAINT_CALLS = (
    "time.", "datetime.", "os.getpid", "os.urandom", "os.environ",
    "uuid.", "random.", "secrets.", "socket.gethostname",
    "platform.",
)
_TAINT_BUILTINS = frozenset({"id", "hash"})


@dataclass(frozen=True)
class Origin:
    """Where a generator's entropy comes from.

    kind: "derived" (keyed stream), "seeded" (default_rng(seed)),
    "shard" (the fleet shard stream), "param" (injected, resolved at
    call edges), "fallback" (the ``x if x is not None else
    derived_stream(K)`` idiom — param plus a derived fallback), or
    "unknown".
    """

    kind: str
    key: str = ""
    path: str = ""
    line: int = 0
    #: for "param"/"fallback": the owning function + parameter name.
    func: str = ""
    param: str = ""
    #: for "derived": whether the folded key has no holes.
    constant: bool = False
    tainted: bool = False
    seed_repr: str = ""
    #: True only for the module-level ``derived_stream`` helper, whose
    #: stream family is hard-wired; ``RandomStreams.get`` keys are
    #: scoped to an instance whose seed may itself be parameterized.
    ambient: bool = False


@dataclass
class DrawSite:
    """One generator-method call and the receiver's local origins."""

    func: str
    path: str
    line: int
    col: int
    method: str
    origins: Tuple[Origin, ...]


@dataclass
class ProvenanceResult:
    findings: List[Finding]
    draw_sites: List[DrawSite] = field(default_factory=list)
    derived_sites: List[Origin] = field(default_factory=list)


def _fold_key(node: ast.expr) -> Tuple[str, List[ast.expr], bool]:
    """Constant-fold a stream-key expression.

    Returns (pattern, hole expressions, fully_constant).  Holes are
    rendered as ``{}`` in the pattern, so two sites only collide when
    their constant parts agree *and* neither has holes.
    """
    if isinstance(node, ast.Constant):
        return str(node.value), [], True
    if isinstance(node, ast.JoinedStr):
        pattern = ""
        holes: List[ast.expr] = []
        constant = True
        for value in node.values:
            if isinstance(value, ast.Constant):
                pattern += str(value.value)
            elif isinstance(value, ast.FormattedValue):
                pattern += "{}"
                holes.append(value.value)
                constant = False
            else:
                pattern += "{}"
                constant = False
        return pattern, holes, constant
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _fold_key(node.left)
        right = _fold_key(node.right)
        return (left[0] + right[0], left[1] + right[1],
                left[2] and right[2])
    if isinstance(node, ast.Call):
        func_text = dotted(node.func) or ""
        if func_text.endswith(".format"):
            base = _fold_key(node.func.value) if isinstance(
                node.func, ast.Attribute) else ("{}", [node], False)
            return base[0], base[1] + list(node.args), False
    return "{}", [node], False


def _is_tainted(holes: Sequence[ast.expr],
                imports: Dict[str, str]) -> bool:
    for hole in holes:
        for node in ast.walk(hole):
            if not isinstance(node, ast.Call):
                continue
            text = dotted(node.func)
            if text is None:
                continue
            head = text.split(".")[0]
            resolved = imports.get(head, head)
            full = resolved + text[len(head):]
            if text in _TAINT_BUILTINS:
                return True
            if any(full.startswith(prefix) or full == prefix.rstrip(
                    ".") for prefix in _TAINT_CALLS):
                return True
    return False


def _seed_repr(node: ast.Call) -> str:
    for index, arg in enumerate(node.args):
        if index == 1:
            return ast.unparse(arg)
    for keyword in node.keywords:
        if keyword.arg == "seed":
            return ast.unparse(keyword.value)
    return "0"


class _FunctionFacts:
    """Local rng dataflow for one function."""

    def __init__(self, graph: CallGraph, func: FunctionInfo) -> None:
        self.graph = graph
        self.func = func
        self.module = graph.modules.get(func.module)
        self.locals: Dict[str, Tuple[Origin, ...]] = {}
        self.draws: List[DrawSite] = []
        self.derived: List[Origin] = []
        self._collect()

    # -- classification ------------------------------------------------
    def _classify_call(self, node: ast.Call) -> Optional[Origin]:
        """Origin when ``node`` creates a generator, else None."""
        text = dotted(node.func) or ""
        imports = self.module.imports if self.module else {}
        head = text.split(".")[0]
        resolved = imports.get(head, head) + text[len(head):] \
            if head else text
        terminal = text.split(".")[-1]
        if terminal == "derived_stream" and (
                resolved.endswith("rng.derived_stream")
                or text == "derived_stream"):
            return self._derived_origin(node, ambient=True)
        if resolved.endswith("random.default_rng") \
                or text.endswith("default_rng"):
            if node.args or node.keywords:
                return Origin(kind="seeded", path=self.func.path,
                              line=node.lineno,
                              key=ast.unparse(node.args[0])
                              if node.args else "<kw>")
            return Origin(kind="unknown", path=self.func.path,
                          line=node.lineno)
        if terminal == "get" and isinstance(node.func, ast.Attribute):
            recv = node.func.value
            recv_text = dotted(recv) or ""
            if self._is_streams(recv_text) and node.args:
                return self._derived_origin(node, key_arg=node.args[0])
        if terminal == "shard_stream" or resolved.endswith(
                "spec.shard_stream"):
            return Origin(kind="shard", path=self.func.path,
                          line=node.lineno)
        return None

    def _fallback_origin(self, primary: ast.expr,
                         alternate: ast.expr) -> Optional[Origin]:
        """The ``rng if rng is not None else derived_stream(K)``
        idiom (or ``rng or derived_stream(K)``): a parameter with a
        keyed-stream fallback, resolved per call edge."""
        if not isinstance(primary, ast.Name):
            return None
        if primary.id not in self.func.params:
            return None
        other = self._classify_expr(alternate)
        if len(other) != 1 or other[0].kind != "derived":
            return None
        return Origin(
            kind="fallback", key=other[0].key, path=other[0].path,
            line=other[0].line, func=self.func.qualname,
            param=primary.id, constant=other[0].constant,
            tainted=other[0].tainted, seed_repr=other[0].seed_repr,
            ambient=other[0].ambient,
        )

    def _is_streams(self, recv_text: str) -> bool:
        if not recv_text:
            return False
        scope = function_scope(self.graph, self.func)
        parts = recv_text.split(".")
        if parts[0] == "self" and self.func.class_qualname:
            info = self.graph.classes.get(self.func.class_qualname)
            if info and len(parts) == 2:
                typed = info.attr_types.get(parts[1], "")
                if typed.endswith("RandomStreams"):
                    return True
                # fall through to the name heuristic: the attr type
                # is often unknown (e.g. bound by a fallback IfExp)
        typed = scope.var_types.get(recv_text, "")
        if typed.endswith("RandomStreams"):
            return True
        annotation = self.func.annotations.get(recv_text, "")
        return annotation.endswith("RandomStreams") \
            or "streams" in recv_text.lower()

    def _derived_origin(self, node: ast.Call,
                        key_arg: Optional[ast.expr] = None,
                        ambient: bool = False) -> Origin:
        key_arg = key_arg if key_arg is not None else (
            node.args[0] if node.args else None)
        if key_arg is None:
            return Origin(kind="unknown", path=self.func.path,
                          line=node.lineno)
        pattern, holes, constant = _fold_key(key_arg)
        imports = self.module.imports if self.module else {}
        origin = Origin(
            kind="derived", key=pattern, path=self.func.path,
            line=node.lineno, constant=constant,
            tainted=_is_tainted(holes, imports),
            seed_repr=_seed_repr(node) if ambient else "<instance>",
            ambient=ambient,
        )
        self.derived.append(origin)
        return origin

    def _classify_expr(self, node: ast.expr) -> Tuple[Origin, ...]:
        """Origins of a generator-valued expression, locally."""
        if isinstance(node, ast.Call):
            origin = self._classify_call(node)
            if origin is not None:
                return (origin,)
            return ()
        if isinstance(node, ast.IfExp):
            # rng if rng is not None else derived_stream(K)
            fallback = self._fallback_origin(node.body, node.orelse)
            if fallback is not None:
                return (fallback,)
            return (self._classify_expr(node.body)
                    + self._classify_expr(node.orelse))
        if isinstance(node, ast.BoolOp) and isinstance(node.op,
                                                       ast.Or):
            if len(node.values) == 2:
                fallback = self._fallback_origin(node.values[0],
                                                 node.values[1])
                if fallback is not None:
                    return (fallback,)
            out: Tuple[Origin, ...] = ()
            for value in node.values:
                out += self._classify_expr(value)
            return out
        text = dotted(node)
        if text is None:
            return ()
        if text in self.locals:
            return self.locals[text]
        parts = text.split(".")
        if parts[0] == "self" and self.func.class_qualname \
                and len(parts) == 2:
            attr_origins = _class_rng_attrs(
                self.graph, self.func.class_qualname).get(parts[1])
            if attr_origins:
                return attr_origins
            return ()
        if text in self.func.params:
            return (Origin(kind="param", func=self.func.qualname,
                           param=text, path=self.func.path,
                           line=self.func.line),)
        return ()

    # -- collection ----------------------------------------------------
    def _collect(self) -> None:
        from repro.flow.graph import _walk_own_body

        for node in _walk_own_body(self.func):
            if isinstance(node, ast.Assign):
                targets = [t.id for t in node.targets
                           if isinstance(t, ast.Name)]
                if targets:
                    origins = self._classify_expr(node.value)
                    if origins:
                        for name in targets:
                            self.locals[name] = origins
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in DRAW_METHODS:
                recv = node.func.value
                origins = self._classify_expr(recv)
                recv_text = dotted(recv) or ""
                terminal = recv_text.split(".")[-1].lower()
                looks_rng = any(hint in terminal
                                for hint in _RNG_NAME_HINTS)
                annotation = self.func.annotations.get(recv_text, "")
                if "Generator" in annotation:
                    looks_rng = True
                if not origins and not looks_rng:
                    continue  # `.choice` on something non-random
                self.draws.append(DrawSite(
                    func=self.func.qualname, path=self.func.path,
                    line=node.lineno, col=node.col_offset,
                    method=node.func.attr, origins=origins or (
                        Origin(kind="param", func=self.func.qualname,
                               param=recv_text, path=self.func.path,
                               line=node.lineno)
                        if recv_text in self.func.params else
                        Origin(kind="unknown", path=self.func.path,
                               line=node.lineno),
                    ),
                ))


_ATTR_CACHE: Dict[int, Dict[str, Dict[str, Tuple[Origin, ...]]]] = {}


def _class_rng_attrs(graph: CallGraph, class_qualname: str
                     ) -> Dict[str, Tuple[Origin, ...]]:
    """``self.<attr>`` rng origins, from ``__init__`` assignments.

    Walks base classes first so an attribute set by
    ``super().__init__`` (the ``Allocator`` fallback idiom) is seen by
    subclasses that define their own ``__init__``; derived-class
    assignments overlay inherited ones.
    """
    cache = _ATTR_CACHE.setdefault(id(graph), {})
    if class_qualname in cache:
        return cache[class_qualname]
    cache[class_qualname] = {}  # break recursion
    out: Dict[str, Tuple[Origin, ...]] = {}
    info = graph.classes.get(class_qualname)
    if info is not None:
        for base in info.bases:
            bare = base.split(".")[-1]
            for candidate in graph.class_by_name.get(bare, []):
                out.update(_class_rng_attrs(graph, candidate))
    init = graph.functions.get(class_qualname + ".__init__")
    if init is not None:
        facts = _FunctionFacts.__new__(_FunctionFacts)
        facts.graph = graph
        facts.func = init
        facts.module = graph.modules.get(init.module)
        facts.locals = {}
        facts.derived = []
        facts.draws = []
        from repro.flow.graph import _walk_own_body

        for node in _walk_own_body(init):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    origins = facts._classify_expr(node.value)
                    if origins:
                        out[target.attr] = origins
    cache[class_qualname] = out
    return out


def entry_points(graph: CallGraph) -> Dict[str, str]:
    """qualname -> label ("fleet-job:<name>" or "experiment:<name>")."""
    entries: Dict[str, str] = {}
    for job_name, qualname in graph.fleet_jobs.items():
        entries[qualname] = f"fleet-job:{job_name}"
    for qualname, func in graph.functions.items():
        if func.module == "repro.cli" and func.name.startswith("cmd_"):
            entries[qualname] = f"experiment:{func.name[4:]}"
    return entries


def _rng_params(func: FunctionInfo) -> List[str]:
    out = []
    for param in func.params:
        annotation = func.annotations.get(param, "")
        if param in ("rng", "generator") or "Generator" in annotation:
            out.append(param)
    return out


def _bind_edge_args(graph: CallGraph, caller: FunctionInfo,
                    site: CallSite, callee: FunctionInfo,
                    node: ast.Call,
                    facts: "_FunctionFacts"
                    ) -> Dict[str, Tuple[Origin, ...]]:
    """Origins flowing into the callee's rng params at this site.

    A param bound to the sentinel ``("omitted",)`` origin means the
    caller did not supply it, so the callee's fallback (if any)
    applies.
    """
    params = callee.params
    if params and params[0] in ("self", "cls"):
        params = params[1:]
    supplied: Dict[str, Tuple[Origin, ...]] = {}
    for index, arg in enumerate(node.args):
        if index < len(params):
            supplied[params[index]] = facts._classify_expr(arg)
    for keyword in node.keywords:
        if keyword.arg:
            supplied[keyword.arg] = facts._classify_expr(keyword.value)
    out: Dict[str, Tuple[Origin, ...]] = {}
    for param in _rng_params(callee):
        if param in supplied:
            out[param] = supplied[param] or (
                Origin(kind="unknown", func=caller.qualname,
                       path=caller.path, line=site.line),)
        elif param in callee.none_default_params:
            # Record *which* caller omitted the rng: the fallback only
            # matters if that construction site is itself on the
            # relevant paths.
            out[param] = (Origin(kind="omitted", func=caller.qualname,
                                 path=caller.path, line=site.line),)
        else:
            out[param] = (Origin(kind="unknown", func=caller.qualname,
                                 path=caller.path, line=site.line),)
    return out


def analyze_provenance(graph: CallGraph) -> ProvenanceResult:
    """Run FLOW601–604 over the whole graph."""
    entries = entry_points(graph)
    facts_by_func: Dict[str, _FunctionFacts] = {}

    def facts_of(qualname: str) -> Optional[_FunctionFacts]:
        if qualname not in facts_by_func:
            func = graph.functions.get(qualname)
            if func is None:
                return None
            facts_by_func[qualname] = _FunctionFacts(graph, func)
        return facts_by_func[qualname]

    # ------------------------------------------------------------------
    # Interprocedural propagation: param -> origins, per function.
    # ------------------------------------------------------------------
    param_origins: Dict[str, Dict[str, Set[Origin]]] = {}
    reachable_from: Dict[str, Set[str]] = {}

    worklist: List[str] = []
    for qualname, label in entries.items():
        func = graph.functions.get(qualname)
        if func is None:
            continue
        store = param_origins.setdefault(qualname, {})
        for param in _rng_params(func):
            origin = (Origin(kind="shard")
                      if label.startswith("fleet-job")
                      else Origin(kind="seeded", key="<cli-seed>"))
            store.setdefault(param, set()).add(origin)
        reachable_from.setdefault(qualname, set()).add(label)
        worklist.append(qualname)

    ast_cache: Dict[Tuple[str, int, int], ast.Call] = {}
    for qualname in graph.functions:
        func = graph.functions[qualname]
        from repro.flow.graph import _walk_own_body

        for node in _walk_own_body(func):
            if isinstance(node, ast.Call):
                ast_cache[(qualname, node.lineno,
                           node.col_offset)] = node

    seen_edges: Set[Tuple[str, str, int, int]] = set()
    iterations = 0
    while worklist and iterations < 200_000:
        iterations += 1
        current = worklist.pop(0)
        caller = graph.functions.get(current)
        caller_facts = facts_of(current)
        if caller is None or caller_facts is None:
            continue
        labels = reachable_from.get(current, set())
        for site in graph.callees(current):
            node = ast_cache.get((current, site.line, site.col))
            for target in site.targets:
                callee = graph.functions.get(target)
                if callee is None:
                    continue
                changed = False
                store = param_origins.setdefault(target, {})
                if node is not None and site.kind in ("direct",
                                                      "constructor",
                                                      "registry"):
                    # Store raw origins; they are resolved
                    # transitively once propagation has finished, so
                    # ordering cannot bake in a stale upstream store.
                    bound = _bind_edge_args(
                        graph, caller, site, callee, node,
                        caller_facts)
                    for param, origins in bound.items():
                        bucket = store.setdefault(param, set())
                        before = len(bucket)
                        bucket.update(origins)
                        changed |= len(bucket) != before
                targets_labels = reachable_from.setdefault(
                    target, set())
                before_labels = len(targets_labels)
                targets_labels.update(labels)
                changed |= len(targets_labels) != before_labels
                edge = (current, target, site.line, site.col)
                if changed or edge not in seen_edges:
                    seen_edges.add(edge)
                    if changed or target not in param_origins:
                        worklist.append(target)

    # ------------------------------------------------------------------
    # Findings.
    # ------------------------------------------------------------------
    findings: List[Finding] = []
    all_draws: List[DrawSite] = []
    all_derived: List[Origin] = []
    for qualname in graph.functions:
        facts = facts_of(qualname)
        if facts is None:
            continue
        all_draws.extend(facts.draws)
        all_derived.extend(facts.derived)

    for draw in all_draws:
        labels = reachable_from.get(draw.func, set())
        if not labels:
            continue
        resolved = _resolve_origins(draw.origins, param_origins)
        untraced = [
            o for o in resolved
            if o.kind == "unknown"
            and (not o.func or o.func in reachable_from)
        ]
        if not resolved or untraced:
            findings.append(Finding(
                path=draw.path, line=draw.line, col=draw.col,
                code="FLOW601", rule="untraced-rng-draw",
                message=(
                    f"rng.{draw.method}() in {draw.func} (reached "
                    f"from {_label_text(labels)}) does not trace to "
                    f"derived_stream/shard stream/seeded generator"
                ),
            ))
        job_labels = {lab for lab in labels
                      if lab.startswith("fleet-job")}
        if job_labels:
            for origin in resolved:
                if not origin.constant:
                    continue
                if origin.kind == "derived" and origin.ambient:
                    hit = job_labels
                elif origin.kind == "fallback-taken":
                    # Only real when the construction that omitted
                    # the rng is itself on a fleet-job path.
                    omit_labels = reachable_from.get(origin.func,
                                                     set())
                    hit = job_labels & {
                        lab for lab in omit_labels
                        if lab.startswith("fleet-job")}
                else:
                    continue
                if not hit:
                    continue
                findings.append(Finding(
                    path=draw.path, line=draw.line, col=draw.col,
                    code="FLOW604", rule="ambient-stream-in-job",
                    message=(
                        f"rng.{draw.method}() in {draw.func} falls "
                        f"back to the ambient constant-key stream "
                        f"{origin.key!r} on a path from "
                        f"{_label_text(hit)}; every shard draws an "
                        f"identical sequence here — thread the "
                        f"shard rng through"
                    ),
                ))

    # FLOW602: fully-constant keys shared by distinct call sites.
    by_key: Dict[Tuple[str, str], List[Origin]] = {}
    for origin in all_derived:
        if origin.constant:
            by_key.setdefault((origin.key, origin.seed_repr),
                              []).append(origin)
    for (key, seed), origins in sorted(by_key.items()):
        sites = sorted({(o.path, o.line) for o in origins})
        if len(sites) < 2:
            continue
        for path, line in sites:
            others = ", ".join(f"{p}:{n}" for p, n in sites
                               if (p, n) != (path, line))
            findings.append(Finding(
                path=path, line=line, col=0, code="FLOW602",
                rule="stream-key-collision",
                message=(
                    f"stream key {key!r} (seed={seed}) is also "
                    f"derived at {others}; distinct components "
                    f"sharing a stream draw correlated values"
                ),
            ))

    # FLOW603: keys folded from non-spec-pure expressions.
    for origin in all_derived:
        if origin.tainted:
            findings.append(Finding(
                path=origin.path, line=origin.line, col=0,
                code="FLOW603", rule="tainted-stream-key",
                message=(
                    f"stream key {origin.key!r} folds in a "
                    f"non-spec-pure value (wall clock, pid, "
                    f"environment, id() or hash()); the stream is "
                    f"not replayable"
                ),
            ))

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return ProvenanceResult(findings=findings, draw_sites=all_draws,
                            derived_sites=all_derived)


def _resolve_origins(origins: Sequence[Origin],
                     param_origins: Dict[str, Dict[str, Set[Origin]]],
                     _seen: Optional[Set[Tuple[str, str, str]]] = None
                     ) -> Tuple[Origin, ...]:
    """Flatten param/fallback origins through the caller bindings.

    Each param/fallback origin names its *owning* function (for a
    ``self.rng`` fallback that is ``__init__``, not the method doing
    the draw), so the lookup goes through the owner's binding store —
    recursively, since a caller may itself have received the rng as a
    parameter.  ``_seen`` guards recursion through mutually-passing
    functions.
    """
    seen = _seen if _seen is not None else set()
    out: List[Origin] = []
    for origin in origins:
        if origin.kind not in ("param", "fallback"):
            out.append(origin)
            continue
        key = (origin.kind, origin.func, origin.param)
        if key in seen:
            continue
        seen.add(key)
        incoming = param_origins.get(origin.func, {}).get(
            origin.param)
        if origin.kind == "param":
            if not incoming:
                out.append(origin)
                continue
            for o in incoming:
                if o.kind == "omitted":
                    out.append(Origin(kind="unknown", func=o.func,
                                      path=origin.path,
                                      line=origin.line))
                else:
                    out.extend(_resolve_origins(
                        (o,), param_origins, seen))
        else:  # fallback
            if not incoming:
                # Nothing entry-reachable bound the param; neither
                # branch is provable, so stay quiet (soundness gap,
                # documented).
                out.append(Origin(
                    kind="fallback-unbound", key=origin.key,
                    path=origin.path, line=origin.line,
                    constant=origin.constant, tainted=origin.tainted,
                    seed_repr=origin.seed_repr))
                continue
            for o in incoming:
                if o.kind == "omitted":
                    out.append(Origin(
                        kind="fallback-taken", key=origin.key,
                        func=o.func, path=origin.path,
                        line=origin.line, constant=origin.constant,
                        tainted=origin.tainted,
                        seed_repr=origin.seed_repr))
                else:
                    out.extend(_resolve_origins(
                        (o,), param_origins, seen))
    return tuple(out)


def _label_text(labels: Set[str]) -> str:
    return ", ".join(sorted(labels)[:3])
