#!/usr/bin/env python3
"""Scoped conferencing: TTL scoping in action (paper §1).

A university department announces three sessions at different scopes —
a campus-local seminar (TTL 15), a national working group (TTL 47,
inside Europe) and an intercontinental conference (TTL 127) — and we
check who can see what from four observation points: same campus, same
country, elsewhere in Europe, and North America.

Also demonstrates the asymmetry hazard: a remote high-TTL session can
invade a local session's scope even though the local announcement
never reaches the remote site.

Run:  python examples/scoped_conference.py
"""

import numpy as np

from repro.core.address_space import MulticastAddressSpace
from repro.core.adaptive import AdaptiveIprmaAllocator
from repro.sap.directory import SessionDirectory
from repro.sim.adapters import build_network_stack
from repro.sim.events import EventScheduler
from repro.sim.network import NetworkModel
from repro.topology.mbone import MboneParams, generate_mbone


def find_node(topology, fragment, exclude=()):
    """First node whose label contains ``fragment`` (skipping some)."""
    for node in topology.nodes():
        if node in exclude:
            continue
        if fragment in (topology.label(node) or ""):
            return node
    raise LookupError(f"no node labelled with {fragment!r}")


def find_big_site(topology, country="europe/uk"):
    """A site in ``country`` with at least 3 routers."""
    from collections import Counter
    sites = Counter()
    for node in topology.nodes():
        label = topology.label(node) or ""
        if label.startswith(country + "/site"):
            sites[label.rsplit("/", 1)[0]] += 1
    for site, count in sites.most_common():
        if count >= 3:
            return site
    raise LookupError(f"no multi-router site in {country}")


def main() -> None:
    topology = generate_mbone(MboneParams(total_nodes=400, seed=7))
    scope_map, __, receiver_map = build_network_stack(topology)

    site = find_big_site(topology)
    announcer_node = find_node(topology, site + "/r0")
    observers = {
        "same campus": find_node(topology, site + "/r",
                                 exclude={announcer_node}),
        "same country (UK bb)": find_node(topology, "europe/uk/bb"),
        "elsewhere in Europe": find_node(topology, "europe/germany/bb"),
        "North America": find_node(topology, "north-america/usa/bb"),
    }

    scheduler = EventScheduler()
    network = NetworkModel(scheduler, receiver_map)
    space = MulticastAddressSpace.abstract(4096)

    def directory(node, name):
        return SessionDirectory(
            node=node, scheduler=scheduler, network=network,
            allocator=AdaptiveIprmaAllocator.aipr1(
                space.size, rng=np.random.default_rng(node)),
            address_space=space, username=name,
        )

    announcer = directory(announcer_node, "dept")
    watchers = {label: directory(node, label.split()[0])
                for label, node in observers.items()}

    sessions = [
        announcer.create_session("campus seminar", ttl=15),
        announcer.create_session("national working group", ttl=47),
        announcer.create_session("intercontinental conf", ttl=127),
    ]
    scheduler.run(until=30.0)

    print(f"announcing from node {announcer_node} "
          f"({topology.label(announcer_node)}):")
    for session in sessions:
        print(f"  ttl {session.ttl:3d} -> "
              f"{space.index_to_ip(session.address)} "
              f"(scope: {scope_map.scope_size(announcer_node, session.ttl)}"
              f" nodes)")
    print()
    header = f"{'observer':28s}" + "".join(
        f"ttl={s.ttl:<6d}" for s in sessions
    )
    print(header)
    for label, watcher in watchers.items():
        seen = {d.name for d in watcher.known_sessions()}
        marks = "".join(
            f"{'yes' if s.description.name in seen else '-':10s}"
            for s in sessions
        )
        print(f"{label:28s}{marks}")

    # The TTL asymmetry hazard (paper fig. 9 / §1): a US site sending
    # at TTL 191 floods the UK campus, clashing with any local session
    # on the same address — yet it can never hear that local session.
    us_node = observers["North America"]
    local = sessions[0]
    print()
    print("asymmetry check:")
    print(f"  US node hears the campus seminar announcement: "
          f"{scope_map.can_hear(us_node, announcer_node, local.ttl)}")
    print(f"  but a US TTL-191 session would overlap its scope: "
          f"{scope_map.scopes_overlap(us_node, 191, announcer_node, local.ttl)}")


if __name__ == "__main__":
    main()
