#!/usr/bin/env python3
"""Quickstart: two session directories over a simulated Mbone.

Builds a small synthetic Mbone, starts a session directory (the
paper's sdr) at two sites, creates a globally-scoped session at one
site and shows the other discovering it through SAP announcements —
with the discovered address automatically excluded from the second
site's own allocations.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.address_space import MulticastAddressSpace
from repro.core.iprma import StaticIprmaAllocator
from repro.sap.directory import SessionDirectory
from repro.sap.sdp import MediaStream
from repro.sim.adapters import build_network_stack
from repro.sim.events import EventScheduler
from repro.sim.network import NetworkModel
from repro.topology.mbone import MboneParams, generate_mbone


def main() -> None:
    # 1. A synthetic Mbone (the paper used an mcollect-derived map).
    topology = generate_mbone(MboneParams(total_nodes=200, seed=42))
    scope_map, __, receiver_map = build_network_stack(topology)
    print(f"topology: {topology}")

    # 2. The simulation substrate: event scheduler + lossy multicast.
    scheduler = EventScheduler()
    network = NetworkModel(scheduler, receiver_map, loss_rate=0.02)

    # 3. One session directory per site, each with its own IPRMA
    #    allocator over the sdr dynamic address range.
    space = MulticastAddressSpace.abstract(4096)
    alice = SessionDirectory(
        node=0, scheduler=scheduler, network=network,
        allocator=StaticIprmaAllocator.seven_band(
            space.size, np.random.default_rng(1)),
        address_space=space, username="alice",
    )
    bob = SessionDirectory(
        node=50, scheduler=scheduler, network=network,
        allocator=StaticIprmaAllocator.seven_band(
            space.size, np.random.default_rng(2)),
        address_space=space, username="bob",
    )

    # 4. Alice announces a global conference.
    session = alice.create_session(
        "repro kickoff", ttl=127,
        media=[MediaStream("audio", 49170), MediaStream("video", 51372)],
        info="Weekly project call",
    )
    print(f"alice allocated {space.index_to_ip(session.address)} "
          f"(ttl {session.ttl})")

    # 5. Run the simulation; bob's directory hears the announcement.
    scheduler.run(until=10.0)
    print(f"bob's directory after 10 s: "
          f"{[d.name for d in bob.known_sessions()]}")

    # 6. Bob's allocator automatically avoids the discovered address.
    mine = bob.create_session("bob's own session", ttl=127)
    print(f"bob allocated   {space.index_to_ip(mine.address)} "
          f"(differs from alice's: {mine.address != session.address})")

    # 7. Withdrawing a session removes it from peers' caches.
    alice.delete_session(session)
    scheduler.run(until=20.0)
    print(f"bob's directory after withdrawal: "
          f"{[d.name for d in bob.known_sessions()]}")


if __name__ == "__main__":
    main()
