#!/usr/bin/env python3
"""Allocator shoot-out: a miniature of the paper's fig. 5.

Compares pure random (R), informed random (IR), static IPRMA (3- and
7-band) and Deterministic Adaptive IPRMA on the same synthetic Mbone:
how many sessions can each allocate before the first address clash?

Run:  python examples/allocator_shootout.py
"""

from repro.core.adaptive import AdaptiveIprmaAllocator
from repro.core.informed import InformedRandomAllocator
from repro.core.iprma import StaticIprmaAllocator
from repro.core.random_alloc import RandomAllocator
from repro.experiments.allocation_run import fig5_run
from repro.experiments.reporting import print_series
from repro.experiments.ttl_distributions import DS1, DS4
from repro.routing.scoping import ScopeMap
from repro.topology.mbone import MboneParams, generate_mbone

ALGORITHMS = {
    "R": lambda n, rng: RandomAllocator(n, rng),
    "IR": lambda n, rng: InformedRandomAllocator(n, rng),
    "IPR 3-band": lambda n, rng: StaticIprmaAllocator.three_band(n, rng),
    "IPR 7-band": lambda n, rng: StaticIprmaAllocator.seven_band(n, rng),
    "AIPR-1": lambda n, rng: AdaptiveIprmaAllocator.aipr1(n, rng=rng),
}


def main() -> None:
    topology = generate_mbone(MboneParams(total_nodes=300, seed=5))
    scope_map = ScopeMap.from_topology(topology)
    print(f"running on {topology} ...")

    rows = fig5_run(
        scope_map, ALGORITHMS,
        space_sizes=[100, 200, 400],
        distributions=[DS1, DS4],
        trials=3, seed=0,
    )
    print_series(
        "allocations before first clash (mean of 3 trials)",
        ["algorithm", "ttl distribution", "space size", "allocations"],
        [(r.algorithm, r.distribution, r.space_size,
          round(r.mean_allocations, 1)) for r in rows],
    )

    by_algo = {}
    for row in rows:
        if row.distribution == "ds4" and row.space_size == 400:
            by_algo[row.algorithm] = row.mean_allocations
    print("\nat space 400, ds4 (locally-scoped sessions):")
    baseline = by_algo["R"]
    for name, value in sorted(by_algo.items(), key=lambda kv: kv[1]):
        print(f"  {name:12s} {value:8.1f}  ({value / baseline:4.1f}x R)")
    print("\npaper shape: R ~ IR ~ O(sqrt n); IPR 7-band ~ O(n) and")
    print("benefits most from local scoping; 3-band sits in between.")


if __name__ == "__main__":
    main()
