#!/usr/bin/env python3
"""Clash detection under partition: the three-phase protocol (§3).

Scenario: a session has been announced for a while when its origin
site becomes partitioned.  A newcomer at another site — unable to see
the original — allocates the same address.  Third-party directories
detect the clash and race (with randomised suppression delays) to
defend the original session on its owner's behalf; the newcomer hears
the defence and retreats to a fresh address.

Also compares the uniform and exponential suppression timers of §3.1:
how many third parties end up responding.

Run:  python examples/clash_storm.py
"""

import numpy as np

from repro.core.address_space import MulticastAddressSpace
from repro.core.informed import InformedRandomAllocator
from repro.sap.clash_protocol import ClashPolicy
from repro.sap.directory import SessionDirectory
from repro.sap.response_timer import ExponentialDelayTimer, UniformDelayTimer
from repro.sim.events import EventScheduler
from repro.sim.network import NetworkModel
from repro.sim.trace import Tracer, trace_directory

SPACE = MulticastAddressSpace.abstract(256)
NUM_SITES = 30


def run_scenario(timer_name: str, timer_factory,
                 show_timeline: bool = False) -> None:
    scheduler = EventScheduler()
    network = NetworkModel(
        scheduler,
        lambda source, ttl: [(node, 0.02 + 0.001 * node)
                             for node in range(NUM_SITES)],
    )
    policy = ClashPolicy(recent_window=30.0, timer_factory=timer_factory)
    directories = [
        SessionDirectory(
            node, scheduler, network,
            InformedRandomAllocator(SPACE.size,
                                    np.random.default_rng(node)),
            SPACE, clash_policy=policy,
            rng=np.random.default_rng(100 + node),
        )
        for node in range(NUM_SITES)
    ]
    owner, newcomer = directories[0], directories[1]
    tracer = Tracer(scheduler)
    if show_timeline:
        for directory in directories:
            trace_directory(tracer, directory)

    session = owner.create_session("long-lived stream", ttl=127)
    scheduler.run(until=120.0)

    network.unlisten(owner.node)  # the origin site is partitioned away
    clasher = newcomer.create_session("newcomer", ttl=127)
    own = newcomer.own_sessions()[0]
    own.session.address = session.address
    own.description.connection_address = SPACE.index_to_ip(session.address)
    own.announcer.announce_now()
    started = scheduler.now
    scheduler.run(until=started + 60.0)

    defences = sum(d.clash_handler.defences_sent for d in directories[2:])
    print(f"{timer_name:12s} third-party defences sent: {defences:2d}  "
          f"newcomer moved: {own.session.address != session.address}  "
          f"(now at {SPACE.index_to_ip(own.session.address)})")
    if show_timeline:
        interesting = [r for r in tracer.records(since=started)
                       if r.category != "rx"]
        if interesting:
            print("\n    protocol timeline (defences/retreats):")
            for record in interesting:
                print("    " + record.format())
        print()


def main() -> None:
    print(f"{NUM_SITES} sites; origin partitioned; newcomer steals the "
          f"address\n")
    run_scenario(
        "uniform",
        lambda rng: UniformDelayTimer(0.5, 6.4, rng),
    )
    run_scenario(
        "exponential",
        lambda rng: ExponentialDelayTimer(0.5, 6.4, rtt=0.2, rng=rng),
        show_timeline=True,
    )
    print("\nthe exponential timer keeps the defence storm small even "
          "as the group grows (paper figs. 18/19).")


if __name__ == "__main__":
    main()
