#!/usr/bin/env python3
"""Hierarchical prefix allocation — the paper's §4.1 proposal.

Four regions share one multicast address space.  Each region claims
prefixes through the slow, reliable higher-level channel and allocates
individual addresses within its prefixes using only regional
announcements.  We churn sessions through the regions, watch prefixes
being claimed on demand, and verify cross-region isolation.

Run:  python examples/hierarchical_prefixes.py
"""

import numpy as np

from repro.core.address_space import MulticastAddressSpace
from repro.core.allocator import VisibleSet
from repro.core.hierarchy import HierarchicalAllocator, PrefixPool

REGIONS = ("north-america", "europe", "asia-pacific", "south-america")
SPACE = MulticastAddressSpace.abstract(2048)


def main() -> None:
    pool = PrefixPool(SPACE.size, num_prefixes=32)
    print(f"space: {SPACE}  ({pool.num_prefixes} prefixes of "
          f"{pool.prefix_size} addresses)\n")

    allocators = {}
    claimed = set()
    local_sessions = {name: [] for name in REGIONS}

    for index, name in enumerate(REGIONS):
        allocators[name] = HierarchicalAllocator(
            pool, region_id=index, rng=np.random.default_rng(index)
        )

    rng = np.random.default_rng(99)
    demand = {"north-america": 120, "europe": 80, "asia-pacific": 30,
              "south-america": 10}
    for round_no in range(max(demand.values())):
        for name in REGIONS:
            if round_no >= demand[name]:
                continue
            allocator = allocators[name]
            # The higher level: prefix-usage announcements propagate
            # reliably (modelled as a shared set).
            allocator.observe_claims(claimed)
            allocator.ensure_capacity(len(local_sessions[name]) + 1)
            claimed.update(allocator.prefixes)
            # The lower level: only regional announcements needed.
            used = local_sessions[name]
            view = VisibleSet(
                np.asarray(used, dtype=np.int64),
                np.full(len(used), 63, dtype=np.int64),
            )
            result = allocator.allocate(63, view)
            used.append(result.address)

    print(f"{'region':16s}{'sessions':>9s}{'prefixes':>9s}  addresses")
    for name in REGIONS:
        allocator = allocators[name]
        used = local_sessions[name]
        ranges = ", ".join(
            f"{SPACE.index_to_ip(pool.prefix_range(p)[0])}/.."
            for p in sorted(allocator.prefixes)
        )
        print(f"{name:16s}{len(used):9d}{len(allocator.prefixes):9d}  "
              f"{ranges}")

    # Isolation: no address allocated in two regions.
    all_addresses = [a for used in local_sessions.values() for a in used]
    print(f"\ntotal sessions: {len(all_addresses)}  "
          f"distinct addresses: {len(set(all_addresses))}  "
          f"cross-region clashes: "
          f"{len(all_addresses) - len(set(all_addresses))}")
    print("prefix demand tracked regional load (the paper's 'prefixes "
          "need to be dynamically allocated too').")


if __name__ == "__main__":
    main()
