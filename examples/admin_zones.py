#!/usr/bin/env python3
"""Administrative scoping end-to-end: zones, MZAP, allocation, leaks.

Countries of the synthetic Mbone become administrative scope zones
that all reuse one address range (the RFC 2365 local-scope pattern).
Zone announcement producers advertise each zone (MZAP-lite); hosts
learn their scopes, allocate inside them with plain informed-random —
which packs perfectly, because admin-scope visibility is symmetric —
and a deliberately mis-configured boundary router is caught leaking.

Run:  python examples/admin_zones.py
"""

import numpy as np

from repro.core.admin import AdminScopedAllocator
from repro.core.allocator import VisibleSet
from repro.routing.admin_scoping import AdminScopeMap, zones_from_labels
from repro.sap.mzap import ZamTransport, ZoneAnnouncer, ZoneListener
from repro.sim.events import EventScheduler
from repro.topology.mbone import MboneParams, generate_mbone

RANGE = 64  # each country zone reuses indices 0..63


def main() -> None:
    topology = generate_mbone(MboneParams(total_nodes=250, seed=13))
    zones = zones_from_labels(topology, prefix_depth=2,
                              range_lo=0, range_hi=RANGE)
    zones = [z for z in zones if len(z.members) >= 5]
    scope_map = AdminScopeMap(topology.num_nodes, zones)
    print(f"{len(zones)} country zones, each reusing a "
          f"{RANGE}-address local-scope range\n")

    # MZAP: every zone announces itself; every zone hosts a listener.
    scheduler = EventScheduler()
    transport = ZamTransport(scope_map, scheduler)
    listeners = {}
    for zone in zones:  # listeners first, so nobody misses ZAM #1
        members = sorted(zone.members)
        listeners[zone.name] = ZoneListener(members[-1], scope_map,
                                            transport)
    for zone in zones:
        ZoneAnnouncer(zone, producer=sorted(zone.members)[0],
                      transport=transport).start()
    scheduler.run(until=5.0)
    sample = zones[0]
    print(f"listener in {sample.name!r} learned zones: "
          f"{listeners[sample.name].known_zone_names()}")

    # Allocation: informed-random inside the zone packs the range
    # completely, and every zone reuses the same addresses.
    rng = np.random.default_rng(1)
    reused = {}
    for zone in zones[:4]:
        node = sorted(zone.members)[0]
        allocator = AdminScopedAllocator(scope_map, node,
                                         space_size=RANGE, rng=rng)
        used = []
        while len(used) < RANGE:
            view = VisibleSet(np.asarray(used, dtype=np.int64),
                              np.full(len(used), 63, dtype=np.int64))
            result = allocator.allocate(63, view)
            assert not result.forced
            used.append(result.address)
        reused[zone.name] = set(used)
    print(f"\n4 zones each packed all {RANGE} addresses "
          f"(identical ranges, zero clashes): "
          f"{all(v == set(range(RANGE)) for v in reused.values())}")

    # Misconfiguration: one country's boundary starts leaking ZAMs.
    leaky = zones[1].name
    transport.inject_leak(leaky)
    scheduler.run(until=120.0)
    victims = [name for name, listener in listeners.items()
               if any(leak.zone_name == leaky
                      for leak in listener.leaks_detected)]
    print(f"\nboundary of {leaky!r} misconfigured -> leak detected by "
          f"{len(victims)} listeners in other zones")


if __name__ == "__main__":
    main()
