#!/usr/bin/env python3
"""An sdr-like session browser over the simulated Mbone.

A handful of sites announce a schedule of sessions — some live, some
upcoming, different scopes and media.  A user's directory at another
site discovers them over SAP (warm-started from a proxy cache server,
§2.3) and we browse: what's on now, what's coming up, only video, and
a text search — the queries the sdr tool offered.

Run:  python examples/session_browser.py
"""

import numpy as np

from repro.core.address_space import MulticastAddressSpace
from repro.core.iprma import StaticIprmaAllocator
from repro.sap.browser import SessionBrowser
from repro.sap.cache_server import ProxyCacheServer
from repro.sap.directory import SessionDirectory
from repro.sap.sdp import MediaStream
from repro.sim.adapters import build_network_stack
from repro.sim.events import EventScheduler
from repro.sim.network import NetworkModel
from repro.topology.mbone import MboneParams, generate_mbone

SPACE = MulticastAddressSpace.abstract(2048)


def main() -> None:
    topology = generate_mbone(MboneParams(total_nodes=200, seed=11))
    __, __, receiver_map = build_network_stack(topology)
    scheduler = EventScheduler()
    network = NetworkModel(scheduler, receiver_map, loss_rate=0.02)

    def directory(node, name):
        rng = np.random.default_rng(node)
        return SessionDirectory(
            node, scheduler, network,
            StaticIprmaAllocator.seven_band(SPACE.size, rng), SPACE,
            username=name, rng=rng,
        )

    # A site-local proxy cache server listens from the start (§2.3's
    # "local caching servers").
    proxy = ProxyCacheServer(node=100, scheduler=scheduler,
                             network=network)

    # Content providers around the world.
    isi = directory(0, "isi")
    ucl = directory(60, "ucl")
    kth = directory(90, "kth")
    now = 1_000_000  # pretend NTP-ish wall-clock seconds

    isi.create_session(
        "Systems seminar", ttl=127, info="weekly systems talk",
        media=[MediaStream("audio", 49170),
               MediaStream("video", 51372)],
        start=now - 600, stop=now + 3000,
    )
    isi.create_session(
        "Radio Free vat", ttl=127, info="ambient audio",
        media=[MediaStream("audio", 20000)],
    )
    ucl.create_session(
        "MICE project meeting", ttl=127, info="project partners",
        media=[MediaStream("audio", 30000),
               MediaStream("video", 30002)],
        start=now + 7200, stop=now + 10800,
    )
    ucl.create_session(
        "UCL CS staff meeting", ttl=47, info="UK only",
        media=[MediaStream("audio", 31000)],
    )
    kth.create_session(
        "Lunch concert", ttl=63,
        media=[MediaStream("audio", 40000)],
        start=now - 100, stop=now + 1700,
    )

    scheduler.run(until=30.0)

    # The proxy heard everything, so the user's freshly started
    # directory starts complete.
    user = directory(101, "user")
    transferred = proxy.sync_directory(user)
    browser = SessionBrowser(user)
    print(f"warm start: {transferred} sessions from the proxy cache\n")

    def show(title, rows):
        print(f"{title}:")
        if not rows:
            print("   (none)")
        for row in rows:
            media = "+".join(s.media for s in row.description.media)
            print(f"   {row.name:24s} ttl={row.ttl:<4d} {media}")
        print()

    show("all known sessions", browser.entries())
    show("on the air now", browser.active(now=now))
    show("coming up", browser.upcoming(now=now))
    show("video sessions", browser.with_media("video"))
    show("search 'seminar'", browser.search("seminar"))
    show("European scope or narrower (ttl <= 63)", browser.by_scope(63))


if __name__ == "__main__":
    main()
